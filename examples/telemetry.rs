//! Telemetry: process-wide metrics and structured trace events.
//!
//! Bridges one estimation run into a [`MetricsRegistry`] through a
//! [`TelemetryObserver`] — counters for simulations/iterations/cache
//! traffic, a latency histogram for every raw simulator batch — while a
//! [`Tracer`] appends one JSON object per pipeline event to a
//! size-rotated JSONL file. Afterwards the example prints the latency
//! percentiles and the same Prometheus text exposition `ecripse-cli
//! serve` offers on `GET /metrics` with `Accept: text/plain`.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use ecripse::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), EstimateError> {
    let bench = SramReadBench::paper_cell();
    let mut config = EcripseConfig::default();
    config.importance.n_samples = 3_000;

    // A registry of this process's metrics. `MetricsRegistry::global()`
    // offers a shared singleton; a local one keeps the example hermetic.
    let registry = MetricsRegistry::new();

    // Structured trace events land in a JSONL file that rotates to
    // `<path>.1` when it outgrows the byte cap.
    let trace_path = std::env::temp_dir().join("ecripse_trace.jsonl");
    let sink = RotatingFileSink::create(&trace_path, 4 * 1024 * 1024).expect("create trace log");
    let tracer = Tracer::new(Arc::new(sink));

    // The bridge folds every pipeline event into registry metrics and
    // mirrors it into the tracer. It is purely observational: the
    // estimate below is bit-identical to an unobserved run.
    let bridge = TelemetryObserver::new(&registry).with_tracer(tracer);

    let result = Ecripse::new(config, bench).estimate_observed(&bridge)?;
    println!(
        "P_fail = {:.3e} ± {:.2e} using {} simulations\n",
        result.p_fail, result.ci95_half_width, result.simulations
    );

    // Latency histograms answer the question reports cannot: not "how
    // many simulations" but "how long does one batch take".
    let batches = registry.histogram(
        "ecripse_sim_batch_seconds",
        "Wall-clock latency of one raw simulator batch",
    );
    if let Some((p50, p90, p99)) = batches.percentiles() {
        println!(
            "simulator batches: {} recorded, p50 {:.3e} s, p90 {:.3e} s, p99 {:.3e} s",
            batches.count(),
            p50,
            p90,
            p99
        );
    }

    // The same registry renders straight to Prometheus text exposition.
    println!("\n--- Prometheus exposition (first 20 lines) ---");
    for line in registry.render_prometheus().lines().take(20) {
        println!("{line}");
    }

    println!("\ntrace events written to {}", trace_path.display());
    Ok(())
}
