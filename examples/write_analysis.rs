//! Write-margin analysis — the failure mode the paper leaves for future
//! work, handled by the same estimator stack.
//!
//! Shows the signed write margin across a write-hostile skew, then
//! estimates the (far rarer) write-failure probability with the adaptive
//! tolerance API.
//!
//! ```sh
//! cargo run --release --example write_analysis
//! ```

use ecripse::core::bench::SramWriteBench;
use ecripse::prelude::*;

fn main() -> Result<(), EstimateError> {
    let circuit = ReadStabilityBench::paper_cell();

    println!("write margin vs write-hostile skew (stronger PL, weaker AL):");
    println!(
        "{:>10} {:>14} {:>14}",
        "skew [mV]", "write [mV]", "read [mV]"
    );
    for k in 0..7 {
        let s = 0.05 * k as f64;
        let dv = [-s, 0.0, 0.0, 0.0, s, 0.0];
        println!(
            "{:>10.0} {:>14.1} {:>14.1}",
            s * 1e3,
            circuit.write_margin(&dv) * 1e3,
            circuit.read_noise_margin(&dv) * 1e3,
        );
    }

    println!("\nestimating the write-failure probability (adaptive, 15% target)…");
    let mut config = EcripseConfig::default();
    config.importance.n_samples = 50_000;
    // The write boundary sits much farther out than the read boundary.
    config.initial.r_max = 14.0;
    let bench = SramWriteBench::paper_cell();
    let result = Ecripse::new(config, bench).estimate_to_tolerance(0.15)?;
    println!(
        "  P(write failure) = {:.3e} ± {:.2e}  ({} simulations, {} IS samples)",
        result.p_fail, result.ci95_half_width, result.simulations, result.is_samples
    );
    println!(
        "  (read failure of the same cell is ~1.2e-4 — this cell is write-friendly\n\
         \x20  by design: the load is weak against the access transistor)"
    );
    Ok(())
}
