//! Quickstart: estimate the read-failure probability of the paper's 6T
//! SRAM cell, with and without RTN, in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ecripse::prelude::*;

fn main() -> Result<(), EstimateError> {
    // The paper's Table I cell (PTM-16nm-like, V_DD = 0.7 V).
    let bench = SramReadBench::paper_cell();

    // Trim the default budgets so the example finishes quickly; see
    // EXPERIMENTS.md for publication-grade settings.
    let mut config = EcripseConfig::default();
    config.importance.n_samples = 5_000;

    println!("estimating RDF-only failure probability…");
    let rdf_only = Ecripse::new(config, bench.clone()).estimate()?;
    println!(
        "  P_fail = {:.3e} ± {:.2e}  ({} transistor-level simulations, {} classifier answers)",
        rdf_only.p_fail,
        rdf_only.ci95_half_width,
        rdf_only.simulations,
        rdf_only.oracle_stats.classified,
    );

    println!("estimating with RTN at duty ratio α = 0.3…");
    let mut rtn_config = config;
    rtn_config.importance.n_samples = 2_000;
    rtn_config.importance.m_rtn = 20;
    let rtn = SramRtn::paper_model(0.3, bench.sigmas());
    let with_rtn = Ecripse::with_rtn(rtn_config, bench, rtn).estimate()?;
    println!(
        "  P_fail = {:.3e} ± {:.2e}  ({} simulations)",
        with_rtn.p_fail, with_rtn.ci95_half_width, with_rtn.simulations,
    );

    println!(
        "RTN degrades the failure probability by {:.1}x at this bias",
        with_rtn.p_fail / rdf_only.p_fail
    );
    Ok(())
}
