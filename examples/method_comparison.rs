//! Five rare-event estimators on the same problem: naive Monte Carlo,
//! statistical blockade, mean-shift importance sampling, the conventional
//! sequential importance sampling of \[8\], and ECRIPSE — each reporting
//! its estimate and how many transistor-level simulations it spent.
//!
//! Runs at a lowered supply so even the naive method produces a
//! meaningful reference within the example's time budget.
//!
//! ```sh
//! cargo run --release --example method_comparison
//! ```

use ecripse::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = SramReadBench::at_vdd(0.5);
    println!("cell: paper geometry at V_DD = 0.5 V (RDF only)\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "method", "P_fail", "rel.err", "simulations"
    );

    // Naive Monte Carlo.
    let naive = naive_monte_carlo(
        &bench,
        &NoRtn::new(6),
        &NaiveConfig {
            n_samples: 30_000,
            trace_every: 0,
            seed: 11,
        },
    );
    println!(
        "{:<26} {:>12.3e} {:>12.3} {:>12}",
        "naive MC",
        naive.p_fail,
        naive.relative_error(),
        naive.simulations
    );

    // Statistical blockade.
    let blockade = statistical_blockade(
        &bench,
        &NoRtn::new(6),
        &BlockadeConfig {
            n_pilot: 1_000,
            pilot_sigma: 3.0,
            n_samples: 30_000,
            ..BlockadeConfig::default()
        },
    )?;
    println!(
        "{:<26} {:>12.3e} {:>12.3} {:>12}",
        "statistical blockade",
        blockade.p_fail,
        blockade.interval.relative_error(),
        blockade.simulations
    );

    // Mean-shift importance sampling.
    let mut ms_cfg = MeanShiftConfig::default();
    ms_cfg.importance.n_samples = 4_000;
    ms_cfg.importance.m_rtn = 1;
    let mean_shift = mean_shift_is(&bench, &NoRtn::new(6), &ms_cfg)?;
    println!(
        "{:<26} {:>12.3e} {:>12.3} {:>12}",
        "mean-shift IS",
        mean_shift.importance.p_fail,
        mean_shift.importance.relative_error(),
        mean_shift.simulations
    );

    // Gibbs-sampling importance sampling [7].
    let mut gibbs_cfg = GibbsConfig::default();
    gibbs_cfg.importance.n_samples = 4_000;
    gibbs_cfg.importance.m_rtn = 1;
    let gibbs = gibbs_is(&bench, &NoRtn::new(6), &gibbs_cfg)?;
    println!(
        "{:<26} {:>12.3e} {:>12.3} {:>12}",
        "Gibbs IS [7]",
        gibbs.importance.p_fail,
        gibbs.importance.relative_error(),
        gibbs.simulations
    );

    // Conventional sequential importance sampling [8].
    let mut cfg = EcripseConfig::default();
    cfg.importance.n_samples = 4_000;
    let sis = SequentialImportanceSampling::new(cfg, bench.clone()).estimate()?;
    println!(
        "{:<26} {:>12.3e} {:>12.3} {:>12}",
        "sequential IS [8]",
        sis.p_fail,
        sis.relative_error(),
        sis.simulations
    );

    // ECRIPSE.
    let mut cfg = EcripseConfig::default();
    cfg.importance.n_samples = 4_000;
    let ecripse = Ecripse::new(cfg, bench).estimate()?;
    println!(
        "{:<26} {:>12.3e} {:>12.3} {:>12}",
        "ECRIPSE",
        ecripse.p_fail,
        ecripse.relative_error(),
        ecripse.simulations
    );

    println!(
        "\nnote the mean-shift row: its single shifted Gaussian covers one of the\n\
         cell's two failure lobes, so it converges to roughly half the truth —\n\
         the failure mode the particle-filter mixture exists to fix."
    );
    Ok(())
}
