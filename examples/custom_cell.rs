//! Using the library on a cell *other* than the paper's: size your own
//! 6T cell, inspect its butterfly curves and noise margins, and estimate
//! its failure probability through a custom `Testbench`.
//!
//! ```sh
//! cargo run --release --example custom_cell
//! ```

use ecripse::core::bench::Testbench;
use ecripse::prelude::*;
use ecripse::spice::butterfly::Butterfly;
use ecripse::spice::model::Mosfet;
use ecripse::spice::ptm::{ptm16_hp_nmos, ptm16_hp_pmos, A_VTH_EFFECTIVE};
use ecripse::spice::snm::read_noise_margin;

/// A read-stability bench for an arbitrary cell.
struct CustomBench {
    cell: Sram6T,
    sigmas: [f64; 6],
}

impl Testbench for CustomBench {
    fn dim(&self) -> usize {
        6
    }

    fn fails(&self, z: &[f64]) -> bool {
        let dv: Vec<f64> = z.iter().zip(&self.sigmas).map(|(zi, s)| zi * s).collect();
        let cell = self.cell.with_delta_vth(&dv);
        let b = Butterfly::sample(&cell, &cell.read_bias(), 61);
        read_noise_margin(&b).rnm < 0.0
    }
}

fn main() -> Result<(), EstimateError> {
    // A denser cell than Table I: same drivers, narrower loads, and a
    // slightly longer access device for read robustness.
    let l = 16e-9;
    let vdd = 0.7;
    let devices = [
        Mosfet::new(ptm16_hp_pmos(), 40e-9, l),     // PL
        Mosfet::new(ptm16_hp_nmos(), 30e-9, l),     // NL
        Mosfet::new(ptm16_hp_pmos(), 40e-9, l),     // PR
        Mosfet::new(ptm16_hp_nmos(), 30e-9, l),     // NR
        Mosfet::new(ptm16_hp_nmos(), 30e-9, 20e-9), // AL
        Mosfet::new(ptm16_hp_nmos(), 30e-9, 20e-9), // AR
    ];
    let cell = Sram6T::from_devices(vdd, devices);

    // Nominal margins.
    let butterfly = Butterfly::sample(&cell, &cell.read_bias(), 121);
    let margins = read_noise_margin(&butterfly);
    println!(
        "custom cell nominal read margin: {:.1} mV (lobes {:.1} / {:.1})",
        margins.rnm * 1e3,
        margins.snm_low * 1e3,
        margins.snm_high * 1e3
    );

    // Pelgrom sigmas from each device's own geometry.
    let mut sigmas = [0.0; 6];
    for (s, d) in sigmas.iter_mut().zip(&devices) {
        *s = A_VTH_EFFECTIVE / (d.width * d.length).sqrt();
    }
    println!(
        "per-device σ(ΔVth): {:?} mV",
        sigmas.map(|s| (s * 1e3 * 10.0).round() / 10.0)
    );

    // Failure probability through the standard flow.
    let mut config = EcripseConfig::default();
    config.importance.n_samples = 5_000;
    let bench = CustomBench { cell, sigmas };
    let result = Ecripse::new(config, bench).estimate()?;
    println!(
        "custom cell P_fail = {:.3e} ± {:.2e}  ({} simulations)",
        result.p_fail, result.ci95_half_width, result.simulations
    );
    Ok(())
}
