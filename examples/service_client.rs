//! Serving: run the estimation service in-process and submit two
//! concurrent jobs.
//!
//! Binds an [`ecripse::serve::Server`] on an ephemeral loopback port,
//! submits an RDF-only job and an RTN-aware job from two client
//! threads, waits for both reports and prints them side by side. The
//! two workers share one process-wide verdict cache, yet each report is
//! bit-identical to the equivalent direct library call.
//!
//! ```sh
//! cargo run --release --example service_client
//! ```

use ecripse::prelude::*;
use ecripse::serve::protocol::EstimateOutcome;
use std::time::Duration;

fn submit_and_wait(addr: String, request: SubmitRequest) -> EstimateOutcome {
    let client = Client::new(addr);
    let submitted = client.submit(&request).expect("submit job");
    println!("submitted job {} ({:?})", submitted.id, request.job.alpha);
    let report = client
        .wait_for_report(submitted.id, Duration::from_secs(600))
        .expect("job report");
    assert_eq!(report.state, JobState::Completed, "{:?}", report.error);
    report.estimate.expect("estimate outcome")
}

fn main() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind service");
    let addr = server.local_addr().to_string();
    println!("service listening on http://{addr}");

    let mut config = EcripseConfig::default();
    config.importance.n_samples = 2_000;
    let rdf_only = SubmitRequest::new(config, JobSpec::rdf_only(0.7));
    let with_rtn = SubmitRequest::new(config, JobSpec::estimate(0.7, 0.5));

    // Two clients race; the queue and worker pool sort it out.
    let handles = [rdf_only, with_rtn].map(|request| {
        let addr = addr.clone();
        std::thread::spawn(move || submit_and_wait(addr, request))
    });
    let [rdf, rtn] = handles.map(|h| h.join().expect("client thread"));

    println!("\n{:<24} {:>12} {:>12}", "", "rdf-only", "rtn α=0.5");
    println!(
        "{:<24} {:>12.3e} {:>12.3e}",
        "P_fail", rdf.p_fail, rtn.p_fail
    );
    println!(
        "{:<24} {:>12.2e} {:>12.2e}",
        "ci95 half-width", rdf.ci95_half_width, rtn.ci95_half_width
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "simulations", rdf.simulations, rtn.simulations
    );
    println!(
        "{:<24} {:>12} {:>12}",
        "classifier answers", rdf.report.oracle.classified, rtn.report.oracle.classified
    );

    let metrics = server.metrics();
    println!(
        "\nshared cache: {} entries, {} hits / {} misses across both jobs",
        metrics.cache_entries, metrics.cache_hits, metrics.cache_misses
    );
    let summary = server.shutdown();
    println!(
        "graceful shutdown: {} drained, {} persisted, {} cancelled",
        summary.drained, summary.persisted, summary.cancelled
    );
}
