//! Time-domain RTN: generate the two-state telegraph signal of a single
//! oxide trap (the Fig. 3(b) picture), recover its time constants from
//! the trace, and show how the duty ratio moves the capture statistics.
//!
//! ```sh
//! cargo run --release --example telegraph_trace
//! ```

use ecripse::rtn::telegraph::TelegraphSignal;
use ecripse::rtn::trap::TrapTimeConstants;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let traps = TrapTimeConstants::paper_values();

    println!(
        "trap constants (Table I): τe_on={} τe_off={} τc_on={} τc_off={}\n",
        traps.tau_e_on, traps.tau_e_off, traps.tau_c_on, traps.tau_c_off
    );

    // ASCII render of a short trace at 50% duty.
    let taus = traps.mixed(0.5);
    let short = TelegraphSignal::generate(&mut rng, taus, 3.0);
    println!(
        "3-second trace at α = 0.5 ({} transitions):",
        short.events().len()
    );
    let cols = 100;
    let mut line_hi = String::new();
    let mut line_lo = String::new();
    for i in 0..cols {
        let t = 3.0 * i as f64 / cols as f64;
        if short.state_at(t) {
            line_hi.push('─');
            line_lo.push(' ');
        } else {
            line_hi.push(' ');
            line_lo.push('─');
        }
    }
    println!("Vth high |{line_hi}|");
    println!("Vth low  |{line_lo}|\n");

    // Long-trace statistics versus the analytic model.
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "duty", "τc (est)", "τe (est)", "τc (model)", "τe (model)", "P(captured)"
    );
    for duty in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let taus = traps.mixed(duty);
        let trace = TelegraphSignal::generate(&mut rng, taus, 5_000.0 * (taus.tau_c + taus.tau_e));
        let est = trace.estimate_taus().expect("long trace");
        println!(
            "{:<8} {:>10.4} {:>10.4} {:>12.4} {:>12.4} {:>12.4}",
            duty,
            est.tau_c,
            est.tau_e,
            taus.tau_c,
            taus.tau_e,
            trace.captured_fraction(),
        );
    }
    println!(
        "\n(the capture probability entering Eq. 10 is τc/(τc+τe) per the paper's convention)"
    );
}
