//! Observability: watch a run live and collect its structured report.
//!
//! Attaches two observers to one estimation — a [`ProgressObserver`]
//! that narrates every pipeline event on stderr, and a [`RunRecorder`]
//! that aggregates the same events into a serialisable [`RunReport`] —
//! then prints a per-stage cost table and writes the report as JSON
//! (the same document `ecripse-cli --report` produces).
//!
//! ```sh
//! cargo run --release --example run_report
//! ```

use ecripse::prelude::*;

fn main() -> Result<(), EstimateError> {
    let bench = SramReadBench::paper_cell();
    let mut config = EcripseConfig::default();
    config.importance.n_samples = 3_000;

    // Fan one event stream out to both observers.
    let recorder = RunRecorder::new();
    let progress = ProgressObserver::new();
    let mut observers = MultiObserver::new();
    observers.push(&recorder);
    observers.push(&progress);

    let result = Ecripse::new(config, bench).estimate_observed(&observers)?;
    let report = recorder.into_report();

    println!(
        "\nP_fail = {:.3e} ± {:.2e}",
        result.p_fail, result.ci95_half_width
    );
    println!("\n{:<22} {:>10} {:>12}", "stage", "wall [s]", "simulations");
    for stage in &report.stages {
        println!(
            "{:<22} {:>10.2} {:>12}",
            stage.stage.name(),
            stage.wall_seconds,
            stage.simulations
        );
    }
    println!(
        "\nclassifier answered {} of {} indicator queries ({} retrains); \
         memo-cache served {} of {} simulator calls",
        report.oracle.classified,
        report.oracle.classified + report.oracle.simulated,
        report.oracle.retrains,
        report.oracle.cache_hits,
        report.oracle.cache_hits + report.oracle.cache_misses,
    );
    if let Some(last) = report.stage2_chunks.last() {
        println!(
            "stage-2 cost density: {:.3} simulations per importance sample",
            last.sims_per_sample()
        );
    }

    let path = std::env::temp_dir().join("ecripse_run_report.json");
    let file = std::fs::File::create(&path).expect("create report file");
    report
        .write_json(std::io::BufWriter::new(file))
        .expect("write report");
    println!("full JSON report written to {}", path.display());
    Ok(())
}
