//! Duty-ratio sweep: how the stored-data statistics modulate the
//! RTN-induced failure probability (the study Fig. 8 of the paper opens
//! up). Initial boundary particles are shared across all bias points.
//!
//! ```sh
//! cargo run --release --example duty_sweep
//! ```

use ecripse::prelude::*;

fn main() -> Result<(), EstimateError> {
    let mut config = EcripseConfig::default();
    config.importance.n_samples = 2_000;
    config.importance.m_rtn = 20;

    let bench = SramReadBench::paper_cell();
    // A coarse five-point sweep; `fig8` in the bench crate runs the
    // paper's full eleven-point grid.
    let sweep = DutySweep::new(config, bench, vec![0.0, 0.25, 0.5, 0.75, 1.0]);

    println!(
        "running {}-point duty sweep (shared initialisation)…",
        sweep.alphas().len()
    );
    // `run_with_reports` returns the same SweepResult as `run`, plus one
    // structured RunReport per α point (and one for the RTN-free
    // reference run) — here used for the per-point cost column.
    let (result, reports) = sweep.run_with_reports()?;

    println!(
        "\n{:<8} {:>12} {:>12} {:>10}",
        "α", "P_fail", "±CI95", "sims/spl"
    );
    for (p, report) in result.points.iter().zip(&reports.points) {
        let density = report
            .stage2_chunks
            .last()
            .map(|c| c.sims_per_sample())
            .unwrap_or(0.0);
        let bar = "#".repeat((p.p_fail / result.p_fail_rdf_only).round() as usize);
        println!(
            "{:<8} {:>12.3e} {:>12.1e} {:>10.3}  {bar}",
            p.alpha, p.p_fail, p.ci95_half_width, density
        );
    }
    println!(
        "\nwithout RTN: {:.3e}  (each # above = one RDF-only multiple)",
        result.p_fail_rdf_only
    );
    println!(
        "worst case is {:.1}x the RTN-free value; minimum at α = {}",
        result.rtn_degradation_factor(),
        result.best().expect("non-empty sweep").alpha
    );
    println!(
        "total simulations: {} (of which {} for the shared initialisation)",
        result.total_simulations, result.init_simulations
    );
    Ok(())
}
