//! Command-line front end for the ECRIPSE library.
//!
//! ```text
//! ecripse-cli estimate [--vdd V] [--scenario NAME] [--alpha A] [--no-rtn] [--samples N]
//!                      [--tolerance R] [--seed S] [--threads T]
//!                      [--report PATH] [--progress] [--trace-log PATH]
//! ecripse-cli sweep    [--vdd V] [--scenario NAME] [--points K] [--samples N] [--m-rtn M]
//!                      [--seed S] [--threads T] [--report PATH] [--checkpoint PATH]
//!                      [--resume] [--keep-going] [--trace-log PATH]
//! ecripse-cli margin   [--vdd V] [--dvth v0,v1,v2,v3,v4,v5]
//! ecripse-cli naive    [--vdd V] [--alpha A] [--no-rtn] [--samples N] [--seed S]
//! ecripse-cli serve    [--addr HOST:PORT] [--workers W] [--queue Q] [--spool DIR]
//!                      [--cache-store PATH] [--journal PATH]
//!                      [--join COORD_ADDR] [--worker-name NAME]
//! ecripse-cli cluster  [--addr HOST:PORT] [--heartbeat-ms MS] [--timeout-ms MS]
//!                      [--shard-points K] [--max-jobs N]
//! ecripse-cli submit   --addr HOST:PORT [--vdd V] [--scenario NAME] [--alpha A] [--no-rtn]
//!                      [--samples N] [--seed S] [--threads T] [--timeout SECS]
//!                      [--deadline MS] [--idempotency-key KEY] [--retry N]
//!                      [--points K] [--m-rtn M]
//! ecripse-cli trace    JOB_ID --addr HOST:PORT [--json]
//! ```
//!
//! `--scenario NAME` picks the indicator function the run estimates —
//! any id from the scenario registry (`read-snm` by default, plus
//! `hold-snm`, `write-margin` and `powerup-puf`). See `SCENARIOS.md`
//! for what each scenario measures and how to add one.
//!
//! `--threads 0` (the default) uses one worker per core; any other value
//! pins the worker count. Results are bit-identical for every setting.
//!
//! `--report PATH` writes the structured JSON run report (per-stage
//! wall-clock timings, oracle/cache counters, particle-filter health and
//! stage-2 convergence points — see `DESIGN.md` § "Observability
//! layer"); for `sweep` the file holds the RDF-only reference report
//! plus one report per duty point. `--progress` prints one
//! human-readable line per pipeline event to stderr as the run advances.
//! `--trace-log PATH` appends one JSON object per pipeline event to a
//! size-rotated JSONL file and prints simulator-batch latency
//! percentiles (p50/p90/p99) once the run finishes.
//!
//! Long sweeps are fault-tolerant: `--checkpoint PATH` saves a versioned
//! JSON snapshot after the shared initialisation and after every
//! completed duty point, `--resume` reloads whatever that file already
//! holds (a resumed sweep is bit-identical to an uninterrupted one), and
//! `--keep-going` reports a failing point instead of aborting the sweep.
//! A checkpointed sweep also installs a Ctrl-C (SIGINT) handler: in-flight
//! points drain, pending points are skipped, the checkpoint is flushed and
//! the process exits non-zero — rerunning with `--resume` continues
//! bit-identically.
//!
//! `serve` runs the [`ecripse::serve`] job-queue service until Ctrl-C,
//! then shuts down gracefully (drains in-flight jobs, persists queued
//! sweeps into `--spool DIR` as resumable checkpoints). With
//! `--cache-store PATH` the process-wide verdict cache is restored from
//! that file at startup (ignored if missing, corrupt, or written for a
//! different grid) and saved atomically at shutdown, so a restarted
//! service resumes warm. With `--journal PATH` every accepted job is
//! fsync'd to a write-ahead journal *before* it is acknowledged, and a
//! restarted server (same `--journal`/`--spool`) re-enqueues every job
//! that never finished — a `kill -9` loses at most work, never jobs.
//! With `--join COORD_ADDR` the server additionally enrols as a
//! *cluster worker*: it registers with the coordinator at that address
//! and heartbeats until shutdown (re-registering automatically if the
//! coordinator restarts or reaps it). `--worker-name NAME` fixes the
//! worker's stable name (default `worker-<port>`); keep it stable
//! across restarts so a restarted worker revives its registration and
//! resumes its journaled shards instead of recomputing them.
//!
//! `cluster` runs the [`ecripse::cluster`] coordinator until Ctrl-C: it
//! speaks the *same* job protocol as `serve` (point `submit` at it and
//! nothing changes), shards sweeps across the registered workers via a
//! consistent-hash ring, reassigns shards off workers that miss their
//! heartbeats, and merges shard reports into a result bit-identical to
//! a single-process run.
//!
//! `submit` sends one job to a running server (or coordinator — same
//! protocol) and waits for the result; `--points K` submits a K-point
//! duty-ratio sweep instead of a single estimate (a coordinator shards
//! it across workers). `--deadline MS` bounds its server-side
//! wall-clock budget, `--retry N` turns on client-side retries (connect
//! errors, `5xx`, `429`) and `--idempotency-key KEY` makes those
//! retries safe — a resubmission with the same key returns the original
//! job instead of enqueuing a duplicate.
//!
//! `trace` fetches a finished (or running) job's distributed trace —
//! `GET /v1/jobs/{id}/trace` — and renders it as an ASCII waterfall:
//! one line per span, indented by parent, bars on a shared timeline.
//! Against a coordinator the waterfall spans the whole cluster (the
//! coordinator's job/shard spans plus every worker's stage spans, all
//! under one trace id); `--json` prints the raw merged span document
//! instead.
//!
//! Threshold shifts for `margin` are in volts, canonical device order
//! `PL, NL, PR, NR, AL, AR`.

use ecripse::prelude::*;
use ecripse::spice::butterfly::Butterfly;
use ecripse::spice::snm::read_noise_margin;
use std::collections::HashMap;
use std::process::ExitCode;

/// SIGINT (Ctrl-C) latch shared by `serve` and checkpointed sweeps.
///
/// Hand-rolled `signal(2)` FFI instead of a crate dependency: the
/// handler only stores into an `AtomicBool`, which is async-signal-safe.
mod interrupt {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    #[allow(unsafe_code)]
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the latch as the process SIGINT handler.
    pub fn install() {
        const SIGINT: i32 = 2;
        #[allow(unsafe_code)]
        unsafe {
            signal(SIGINT, on_signal);
        }
    }

    /// The latch itself, for APIs that poll a stop flag.
    pub fn flag() -> &'static AtomicBool {
        &REQUESTED
    }

    /// Whether Ctrl-C has been pressed since [`install`].
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Minimal `--key value` / `--flag` parser.
struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), it.next().expect("peeked").clone());
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Self { values, flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Writes any serialisable report as pretty-printed JSON at `path`.
fn write_report_json<T: serde::Serialize>(path: &str, report: &T) -> Result<(), String> {
    let json = serde_json::to_string_pretty(report).map_err(|e| format!("--report {path}: {e}"))?;
    std::fs::write(path, json + "\n").map_err(|e| format!("--report {path}: {e}"))?;
    eprintln!("report written to {path}");
    Ok(())
}

/// Cap on one `--trace-log` file before it rotates to `<path>.1`.
const TRACE_LOG_MAX_BYTES: u64 = 16 * 1024 * 1024;

/// Builds the `--trace-log` bridge: a metrics registry fed by every
/// pipeline event plus a JSONL tracer writing structured events to a
/// size-rotated file at `path`.
fn trace_telemetry(path: &str) -> Result<(MetricsRegistry, TelemetryObserver), String> {
    let sink = RotatingFileSink::create(path, TRACE_LOG_MAX_BYTES)
        .map_err(|e| format!("--trace-log {path}: {e}"))?;
    let registry = MetricsRegistry::new();
    let tracer = Tracer::new(std::sync::Arc::new(sink));
    let observer = TelemetryObserver::new(&registry).with_tracer(tracer);
    Ok((registry, observer))
}

/// Prints the simulator-batch latency percentiles the `--trace-log`
/// registry accumulated (stderr, like the other progress output).
fn print_latency_summary(registry: &MetricsRegistry, path: &str) {
    let batches = registry.histogram(
        "ecripse_sim_batch_seconds",
        "Wall-clock latency of one raw simulator batch",
    );
    if let Some((p50, p90, p99)) = batches.percentiles() {
        eprintln!(
            "sim-batch latency over {} batches: p50 {:.3e} s, p90 {:.3e} s, p99 {:.3e} s",
            batches.count(),
            p50,
            p90,
            p99
        );
    }
    eprintln!("trace log written to {path}");
}

/// Bar width of the `trace` waterfall timeline.
const WATERFALL_COLS: usize = 48;

/// Renders a merged trace as an ASCII waterfall: one line per span,
/// indented under its parent, bars on a shared timeline spanning the
/// earliest start to the latest end.
fn render_waterfall(trace: &JobTrace) -> String {
    use std::fmt::Write as _;
    let spans = &trace.spans;
    let start = spans
        .iter()
        .map(|s| s.start_ts)
        .fold(f64::INFINITY, f64::min);
    let end = spans.iter().map(|s| s.end_ts()).fold(0.0f64, f64::max);
    let window = (end - start).max(1e-9);
    let scale = WATERFALL_COLS as f64 / window;
    let parents: HashMap<&str, &str> = spans
        .iter()
        .map(|s| (s.span_id.as_str(), s.parent_span_id.as_str()))
        .collect();
    let node_width = spans.iter().map(|s| s.node.len()).max().unwrap_or(4).max(4);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {} — job {}, {} span(s), {:.3}s end to end",
        trace.trace_id,
        trace.job_id,
        spans.len(),
        window
    );
    for span in spans {
        // Indent by ancestry depth; unknown parents (client-side or
        // truncated traces) count as roots. Cycle-proof via the cap.
        let mut depth = 0usize;
        let mut cursor = span.parent_span_id.as_str();
        while depth < 8 {
            match parents.get(cursor) {
                Some(next) => {
                    depth += 1;
                    cursor = next;
                }
                None => break,
            }
        }
        let lead = (((span.start_ts - start) * scale) as usize).min(WATERFALL_COLS - 1);
        let len = ((span.duration_s * scale).ceil() as usize)
            .max(1)
            .min(WATERFALL_COLS - lead);
        let mut bar = String::new();
        bar.push_str(&" ".repeat(lead));
        bar.push_str(&"#".repeat(len));
        let _ = writeln!(
            out,
            "  [{:<node_width$}] {:<WATERFALL_COLS$} {}{} {:+.3}s ({:.3}s)",
            span.node,
            bar,
            "  ".repeat(depth),
            span.name,
            span.start_ts - start,
            span.duration_s
        );
    }
    out
}

fn usage() {
    let scenario_ids: Vec<&str> = registry().iter().map(|info| info.id).collect();
    eprintln!(
        "usage: ecripse-cli <estimate|sweep|margin|naive|serve|cluster|submit> [options]\n\
         \n\
         scenarios: {} (default read-snm; see SCENARIOS.md)\n\
         \n\
         estimate  failure probability of the paper's 6T cell\n\
         \x20          --vdd V (0.7)  --scenario NAME (read-snm)  --alpha A (0.5)  --no-rtn\n\
         \x20          --samples N (4000)  --tolerance R  --seed S  --threads T (0=all cores)\n\
         \x20          --report PATH (JSON run report)  --progress (live stderr lines)\n\
         \x20          --trace-log PATH (JSONL trace events + latency percentiles)\n\
         sweep     duty-ratio sweep with shared initialisation\n\
         \x20          --vdd V (0.7)  --scenario NAME  --points K (11)  --samples N (2000)\n\
         \x20          --m-rtn M (20)\n\
         \x20          --seed S  --threads T  --report PATH (JSON reports, one per duty point)\n\
         \x20          --checkpoint PATH (save progress per point; Ctrl-C flushes + exits)\n\
         \x20          --resume (reload checkpoint)\n\
         \x20          --keep-going (report failed points instead of aborting)\n\
         \x20          --trace-log PATH (JSONL trace events + latency percentiles)\n\
         margin    read/hold/write margins of one cell instance\n\
         \x20          --vdd V (0.7)  --dvth v0,v1,v2,v3,v4,v5 (volts)\n\
         naive     naive Monte Carlo reference\n\
         \x20          --vdd V (0.7)  --alpha A  --no-rtn  --samples N (100000)  --seed S\n\
         serve     job-queue estimation service (runs until Ctrl-C)\n\
         \x20          --addr HOST:PORT (127.0.0.1:7878)  --workers W (2)  --queue Q (16)\n\
         \x20          --spool DIR (persist queued sweeps on shutdown)\n\
         \x20          --cache-store PATH (persist the verdict cache across restarts)\n\
         \x20          --journal PATH (write-ahead job journal: accepted jobs survive kill -9)\n\
         \x20          --join COORD_ADDR (enrol as a cluster worker)  --worker-name NAME\n\
         cluster   coordinator: same job protocol, sharded over joined workers\n\
         \x20          --addr HOST:PORT (127.0.0.1:7979)  --heartbeat-ms MS (250)\n\
         \x20          --timeout-ms MS (1500; silence past this reaps a worker)\n\
         \x20          --shard-points K (2; max duty points per shard)  --max-jobs N (32)\n\
         submit    send one job to a running server/coordinator and wait\n\
         \x20          --addr HOST:PORT (required)  --vdd V (0.7)  --scenario NAME\n\
         \x20          --alpha A (0.5)  --no-rtn\n\
         \x20          --points K (submit a K-point duty sweep instead)  --m-rtn M\n\
         \x20          --samples N (4000)  --seed S  --threads T  --timeout SECS (600)\n\
         \x20          --deadline MS (server-side wall-clock budget)\n\
         \x20          --idempotency-key KEY (retry-safe submission dedup)\n\
         \x20          --retry N (0; retries on connect errors, 5xx and 429)\n\
         trace     fetch a job's distributed trace and render a waterfall\n\
         \x20          trace JOB_ID --addr HOST:PORT (required)  --json (raw span document)",
        scenario_ids.join(", ")
    );
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        usage();
        return Err("missing subcommand".into());
    };
    // `trace` takes its job id as a leading positional (`trace 3 --addr
    // …`); peel it off before the `--key value` parser, which rejects
    // bare arguments everywhere else.
    let mut rest: Vec<String> = rest.to_vec();
    let mut leading_job: Option<String> = None;
    if cmd == "trace" {
        if let Some(first) = rest.first() {
            if !first.starts_with("--") {
                leading_job = Some(rest.remove(0));
            }
        }
    }
    let args = Args::parse(&rest)?;
    let vdd: f64 = args.get("vdd", 0.7)?;
    if !(0.2..=1.2).contains(&vdd) {
        return Err(format!("--vdd {vdd} outside the sane range [0.2, 1.2]"));
    }

    match cmd.as_str() {
        "estimate" => {
            let scenario: Scenario = args.get("scenario", Scenario::default())?;
            let bench = SramScenarioBench::at_vdd(scenario, vdd);
            let alpha: f64 = args.get("alpha", 0.5)?;
            let samples: usize = args.get("samples", 4000)?;
            let tolerance: Option<f64> = args.opt("tolerance")?;
            let seed: u64 = args.get("seed", 0xec4155e)?;
            let report_path: Option<String> = args.opt("report")?;
            let mut cfg = EcripseConfig {
                scenario,
                ..EcripseConfig::default()
            };
            // Retention/write failures live further out than read
            // failures; widen the boundary search to bracket them.
            cfg.initial.r_max = cfg.initial.r_max.max(scenario.recommended_r_max());
            cfg.importance.n_samples = samples;
            cfg.seed = seed;
            cfg.threads = args.get("threads", 0)?;
            let recorder = RunRecorder::new();
            let progress = ProgressObserver::new();
            let trace_path: Option<String> = args.opt("trace-log")?;
            let telemetry = trace_path.as_deref().map(trace_telemetry).transpose()?;
            let mut observers = MultiObserver::new();
            if report_path.is_some() {
                observers.push(&recorder);
            }
            if args.flag("progress") {
                observers.push(&progress);
            }
            if let Some((_, bridge)) = &telemetry {
                observers.push(bridge);
            }
            let result = if args.flag("no-rtn") {
                cfg.importance.m_rtn = 1;
                cfg.m_rtn_stage1 = 1;
                let run = Ecripse::new(cfg, bench);
                match tolerance {
                    Some(t) => run.estimate_to_tolerance_observed(t, &observers),
                    None => run.estimate_observed(&observers),
                }
            } else {
                let rtn = SramRtn::paper_model(alpha, bench.sigmas());
                let run = Ecripse::with_rtn(cfg, bench, rtn);
                match tolerance {
                    Some(t) => run.estimate_to_tolerance_observed(t, &observers),
                    None => run.estimate_observed(&observers),
                }
            }
            .map_err(|e| e.to_string())?;
            if let Some(path) = report_path {
                write_report_json(&path, &recorder.report())?;
            }
            if let (Some((registry, _)), Some(path)) = (&telemetry, &trace_path) {
                print_latency_summary(registry, path);
            }
            println!(
                "P_fail = {:.4e} ± {:.2e} (rel. err. {:.3})",
                result.p_fail,
                result.ci95_half_width,
                result.relative_error()
            );
            println!(
                "cost: {} transistor-level simulations, {} importance samples, {} classifier answers",
                result.simulations, result.is_samples, result.oracle_stats.classified
            );
            let stats = &result.oracle_stats;
            if stats.cache_hits + stats.cache_misses > 0 {
                println!(
                    "memo-cache: {} hits / {} misses ({:.1}% hit rate)",
                    stats.cache_hits,
                    stats.cache_misses,
                    100.0 * stats.cache_hit_rate()
                );
            }
        }
        "sweep" => {
            let scenario: Scenario = args.get("scenario", Scenario::default())?;
            let points: usize = args.get("points", 11)?;
            if points < 2 {
                return Err("--points must be at least 2".into());
            }
            let samples: usize = args.get("samples", 2000)?;
            let seed: u64 = args.get("seed", 0xec4155e)?;
            let mut cfg = EcripseConfig {
                scenario,
                ..EcripseConfig::default()
            };
            cfg.initial.r_max = cfg.initial.r_max.max(scenario.recommended_r_max());
            cfg.importance.n_samples = samples;
            cfg.importance.m_rtn = args.get("m-rtn", 20)?;
            cfg.seed = seed;
            cfg.threads = args.get("threads", 0)?;
            let alphas: Vec<f64> = (0..points)
                .map(|i| i as f64 / (points - 1) as f64)
                .collect();
            let report_path: Option<String> = args.opt("report")?;
            let options = SweepOptions {
                checkpoint: args.opt::<String>("checkpoint")?.map(Into::into),
                resume: args.flag("resume"),
                keep_going: args.flag("keep-going"),
            };
            let trace_path: Option<String> = args.opt("trace-log")?;
            let telemetry = trace_path.as_deref().map(trace_telemetry).transpose()?;
            let mut observers = MultiObserver::new();
            if let Some((_, bridge)) = &telemetry {
                observers.push(bridge);
            }
            let sweep = DutySweep::new(cfg, SramScenarioBench::at_vdd(scenario, vdd), alphas);
            // With a checkpoint configured, Ctrl-C drains in-flight
            // points, flushes the checkpoint and exits non-zero.
            let run = if options.checkpoint.is_some() {
                interrupt::install();
                sweep.run_resumable_interruptible_observed(&options, interrupt::flag(), &observers)
            } else {
                sweep.run_resumable_observed(&options, &observers)
            };
            let run = match run {
                Err(e @ SweepError::Interrupted { .. }) => {
                    return Err(e.to_string());
                }
                other => other.map_err(|e| e.to_string())?,
            };
            if run.points_from_checkpoint > 0 {
                eprintln!(
                    "resumed {} of {} points from checkpoint",
                    run.points_from_checkpoint,
                    run.outcomes.len()
                );
            }
            if let (Some((registry, _)), Some(path)) = (&telemetry, &trace_path) {
                print_latency_summary(registry, path);
            }
            let failed = run.failed_points();
            println!("{:<8} {:>12} {:>12}", "alpha", "P_fail", "ci95");
            for outcome in &run.outcomes {
                match &outcome.result {
                    Ok(p) => println!(
                        "{:<8} {:>12.4e} {:>12.2e}",
                        p.alpha, p.p_fail, p.ci95_half_width
                    ),
                    Err(e) => println!("{:<8} {:>12} {:>12}   {e}", outcome.alpha, "FAILED", "-"),
                }
            }
            if failed == 0 {
                let (result, reports) = run.into_parts().map_err(|e| e.to_string())?;
                if let Some(path) = report_path {
                    write_report_json(&path, &reports)?;
                }
                println!(
                    "rdf-only: {:.4e}   worst-case RTN degradation: {:.2}x   total sims: {}",
                    result.p_fail_rdf_only,
                    result.rtn_degradation_factor(),
                    result.total_simulations
                );
            } else {
                println!(
                    "rdf-only: {:.4e}   {failed} point(s) FAILED   total sims: {}",
                    run.p_fail_rdf_only, run.total_simulations
                );
                return Err(format!("{failed} sweep point(s) failed"));
            }
        }
        "margin" => {
            let dvth_str: String = args.get("dvth", "0,0,0,0,0,0".to_string())?;
            let dvth: Vec<f64> = dvth_str
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| format!("bad --dvth entry '{s}'"))
                })
                .collect::<Result<_, _>>()?;
            if dvth.len() != 6 {
                return Err("--dvth needs exactly 6 comma-separated volts".into());
            }
            let bench = ReadStabilityBench::at_vdd(vdd);
            let cell = bench.cell().with_delta_vth(&dvth);
            let read = bench.read_noise_margin(&dvth);
            let hold = bench.hold_noise_margin(&dvth);
            let write = bench.write_margin(&dvth);
            let powerup = bench.powerup_margin(&dvth);
            let b = Butterfly::sample(&cell, &cell.read_bias(), 121);
            let lobes = read_noise_margin(&b);
            println!("device order: PL, NL, PR, NR, AL, AR   V_DD = {vdd} V");
            println!(
                "read  margin: {:+8.2} mV (lobes {:+.2} / {:+.2})",
                read * 1e3,
                lobes.snm_low * 1e3,
                lobes.snm_high * 1e3
            );
            println!("hold  margin: {:+8.2} mV", hold * 1e3);
            println!("write margin: {:+8.2} mV", write * 1e3);
            println!(
                "power-up preference: {:+8.2} mV ({})",
                powerup * 1e3,
                if powerup > 0.0 {
                    "bit settles to the designed state"
                } else {
                    "PUF BIT ERROR: mismatch flips the power-up state"
                }
            );
            println!(
                "verdict: {}",
                match (read > 0.0, write > 0.0) {
                    (true, true) => "functional (read-stable, writeable)",
                    (false, _) => "READ FAILURE",
                    (_, false) => "WRITE FAILURE",
                }
            );
        }
        "naive" => {
            let bench = SramReadBench::at_vdd(vdd);
            let samples: usize = args.get("samples", 100_000)?;
            let seed: u64 = args.get("seed", 0xa1fe)?;
            let cfg = NaiveConfig {
                n_samples: samples,
                trace_every: 0,
                seed,
            };
            let result = if args.flag("no-rtn") {
                naive_monte_carlo(&bench, &NoRtn::new(6), &cfg)
            } else {
                let alpha: f64 = args.get("alpha", 0.5)?;
                let rtn = SramRtn::paper_model(alpha, bench.sigmas());
                naive_monte_carlo(&bench, &rtn, &cfg)
            };
            println!(
                "P_fail = {:.4e}  (95% CI [{:.4e}, {:.4e}], {} failures / {} trials)",
                result.p_fail,
                result.interval.lo,
                result.interval.hi,
                result.failures,
                result.simulations
            );
        }
        "serve" => {
            let addr: String = args.get("addr", "127.0.0.1:7878".to_string())?;
            let config = ServeConfig {
                workers: args.get("workers", 2)?,
                queue_capacity: args.get("queue", 16)?,
                spool: args.opt::<String>("spool")?.map(Into::into),
                cache_store: args.opt::<String>("cache-store")?.map(Into::into),
                journal: args.opt::<String>("journal")?.map(Into::into),
                // Trace spans carry the worker name as their node, so a
                // cluster waterfall names the worker, not just a port.
                node: args.opt::<String>("worker-name")?,
                ..ServeConfig::default()
            };
            let workers = config.workers.max(1);
            let server = Server::bind(&addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
            // The test harness parses this line to discover the port
            // (stdout is line-buffered even when piped).
            println!("listening on http://{}", server.local_addr());
            println!("{workers} worker(s); press Ctrl-C to drain and shut down");
            // --join enrols this server as a cluster worker: register
            // with the coordinator and heartbeat until shutdown.
            let membership = match args.opt::<String>("join")? {
                Some(coordinator) => {
                    let name: String = args.get(
                        "worker-name",
                        format!("worker-{}", server.local_addr().port()),
                    )?;
                    println!("joining cluster at {coordinator} as {name}");
                    Some(ecripse::cluster::join(JoinConfig::new(
                        coordinator,
                        name,
                        server.local_addr().to_string(),
                    )))
                }
                None => None,
            };
            interrupt::install();
            while !interrupt::requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            eprintln!("shutting down: draining in-flight jobs...");
            // Stop heartbeating first so the coordinator reaps us and
            // stops routing new shards here while we drain.
            if let Some(membership) = membership {
                membership.leave();
            }
            let summary = server.shutdown();
            println!(
                "shutdown complete: {} drained, {} persisted, {} cancelled",
                summary.drained, summary.persisted, summary.cancelled
            );
        }
        "cluster" => {
            let addr: String = args.get("addr", "127.0.0.1:7979".to_string())?;
            let config = ClusterConfig {
                heartbeat_interval: std::time::Duration::from_millis(
                    args.get("heartbeat-ms", 250u64)?.max(10),
                ),
                heartbeat_timeout: std::time::Duration::from_millis(
                    args.get("timeout-ms", 1500u64)?.max(100),
                ),
                shard_points: args.get("shard-points", 2usize)?.max(1),
                max_inflight_jobs: args.get("max-jobs", 32usize)?.max(1),
                ..ClusterConfig::default()
            };
            let coordinator =
                Coordinator::bind(&addr, config).map_err(|e| format!("bind {addr}: {e}"))?;
            // Same parseable first line as `serve` — harnesses reuse it.
            println!("listening on http://{}", coordinator.local_addr());
            println!("coordinator up; workers join with: serve --join {addr}");
            interrupt::install();
            while !interrupt::requested() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            let metrics = coordinator.metrics();
            eprintln!("shutting down: draining in-flight cluster jobs...");
            coordinator.shutdown();
            println!(
                "shutdown complete: {} job(s) completed, {} shard(s) dispatched, {} reassigned",
                metrics.jobs_completed,
                metrics.shards_dispatched_total,
                metrics.shards_reassigned_total
            );
        }
        "submit" => {
            let Some(addr) = args.opt::<String>("addr")? else {
                return Err("submit requires --addr HOST:PORT".into());
            };
            let scenario: Scenario = args.get("scenario", Scenario::default())?;
            let mut cfg = EcripseConfig::default();
            cfg.initial.r_max = cfg.initial.r_max.max(scenario.recommended_r_max());
            cfg.importance.n_samples = args.get("samples", 4000)?;
            cfg.seed = args.get("seed", 0xec4155e)?;
            cfg.threads = args.get("threads", 0)?;
            let job = if let Some(points) = args.opt::<usize>("points")? {
                if points < 2 {
                    return Err("--points must be at least 2".into());
                }
                if let Some(m_rtn) = args.opt::<usize>("m-rtn")? {
                    cfg.importance.m_rtn = m_rtn;
                }
                let alphas: Vec<f64> = (0..points)
                    .map(|i| i as f64 / (points - 1) as f64)
                    .collect();
                JobSpec::sweep(vdd, alphas)
            } else if args.flag("no-rtn") {
                cfg.importance.m_rtn = 1;
                cfg.m_rtn_stage1 = 1;
                JobSpec::rdf_only(vdd)
            } else {
                JobSpec::estimate(vdd, args.get("alpha", 0.5)?)
            };
            let timeout = std::time::Duration::from_secs(args.get("timeout", 600)?);
            let mut client = Client::new(addr.clone())
                .with_timeout(timeout.min(std::time::Duration::from_secs(30)));
            let retries: u32 = args.get("retry", 0)?;
            if retries > 0 {
                client = client.with_retry(BackoffPolicy {
                    max_attempts: retries.saturating_add(1),
                    ..BackoffPolicy::default()
                });
            }
            client.handshake().map_err(|e| format!("{addr}: {e}"))?;
            let mut request = SubmitRequest::with_scenario(scenario, cfg, job);
            if let Some(deadline_ms) = args.opt::<u64>("deadline")? {
                request = request.with_deadline_ms(deadline_ms);
            }
            if let Some(key) = args.opt::<String>("idempotency-key")? {
                request = request.with_idempotency_key(key);
            }
            let submitted = client.submit(&request).map_err(|e| e.to_string())?;
            println!(
                "job {} accepted (scenario: {}, state: {})",
                submitted.id, submitted.scenario, submitted.state
            );
            let report = client
                .wait_for_report(submitted.id, timeout)
                .map_err(|e| e.to_string())?;
            if report.state != JobState::Completed {
                return Err(format!(
                    "job {} finished as {}: {}",
                    report.id,
                    report.state,
                    report.error.unwrap_or_else(|| "no error recorded".into())
                ));
            }
            if let Some(trace_id) = &report.trace_id {
                println!(
                    "trace {trace_id} (inspect: ecripse-cli trace {} --addr {addr})",
                    report.id
                );
            }
            if let Some(sweep) = report.sweep {
                println!("{:<8} {:>12} {:>12}", "alpha", "P_fail", "ci95");
                for point in &sweep.points {
                    println!(
                        "{:<8} {:>12.4e} {:>12.2e}",
                        point.alpha, point.p_fail, point.ci95_half_width
                    );
                }
                println!(
                    "rdf-only: {:.4e}   total sims: {}",
                    sweep.p_fail_rdf_only, sweep.total_simulations
                );
            } else {
                let outcome = report
                    .estimate
                    .ok_or_else(|| "completed job carried no estimate outcome".to_string())?;
                println!(
                    "P_fail = {:.4e} ± {:.2e}",
                    outcome.p_fail, outcome.ci95_half_width
                );
                println!(
                    "cost: {} transistor-level simulations, {} importance samples",
                    outcome.simulations, outcome.is_samples
                );
            }
        }
        "trace" => {
            let Some(addr) = args.opt::<String>("addr")? else {
                return Err("trace requires --addr HOST:PORT".into());
            };
            let job_id: u64 = match leading_job.or_else(|| args.values.get("job").cloned()) {
                Some(raw) => raw
                    .parse()
                    .map_err(|_| format!("trace: job id must be numeric, got '{raw}'"))?,
                None => return Err("trace requires a JOB_ID (or --job ID)".into()),
            };
            let timeout = std::time::Duration::from_secs(args.get("timeout", 30)?);
            let client = Client::new(addr.clone()).with_timeout(timeout);
            let trace = client.trace(job_id).map_err(|e| format!("{addr}: {e}"))?;
            if args.flag("json") {
                let json = serde_json::to_string_pretty(&trace)
                    .map_err(|e| format!("render trace: {e}"))?;
                println!("{json}");
            } else if trace.spans.is_empty() {
                println!(
                    "trace {} — job {}: no spans recorded yet (job still running?)",
                    trace.trace_id, trace.job_id
                );
            } else {
                print!("{}", render_waterfall(&trace));
            }
        }
        "help" | "--help" | "-h" => usage(),
        other => {
            usage();
            return Err(format!("unknown subcommand '{other}'"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
