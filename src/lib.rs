//! # ECRIPSE — RTN-aware SRAM failure-probability estimation
//!
//! A from-scratch Rust reproduction of *"ECRIPSE: An Efficient Method for
//! Calculating RTN-Induced Failure Probability of an SRAM Cell"* (Awano,
//! Hiromoto & Sato, DATE 2015), including every substrate the paper
//! depends on:
//!
//! * [`spice`] — a miniature DC circuit simulator (EKV-style MOSFET
//!   model, Newton/MNA solver) with a 6T SRAM cell, butterfly curves and
//!   Seevinck noise-margin extraction;
//! * [`rtn`] — the random-telegraph-noise model: trap time constants,
//!   duty-ratio mixing, Poisson defect occupancy, telegraph traces;
//! * [`svm`] — the simulation-skipping classifier: polynomial features +
//!   linear SVM trained by dual coordinate descent, with incremental
//!   updates and a margin-based uncertainty band;
//! * [`stats`] — samplers, Gaussian mixtures, whitening, estimators and
//!   resampling;
//! * [`core`] — the ECRIPSE algorithm itself (particle-filter importance
//!   sampling, two-stage Monte Carlo, bias-condition sweeps), the
//!   paper's baselines (naive MC, sequential importance sampling,
//!   mean-shift IS, statistical blockade) and an observability layer
//!   that turns every run into a structured
//!   [`RunReport`](ecripse_core::observe::RunReport);
//! * [`serve`] — a job-queue estimation service over plain TCP: a
//!   bounded queue, a fixed worker pool sharing one process-wide
//!   verdict cache, a versioned JSON wire protocol and a blocking
//!   client. Served runs are bit-identical to direct library calls;
//! * [`cluster`] — scale-out on top of [`serve`]: a coordinator that
//!   speaks the same job protocol, shards sweeps over registered
//!   workers via a consistent-hash ring, reassigns shards off dead
//!   workers (heartbeats + idempotency keys) and merges shard reports
//!   into a result bit-identical to a single-process run.
//!
//! ## Quick start
//!
//! ```no_run
//! use ecripse::prelude::*;
//!
//! // Failure probability of the paper's cell, process variation only.
//! let bench = SramReadBench::paper_cell();
//! let result = Ecripse::new(EcripseConfig::default(), bench).estimate()?;
//! println!("P_fail = {:.3e} ± {:.2e}", result.p_fail, result.ci95_half_width);
//!
//! // Now with RTN at duty ratio α = 0.3.
//! let bench = SramReadBench::paper_cell();
//! let rtn = SramRtn::paper_model(0.3, bench.sigmas());
//! let result = Ecripse::with_rtn(EcripseConfig::default(), bench, rtn).estimate()?;
//! println!("with RTN: {:.3e}", result.p_fail);
//! # Ok::<(), ecripse::core::ecripse::EstimateError>(())
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and substitutions, and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use ecripse_cluster as cluster;
pub use ecripse_core as core;
pub use ecripse_rtn as rtn;
pub use ecripse_serve as serve;
pub use ecripse_spice as spice;
pub use ecripse_stats as stats;
pub use ecripse_svm as svm;

/// The items most users need, in one import.
pub mod prelude {
    pub use ecripse_cluster::{ClusterConfig, Coordinator, HashRing, JoinConfig, WorkerRegistry};
    pub use ecripse_core::baseline::{
        gibbs_is, mean_shift_is, naive_monte_carlo, statistical_blockade, BlockadeConfig,
        GibbsConfig, MeanShiftConfig, NaiveConfig, SequentialImportanceSampling,
    };
    pub use ecripse_core::bench::{SimCounter, SramReadBench, Testbench};
    pub use ecripse_core::cache::{MemoBench, MemoCacheConfig};
    pub use ecripse_core::ecripse::{Ecripse, EcripseConfig, EcripseResult, EstimateError};
    pub use ecripse_core::observe::{
        MultiObserver, NullObserver, Observer, ProgressObserver, RunRecorder, RunReport,
    };
    pub use ecripse_core::retry::{RetryBench, RetryPolicy};
    pub use ecripse_core::rtn_source::{NoRtn, RtnSource, SramRtn};
    pub use ecripse_core::scenario::{registry, Scenario, ScenarioInfo, SramScenarioBench};
    pub use ecripse_core::sweep::{
        merge_sweep_shards, CheckpointError, DutySweep, MergeError, PointOutcome, ResumableSweep,
        SweepBench, SweepError, SweepOptions, SweepPoint, SweepReports, SweepResult, SweepShard,
    };
    pub use ecripse_core::telemetry::{
        Counter, Gauge, Histogram, MetricsRegistry, RotatingFileSink, SpanRecord, SpanStore,
        TelemetryObserver, TraceContext, Tracer,
    };
    pub use ecripse_rtn::model::RtnCellModel;
    pub use ecripse_serve::{
        BackoffPolicy, Client, ClientError, JobSpec, JobState, JobTrace, Readiness, ServeConfig,
        Server, SubmitRequest,
    };
    pub use ecripse_spice::error::EvalError;
    pub use ecripse_spice::sram::{CellDevice, Sram6T};
    pub use ecripse_spice::testbench::ReadStabilityBench;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let bench = SramReadBench::paper_cell();
        assert_eq!(ecripse_core::bench::Testbench::dim(&bench), 6);
        let _ = EcripseConfig::default();
        let _ = NaiveConfig::default();
    }
}
