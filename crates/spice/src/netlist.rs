//! A minimal netlist with modified nodal analysis (MNA) stamping.
//!
//! Supports the element set needed by the SRAM testbench and its
//! verification circuits: resistors, independent DC voltage sources (via
//! MNA branch currents), independent DC current sources, and MOSFETs from
//! [`crate::model`]. Node 0 is ground by convention.

use crate::lu::DenseMatrix;
use crate::model::{Mosfet, MosfetKind};

/// Index of a circuit node. Node 0 is ground.
pub type NodeId = usize;

/// A circuit element.
#[derive(Debug, Clone)]
pub enum Element {
    /// Linear resistor between two nodes \[Ω\].
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Independent DC voltage source: `V(plus) − V(minus) = volts`.
    VSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Source voltage \[V\].
        volts: f64,
    },
    /// Independent DC current source pulling `amps` out of `from` and
    /// pushing it into `into`.
    ISource {
        /// Node current is pulled out of.
        from: NodeId,
        /// Node current is pushed into.
        into: NodeId,
        /// Source current \[A\].
        amps: f64,
    },
    /// MOSFET with (drain, gate, source) terminals; bulk is implicit
    /// (ground for NMOS, the netlist's `vdd_bulk` for PMOS).
    Mosfet {
        /// Drain node.
        d: NodeId,
        /// Gate node.
        g: NodeId,
        /// Source node.
        s: NodeId,
        /// Device instance.
        device: Mosfet,
    },
}

/// A flat netlist.
///
/// The MNA unknown vector is laid out as
/// `[v₁ … v_{N−1}, i_branch₁ … i_branch_M]`, i.e. all non-ground node
/// voltages followed by one branch current per voltage source, in element
/// insertion order.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    elements: Vec<Element>,
    node_count: usize,
    vdd_bulk: f64,
}

impl Netlist {
    /// Creates an empty netlist; `vdd_bulk` is the PMOS bulk voltage
    /// (normally the supply rail).
    pub fn new(vdd_bulk: f64) -> Self {
        Self {
            elements: Vec::new(),
            node_count: 1, // ground
            vdd_bulk,
        }
    }

    /// Allocates a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_count;
        self.node_count += 1;
        id
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The PMOS bulk voltage.
    pub fn vdd_bulk(&self) -> f64 {
        self.vdd_bulk
    }

    /// Adds an element.
    ///
    /// # Panics
    ///
    /// Panics if any referenced node was not allocated, or a resistor has
    /// a non-positive resistance.
    pub fn add(&mut self, e: Element) {
        let check = |n: NodeId| {
            assert!(
                n < self.node_count,
                "element references unallocated node {n}"
            );
        };
        match &e {
            Element::Resistor { a, b, ohms } => {
                check(*a);
                check(*b);
                assert!(*ohms > 0.0, "resistance must be positive, got {ohms}");
            }
            Element::VSource { plus, minus, .. } => {
                check(*plus);
                check(*minus);
            }
            Element::ISource { from, into, .. } => {
                check(*from);
                check(*into);
            }
            Element::Mosfet { d, g, s, .. } => {
                check(*d);
                check(*g);
                check(*s);
            }
        }
        self.elements.push(e);
    }

    /// The elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of voltage sources (each adds one MNA branch unknown).
    pub fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VSource { .. }))
            .count()
    }

    /// Size of the MNA system: non-ground nodes plus voltage-source
    /// branches.
    pub fn system_size(&self) -> usize {
        (self.node_count - 1) + self.vsource_count()
    }

    /// Node voltage from the MNA state vector (`0.0` for ground).
    pub fn node_voltage(&self, state: &[f64], node: NodeId) -> f64 {
        if node == 0 {
            0.0
        } else {
            state[node - 1]
        }
    }

    /// Assembles the Newton linearisation at the MNA state `state`
    /// (layout as documented on [`Netlist`]): fills `jac` with the
    /// Jacobian `∂f/∂state` and `residual` with `f(state)`, where the
    /// Newton update solves `J·Δ = −f`.
    ///
    /// `gmin` is a diagonal conductance to ground added to every node
    /// (g-min stepping); `src_scale` scales all independent sources
    /// (source stepping).
    ///
    /// # Panics
    ///
    /// Panics if buffer sizes do not match [`Self::system_size`].
    pub fn assemble(
        &self,
        state: &[f64],
        gmin: f64,
        src_scale: f64,
        jac: &mut DenseMatrix,
        residual: &mut [f64],
    ) {
        let n = self.system_size();
        assert_eq!(jac.dim(), n, "jacobian size mismatch");
        assert_eq!(residual.len(), n, "residual size mismatch");
        assert_eq!(state.len(), n, "state vector size mismatch");

        jac.clear();
        residual.fill(0.0);

        let vn = |node: NodeId| self.node_voltage(state, node);
        // Map node id → unknown index (ground has none).
        let idx = |node: NodeId| -> Option<usize> {
            if node == 0 {
                None
            } else {
                Some(node - 1)
            }
        };

        // g-min to ground on every non-ground node.
        for node in 1..self.node_count {
            let i = idx(node).expect("non-ground node");
            jac.add(i, i, gmin);
            residual[i] += gmin * vn(node);
        }

        let mut branch = self.node_count - 1;
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let current = g * (vn(*a) - vn(*b));
                    if let Some(i) = idx(*a) {
                        jac.add(i, i, g);
                        residual[i] += current;
                        if let Some(j) = idx(*b) {
                            jac.add(i, j, -g);
                        }
                    }
                    if let Some(j) = idx(*b) {
                        jac.add(j, j, g);
                        residual[j] -= current;
                        if let Some(i) = idx(*a) {
                            jac.add(j, i, -g);
                        }
                    }
                }
                Element::ISource { from, into, amps } => {
                    let a = amps * src_scale;
                    if let Some(i) = idx(*from) {
                        residual[i] += a;
                    }
                    if let Some(j) = idx(*into) {
                        residual[j] -= a;
                    }
                }
                Element::VSource { plus, minus, volts } => {
                    let b = branch;
                    branch += 1;
                    let i_branch = state[b];
                    // KCL: the branch current leaves `plus`, enters `minus`.
                    if let Some(i) = idx(*plus) {
                        jac.add(i, b, 1.0);
                        residual[i] += i_branch;
                    }
                    if let Some(j) = idx(*minus) {
                        jac.add(j, b, -1.0);
                        residual[j] -= i_branch;
                    }
                    // Branch equation: V(plus) − V(minus) − volts = 0.
                    if let Some(i) = idx(*plus) {
                        jac.add(b, i, 1.0);
                    }
                    if let Some(j) = idx(*minus) {
                        jac.add(b, j, -1.0);
                    }
                    residual[b] += vn(*plus) - vn(*minus) - volts * src_scale;
                }
                Element::Mosfet { d, g, s, device } => {
                    let out = device.eval(vn(*g), vn(*d), vn(*s), self.vdd_bulk);
                    let (id, gm, gds, gs) = (out.id, out.gm, out.gds, out.gs);
                    // Current `id` flows into the drain and out of the
                    // source.
                    if let Some(i) = idx(*d) {
                        residual[i] += id;
                        jac.add(i, i, gds);
                        if let Some(jg) = idx(*g) {
                            jac.add(i, jg, gm);
                        }
                        if let Some(js) = idx(*s) {
                            jac.add(i, js, gs);
                        }
                    }
                    if let Some(i) = idx(*s) {
                        residual[i] -= id;
                        jac.add(i, i, -gs);
                        if let Some(jg) = idx(*g) {
                            jac.add(i, jg, -gm);
                        }
                        if let Some(jd) = idx(*d) {
                            jac.add(i, jd, -gds);
                        }
                    }
                }
            }
        }
    }

    /// Checks whether the netlist contains at least one PMOS device —
    /// used by validation to warn when `vdd_bulk` was left at zero.
    pub fn has_pmos(&self) -> bool {
        self.elements.iter().any(|e| {
            matches!(
                e,
                Element::Mosfet { device, .. } if device.params.kind == MosfetKind::Pmos
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::DenseMatrix;

    #[test]
    fn node_allocation_is_sequential() {
        let mut n = Netlist::new(0.7);
        assert_eq!(n.add_node(), 1);
        assert_eq!(n.add_node(), 2);
        assert_eq!(n.node_count(), 3);
    }

    #[test]
    fn system_size_counts_vsources() {
        let mut n = Netlist::new(0.7);
        let a = n.add_node();
        let b = n.add_node();
        n.add(Element::VSource {
            plus: a,
            minus: 0,
            volts: 1.0,
        });
        n.add(Element::Resistor { a, b, ohms: 1e3 });
        n.add(Element::Resistor {
            a: b,
            b: 0,
            ohms: 1e3,
        });
        assert_eq!(n.system_size(), 3); // 2 nodes + 1 branch
    }

    #[test]
    fn resistor_stamp_is_symmetric() {
        let mut n = Netlist::new(0.0);
        let a = n.add_node();
        let b = n.add_node();
        n.add(Element::Resistor { a, b, ohms: 2.0 });
        let mut jac = DenseMatrix::zeros(n.system_size());
        let mut res = vec![0.0; n.system_size()];
        n.assemble(&[1.0, 0.0], 0.0, 1.0, &mut jac, &mut res);
        assert_eq!(jac.get(0, 0), 0.5);
        assert_eq!(jac.get(1, 1), 0.5);
        assert_eq!(jac.get(0, 1), -0.5);
        assert_eq!(jac.get(1, 0), -0.5);
        // 0.5 A leaves node a, enters node b.
        assert_eq!(res[0], 0.5);
        assert_eq!(res[1], -0.5);
    }

    #[test]
    fn vsource_branch_current_appears_in_kcl() {
        let mut n = Netlist::new(0.0);
        let a = n.add_node();
        n.add(Element::VSource {
            plus: a,
            minus: 0,
            volts: 1.0,
        });
        // State: v_a = 1.0, branch current = 0.25 A.
        let mut jac = DenseMatrix::zeros(2);
        let mut res = vec![0.0; 2];
        n.assemble(&[1.0, 0.25], 0.0, 1.0, &mut jac, &mut res);
        // KCL at a: +i_branch.
        assert_eq!(res[0], 0.25);
        // Branch equation satisfied: v_a − 1.0 = 0.
        assert_eq!(res[1], 0.0);
        assert_eq!(jac.get(0, 1), 1.0);
        assert_eq!(jac.get(1, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "unallocated node")]
    fn rejects_unallocated_nodes() {
        let mut n = Netlist::new(0.0);
        n.add(Element::Resistor {
            a: 0,
            b: 5,
            ohms: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn rejects_nonpositive_resistance() {
        let mut n = Netlist::new(0.0);
        let a = n.add_node();
        n.add(Element::Resistor { a, b: 0, ohms: 0.0 });
    }

    #[test]
    fn has_pmos_detects_polarity() {
        use crate::ptm::{paper_geometry, DeviceRole};
        let mut n = Netlist::new(0.7);
        let d = n.add_node();
        assert!(!n.has_pmos());
        n.add(Element::Mosfet {
            d,
            g: 0,
            s: 0,
            device: paper_geometry(DeviceRole::Driver).build(),
        });
        assert!(!n.has_pmos());
        n.add(Element::Mosfet {
            d,
            g: 0,
            s: 0,
            device: paper_geometry(DeviceRole::Load).build(),
        });
        assert!(n.has_pmos());
    }
}
