//! A smooth EKV-style MOSFET compact model.
//!
//! The EKV interpolation function covers weak, moderate and strong
//! inversion with one C¹-continuous expression, which keeps Newton
//! iterations and the bisection solves of [`crate::sram`] robust:
//!
//! ```text
//! I_D = I_S · [F((V_P − V_S)/V_t) − F((V_P − V_D)/V_t)] · (1 + λ·|V_DS|)
//! F(u) = ln²(1 + e^{u/2}),   V_P = (V_G − V_TH)/n,   I_S = 2·n·β·V_t²
//! ```
//!
//! All node voltages are bulk-referenced; PMOS devices are evaluated by
//! mirroring voltages about the bulk. The model is symmetric in
//! drain/source (swapping `V_D` and `V_S` flips the current's sign), so
//! pass transistors work without terminal bookkeeping.

use serde::{Deserialize, Serialize};

/// Thermal voltage `kT/q` at 300 K, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.025_852;

/// Polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetKind {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl std::fmt::Display for MosfetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MosfetKind::Nmos => write!(f, "nmos"),
            MosfetKind::Pmos => write!(f, "pmos"),
        }
    }
}

/// Technology parameters of one device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Polarity.
    pub kind: MosfetKind,
    /// Zero-bias threshold voltage magnitude \[V\] (positive for both
    /// polarities; the sign convention is handled by the evaluator).
    pub vth0: f64,
    /// Transconductance parameter `μ·C_ox` \[A/V²\].
    pub kp: f64,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub slope_n: f64,
    /// Channel-length modulation \[1/V\].
    pub lambda: f64,
    /// Drain-induced barrier lowering \[V/V\]: the effective threshold is
    /// reduced by `dibl·|V_DS|`. Dominant short-channel effect at 16 nm
    /// and the reason a ratio-1 cell has a thin read margin.
    pub dibl: f64,
    /// Thermal voltage \[V\]; exposed so tests can exaggerate or suppress
    /// subthreshold effects.
    pub v_thermal: f64,
}

impl MosfetParams {
    /// Validates physical sanity of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.vth0.is_finite() && self.vth0 > 0.0) {
            return Err(format!("vth0 must be positive, got {}", self.vth0));
        }
        if !(self.kp.is_finite() && self.kp > 0.0) {
            return Err(format!("kp must be positive, got {}", self.kp));
        }
        if !(self.slope_n.is_finite() && self.slope_n >= 1.0) {
            return Err(format!("slope factor must be ≥ 1, got {}", self.slope_n));
        }
        if !(self.lambda.is_finite() && self.lambda >= 0.0) {
            return Err(format!("lambda must be ≥ 0, got {}", self.lambda));
        }
        if !(self.dibl.is_finite() && self.dibl >= 0.0) {
            return Err(format!("dibl must be ≥ 0, got {}", self.dibl));
        }
        if !(self.v_thermal.is_finite() && self.v_thermal > 0.0) {
            return Err(format!(
                "v_thermal must be positive, got {}",
                self.v_thermal
            ));
        }
        Ok(())
    }
}

/// One sized MOSFET instance with an optional threshold-voltage shift.
///
/// `delta_vth` is the *total* shift applied on top of `params.vth0`
/// (process variation plus RTN); positive values always weaken the device,
/// for either polarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    /// Technology parameters.
    pub params: MosfetParams,
    /// Channel width \[m\].
    pub width: f64,
    /// Channel length \[m\].
    pub length: f64,
    /// Threshold shift \[V\]; positive weakens the device.
    pub delta_vth: f64,
}

/// Drain current and its derivatives with respect to the three terminal
/// voltages, as needed for Newton stamping.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DrainCurrent {
    /// Current into the drain terminal \[A\].
    pub id: f64,
    /// ∂I_D/∂V_G \[S\].
    pub gm: f64,
    /// ∂I_D/∂V_D \[S\].
    pub gds: f64,
    /// ∂I_D/∂V_S \[S\].
    pub gs: f64,
}

/// Numerically safe `ln(1 + e^x)`.
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically safe logistic `1/(1 + e^{−x})`.
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// EKV interpolation `F(u) = ln²(1 + e^{u/2})`.
fn ekv_f(u: f64) -> f64 {
    let l = softplus(0.5 * u);
    l * l
}

/// Derivative `F'(u) = ln(1 + e^{u/2}) · σ(u/2)`.
fn ekv_fp(u: f64) -> f64 {
    softplus(0.5 * u) * sigmoid(0.5 * u)
}

impl Mosfet {
    /// Creates a device instance with zero threshold shift.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`MosfetParams::validate`] or the
    /// geometry is non-positive.
    pub fn new(params: MosfetParams, width: f64, length: f64) -> Self {
        params.validate().expect("invalid MOSFET parameters");
        assert!(
            width > 0.0 && length > 0.0 && width.is_finite() && length.is_finite(),
            "geometry must be positive, got W={width} L={length}"
        );
        Self {
            params,
            width,
            length,
            delta_vth: 0.0,
        }
    }

    /// Returns a copy with the given total threshold shift.
    pub fn with_delta_vth(mut self, delta_vth: f64) -> Self {
        self.delta_vth = delta_vth;
        self
    }

    /// Effective threshold magnitude including the shift.
    pub fn vth(&self) -> f64 {
        self.params.vth0 + self.delta_vth
    }

    /// Gain factor `β = kp·W/L`.
    pub fn beta(&self) -> f64 {
        self.params.kp * self.width / self.length
    }

    /// Evaluates the drain current (positive into the drain for current
    /// flowing drain→source in an NMOS) and its derivatives.
    ///
    /// Voltages are absolute node voltages with the bulk of NMOS devices
    /// at 0 V and the bulk of PMOS devices at `vdd_bulk`.
    pub fn eval(&self, vg: f64, vd: f64, vs: f64, vdd_bulk: f64) -> DrainCurrent {
        match self.params.kind {
            MosfetKind::Nmos => self.eval_n(vg, vd, vs),
            MosfetKind::Pmos => {
                // Mirror about the PMOS bulk: an NMOS with primed voltages.
                let out = self.eval_n(vdd_bulk - vg, vdd_bulk - vd, vdd_bulk - vs);
                // I'_D (into the mirrored drain) corresponds to −I_D; each
                // voltage mirror also flips the derivative sign, so the
                // conductances come back positive-definite.
                DrainCurrent {
                    id: -out.id,
                    gm: out.gm,
                    gds: out.gds,
                    gs: out.gs,
                }
            }
        }
    }

    /// NMOS evaluation in bulk-referenced coordinates.
    fn eval_n(&self, vg: f64, vd: f64, vs: f64) -> DrainCurrent {
        let p = &self.params;
        let vt = p.v_thermal;
        let n = p.slope_n;
        let vds = vd - vs;
        let sgn = sign_smooth(vds);
        // DIBL lowers the barrier with drain bias.
        let vth_eff = self.vth() - p.dibl * vds.abs();
        let vp = (vg - vth_eff) / n;
        let is = 2.0 * n * self.beta() * vt * vt;

        let uf = (vp - vs) / vt;
        let ur = (vp - vd) / vt;
        let ff = ekv_f(uf);
        let fr = ekv_f(ur);
        let fpf = ekv_fp(uf);
        let fpr = ekv_fp(ur);

        let clm = 1.0 + p.lambda * vds.abs();
        let dclm_dvd = p.lambda * sgn;
        let dclm_dvs = -dclm_dvd;
        // ∂V_P/∂V_D = dibl·sgn/n, ∂V_P/∂V_S = −dibl·sgn/n.
        let dvp_dvd = p.dibl * sgn / n;

        let core = is * (ff - fr);
        let id = core * clm;
        // ∂/∂VG: uf and ur both move through VP with slope 1/(n·vt).
        let gm = is * (fpf - fpr) / (n * vt) * clm;
        // ∂/∂VD: ur moves with (∂VP/∂VD − 1)/vt, uf with ∂VP/∂VD/vt.
        let gds = is / vt * (fpf * dvp_dvd - fpr * (dvp_dvd - 1.0)) * clm + core * dclm_dvd;
        // ∂/∂VS: uf moves with (−∂VP/∂VD − 1)/vt, ur with −∂VP/∂VD/vt.
        let gs = is / vt * (fpf * (-dvp_dvd - 1.0) + fpr * dvp_dvd) * clm + core * dclm_dvs;
        DrainCurrent { id, gm, gds, gs }
    }
}

/// A smooth sign function (exact away from 0; 0 at 0) so that the CLM term
/// does not inject a derivative discontinuity exactly at V_DS = 0.
fn sign_smooth(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(
            MosfetParams {
                kind: MosfetKind::Nmos,
                vth0: 0.43,
                kp: 7.0e-4,
                slope_n: 1.35,
                lambda: 0.15,
                dibl: 0.15,
                v_thermal: THERMAL_VOLTAGE,
            },
            60e-9,
            16e-9,
        )
    }

    fn pmos() -> Mosfet {
        Mosfet::new(
            MosfetParams {
                kind: MosfetKind::Pmos,
                vth0: 0.44,
                kp: 3.2e-4,
                slope_n: 1.35,
                lambda: 0.15,
                dibl: 0.15,
                v_thermal: THERMAL_VOLTAGE,
            },
            60e-9,
            16e-9,
        )
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = nmos();
        for vg in [0.0, 0.3, 0.7] {
            let out = m.eval(vg, 0.4, 0.4, 0.7);
            assert!(out.id.abs() < 1e-18, "I(vds=0) = {}", out.id);
        }
    }

    #[test]
    fn current_increases_with_gate_drive() {
        let m = nmos();
        let lo = m.eval(0.3, 0.7, 0.0, 0.7).id;
        let mid = m.eval(0.5, 0.7, 0.0, 0.7).id;
        let hi = m.eval(0.7, 0.7, 0.0, 0.7).id;
        assert!(lo < mid && mid < hi);
        assert!(lo > 0.0);
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        // Below threshold, decade change per ~n·Vt·ln(10) of gate bias.
        // Stay well below the DIBL-lowered effective threshold
        // (0.43 − 0.15·0.7 ≈ 0.33 V) so both points are in weak inversion.
        let m = nmos();
        let i1 = m.eval(0.10, 0.7, 0.0, 0.7).id;
        let dec = m.params.slope_n * m.params.v_thermal * std::f64::consts::LN_10;
        let i2 = m.eval(0.10 + dec, 0.7, 0.0, 0.7).id;
        let ratio = i2 / i1;
        assert!(
            (ratio - 10.0).abs() < 1.5,
            "one decade per n·Vt·ln10 expected, got ratio {ratio}"
        );
    }

    #[test]
    fn drain_source_antisymmetry() {
        // Swapping D and S flips the current sign exactly (CLM uses |VDS|).
        let m = nmos();
        let fwd = m.eval(0.6, 0.5, 0.1, 0.7).id;
        let rev = m.eval(0.6, 0.1, 0.5, 0.7).id;
        assert!((fwd + rev).abs() < 1e-12 * fwd.abs().max(1e-18));
    }

    #[test]
    fn saturation_current_flattens() {
        let m = nmos();
        // Output conductance deep in the triode region vs deep in
        // saturation; λ and DIBL keep the latter finite but much smaller.
        let g_lin = m.eval(0.7, 0.02, 0.0, 0.7).gds;
        let g_sat = m.eval(0.7, 0.65, 0.0, 0.7).gds;
        assert!(
            g_sat < 0.5 * g_lin,
            "saturation gds {g_sat} vs triode gds {g_lin}"
        );
    }

    #[test]
    fn delta_vth_weakens_both_polarities() {
        let n0 = nmos().eval(0.7, 0.7, 0.0, 0.7).id;
        let n1 = nmos().with_delta_vth(0.05).eval(0.7, 0.7, 0.0, 0.7).id;
        assert!(n1 < n0);

        // PMOS pulling up: source at VDD, drain low, gate at 0.
        let p0 = pmos().eval(0.0, 0.2, 0.7, 0.7).id;
        let p1 = pmos().with_delta_vth(0.05).eval(0.0, 0.2, 0.7, 0.7).id;
        // PMOS drain current is negative (current flows out of drain node
        // convention: into drain is negative when sourcing current).
        assert!(p0 < 0.0);
        assert!(p1.abs() < p0.abs());
    }

    #[test]
    fn pmos_off_when_gate_high() {
        let p = pmos();
        let on = p.eval(0.0, 0.0, 0.7, 0.7).id.abs();
        let off = p.eval(0.7, 0.0, 0.7, 0.7).id.abs();
        assert!(off < on * 1e-3, "on={on:e} off={off:e}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = nmos();
        let p = pmos();
        let h = 1e-7;
        for (dev, vg, vd, vs) in [
            (&m, 0.55, 0.6, 0.05),
            (&m, 0.25, 0.7, 0.0),
            (&m, 0.7, 0.05, 0.0),
            (&p, 0.1, 0.3, 0.7),
            (&p, 0.6, 0.1, 0.7),
        ] {
            let base = dev.eval(vg, vd, vs, 0.7);
            let dg =
                (dev.eval(vg + h, vd, vs, 0.7).id - dev.eval(vg - h, vd, vs, 0.7).id) / (2.0 * h);
            let dd =
                (dev.eval(vg, vd + h, vs, 0.7).id - dev.eval(vg, vd - h, vs, 0.7).id) / (2.0 * h);
            let ds =
                (dev.eval(vg, vd, vs + h, 0.7).id - dev.eval(vg, vd, vs - h, 0.7).id) / (2.0 * h);
            assert!(
                (base.gm - dg).abs() <= 1e-4 * base.gm.abs().max(1e-9) + 1e-9,
                "gm analytic {} vs fd {} at ({vg},{vd},{vs})",
                base.gm,
                dg
            );
            assert!((base.gds - dd).abs() <= 1e-4 * base.gds.abs().max(1e-9) + 1e-9);
            assert!((base.gs - ds).abs() <= 1e-4 * base.gs.abs().max(1e-9) + 1e-9);
        }
    }

    #[test]
    fn softplus_and_sigmoid_extremes_are_finite() {
        assert!(ekv_f(2000.0).is_finite());
        assert_eq!(ekv_f(-2000.0), 0.0);
        assert!(ekv_fp(2000.0).is_finite());
        assert_eq!(ekv_fp(-2000.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn rejects_nonpositive_geometry() {
        let p = nmos().params;
        let _ = Mosfet::new(p, 0.0, 16e-9);
    }

    #[test]
    fn params_validate_catches_bad_values() {
        let mut p = nmos().params;
        p.vth0 = -0.1;
        assert!(p.validate().is_err());
        let mut p = nmos().params;
        p.slope_n = 0.5;
        assert!(p.validate().is_err());
        let mut p = nmos().params;
        p.kp = f64::NAN;
        assert!(p.validate().is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn nmos() -> Mosfet {
        Mosfet::new(
            MosfetParams {
                kind: MosfetKind::Nmos,
                vth0: 0.43,
                kp: 7.0e-4,
                slope_n: 1.35,
                lambda: 0.15,
                dibl: 0.25,
                v_thermal: THERMAL_VOLTAGE,
            },
            30e-9,
            16e-9,
        )
    }

    proptest! {
        /// Swapping drain and source always flips the current sign
        /// (channel symmetry), for any bias in the operating range.
        #[test]
        fn prop_drain_source_antisymmetry(
            vg in 0.0f64..0.8,
            vd in 0.0f64..0.8,
            vs in 0.0f64..0.8,
        ) {
            let m = nmos();
            let fwd = m.eval(vg, vd, vs, 0.7).id;
            let rev = m.eval(vg, vs, vd, 0.7).id;
            prop_assert!((fwd + rev).abs() <= 1e-12 * fwd.abs().max(1e-15));
        }

        /// More gate drive never reduces forward current.
        #[test]
        fn prop_monotone_in_gate(
            vg in 0.0f64..0.7,
            dv in 0.001f64..0.1,
            vd in 0.05f64..0.7,
        ) {
            let m = nmos();
            let lo = m.eval(vg, vd, 0.0, 0.7).id;
            let hi = m.eval(vg + dv, vd, 0.0, 0.7).id;
            prop_assert!(hi >= lo);
        }

        /// Raising the drain never reduces the current out of the node
        /// (passivity — the property the VTC bisection relies on).
        #[test]
        fn prop_monotone_in_drain(
            vg in 0.0f64..0.8,
            vd in 0.0f64..0.7,
            dv in 0.001f64..0.1,
        ) {
            let m = nmos();
            let lo = m.eval(vg, vd, 0.0, 0.7).id;
            let hi = m.eval(vg, vd + dv, 0.0, 0.7).id;
            prop_assert!(hi >= lo - 1e-15);
        }

        /// A positive threshold shift never strengthens the device.
        #[test]
        fn prop_delta_vth_weakens(
            vg in 0.2f64..0.8,
            vd in 0.1f64..0.7,
            shift in 0.0f64..0.2,
        ) {
            let base = nmos().eval(vg, vd, 0.0, 0.7).id;
            let weak = nmos().with_delta_vth(shift).eval(vg, vd, 0.0, 0.7).id;
            prop_assert!(weak <= base + 1e-18);
        }
    }
}
