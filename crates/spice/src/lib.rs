//! Transistor-level DC simulation substrate for the ECRIPSE reproduction.
//!
//! The paper evaluates its indicator function `I(x)` with HSPICE and the
//! PTM 16 nm high-performance model cards. This crate is the from-scratch
//! replacement: a small but real DC circuit simulator specialised for the
//! 6T SRAM read-stability testbench.
//!
//! Layers, bottom-up:
//!
//! * [`model`] — a smooth EKV-style MOSFET compact model with analytic
//!   derivatives, valid from subthreshold to strong inversion and
//!   symmetric in drain/source (so bit-line access transistors need no
//!   terminal-swapping logic).
//! * [`ptm`] — a PTM-16nm-HP-like parameter set plus the paper's Table I
//!   device geometry.
//! * [`lu`] / [`netlist`] / [`solver`] — dense LU, modified nodal analysis
//!   and a damped Newton solver with g-min stepping: a miniature SPICE DC
//!   engine used for operating points and solver cross-checks.
//! * [`sram`] — the 6T cell: device set, bias conditions, and fast 1-D
//!   bisection solves for the read voltage-transfer curves (exploiting
//!   that node current is monotone in node voltage for this topology).
//! * [`butterfly`] / [`snm`] — butterfly curve construction and the
//!   Seevinck maximum-embedded-square static noise margin, extended with a
//!   signed (negative) margin for read-unstable cells so that bisection
//!   root-finding over the variability space is well posed.
//! * [`testbench`] — [`testbench::ReadStabilityBench`], the "transistor-
//!   level simulation" the rest of the workspace counts and accelerates:
//!   per-device ΔVth in, a cell margin (and pass/fail) out. Four
//!   indicators share the machinery: read stability (the paper's),
//!   hold/retention stability, write margin, and the power-up preference
//!   of a skew-designed PUF bit.
//!
//! # Example
//!
//! ```
//! use ecripse_spice::testbench::ReadStabilityBench;
//!
//! let bench = ReadStabilityBench::paper_cell();
//! // Nominal cell: healthy read margin.
//! let nominal = bench.read_noise_margin(&[0.0; 6]);
//! assert!(nominal > 0.0);
//! // A heavily imbalanced cell fails the read.
//! let skewed = bench.read_noise_margin(&[0.25, -0.25, -0.25, 0.25, 0.0, 0.0]);
//! assert!(skewed < nominal);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod butterfly;
pub mod error;
pub mod lu;
pub mod model;
pub mod netlist;
pub mod ptm;
pub mod snm;
pub mod solver;
pub mod sram;
pub mod testbench;

pub use error::EvalError;
pub use model::{Mosfet, MosfetKind, MosfetParams};
pub use ptm::{paper_geometry, ptm16_hp_nmos, ptm16_hp_pmos, DeviceGeometry, DeviceRole};
pub use snm::{read_noise_margin, try_read_noise_margin, SnmReport};
pub use sram::Sram6T;
pub use testbench::ReadStabilityBench;
