//! The 6T SRAM cell and its read/hold voltage-transfer curves.
//!
//! ```text
//!        BL            VDD   VDD            BLB
//!         |             |     |              |
//!         |   PL ─┤(g=QB)     (g=Q)├─ PR     |
//!  WL ─[AL]── Q ──┬─────┐     ┌──────── QB ──[AR]─ WL
//!                 │ NL ─┤(g=QB)     (g=Q)├─ NR
//!                 |     |     |       |
//!                GND   GND   GND     GND
//! ```
//!
//! During a read, the word line and both bit lines sit at `V_DD`, so the
//! node storing 0 is pulled upward through its access transistor — the
//! disturbance that makes read the critical stability condition.
//!
//! The cell's voltage-transfer curves are solved with a guarded 1-D
//! bisection: with one storage node forced, the net current into the other
//! node is **strictly decreasing** in its voltage (every attached device
//! is passive in that sense), so the solve is unconditionally convergent —
//! no Newton heuristics in the innermost Monte Carlo loop. The general
//! MNA solver in [`crate::solver`] is used in tests to cross-check these
//! fast solves.

use crate::model::Mosfet;
use crate::ptm::{paper_geometry, DeviceRole, VDD_NOMINAL};
use serde::{Deserialize, Serialize};

/// Reference temperature of the technology cards \[K\].
pub const T_NOMINAL_K: f64 = 300.0;

/// First-order threshold temperature coefficient \[V/K\]: both
/// polarities lose about 1 mV of threshold magnitude per kelvin of
/// heating (the textbook figure for scaled CMOS).
pub const VTH_TEMPCO: f64 = 1.0e-3;

/// Identifies one of the six cell transistors.
///
/// The `usize` value of each variant is the canonical position of that
/// device in every ΔVth vector used throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellDevice {
    /// Left pull-up PMOS (gate = QB). Index 0.
    LoadL = 0,
    /// Left pull-down NMOS (gate = QB). Index 1.
    DriverL = 1,
    /// Right pull-up PMOS (gate = Q). Index 2.
    LoadR = 2,
    /// Right pull-down NMOS (gate = Q). Index 3.
    DriverR = 3,
    /// Left access NMOS (gate = WL, BL ↔ Q). Index 4.
    AccessL = 4,
    /// Right access NMOS (gate = WL, BLB ↔ QB). Index 5.
    AccessR = 5,
}

impl CellDevice {
    /// All six devices in canonical index order.
    pub const ALL: [CellDevice; 6] = [
        CellDevice::LoadL,
        CellDevice::DriverL,
        CellDevice::LoadR,
        CellDevice::DriverR,
        CellDevice::AccessL,
        CellDevice::AccessR,
    ];

    /// The device's role (load / driver / access).
    pub fn role(&self) -> DeviceRole {
        match self {
            CellDevice::LoadL | CellDevice::LoadR => DeviceRole::Load,
            CellDevice::DriverL | CellDevice::DriverR => DeviceRole::Driver,
            CellDevice::AccessL | CellDevice::AccessR => DeviceRole::Access,
        }
    }

    /// The mirror-image device under a left↔right cell reflection.
    pub fn mirrored(&self) -> CellDevice {
        match self {
            CellDevice::LoadL => CellDevice::LoadR,
            CellDevice::LoadR => CellDevice::LoadL,
            CellDevice::DriverL => CellDevice::DriverR,
            CellDevice::DriverR => CellDevice::DriverL,
            CellDevice::AccessL => CellDevice::AccessR,
            CellDevice::AccessR => CellDevice::AccessL,
        }
    }
}

impl std::fmt::Display for CellDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CellDevice::LoadL => "PL",
            CellDevice::DriverL => "NL",
            CellDevice::LoadR => "PR",
            CellDevice::DriverR => "NR",
            CellDevice::AccessL => "AL",
            CellDevice::AccessR => "AR",
        };
        write!(f, "{name}")
    }
}

/// Bias condition for transfer-curve extraction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasCondition {
    /// Word-line voltage \[V\].
    pub wl: f64,
    /// Left bit-line voltage \[V\].
    pub bl: f64,
    /// Right bit-line voltage \[V\].
    pub blb: f64,
}

/// One transfer-curve solve: the root voltage plus the bisection steps
/// it cost — the workspace's "Newton iteration" unit for effort
/// accounting (each bisection step plays the role of one solver
/// iteration of the inner 1-D solve).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VtcSolve {
    /// The solved output voltage \[V\].
    pub v: f64,
    /// Function evaluations spent (bisection steps plus any bracket
    /// validation probes).
    pub iters: u32,
}

/// A 6T SRAM cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Sram6T {
    vdd: f64,
    devices: [Mosfet; 6],
}

impl Sram6T {
    /// Builds the paper's Table I cell at the nominal supply.
    pub fn paper_cell() -> Self {
        Self::paper_cell_at(VDD_NOMINAL)
    }

    /// Builds the paper's Table I cell at a custom supply (Fig. 7 lowers
    /// `V_DD` to 0.5 V so naive Monte Carlo converges).
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn paper_cell_at(vdd: f64) -> Self {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "vdd must be positive, got {vdd}"
        );
        let devices = CellDevice::ALL.map(|d| paper_geometry(d.role()).build());
        Self { vdd, devices }
    }

    /// Builds a cell from explicit devices in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not positive and finite.
    pub fn from_devices(vdd: f64, devices: [Mosfet; 6]) -> Self {
        assert!(
            vdd.is_finite() && vdd > 0.0,
            "vdd must be positive, got {vdd}"
        );
        Self { vdd, devices }
    }

    /// Supply voltage \[V\].
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The device at a canonical position.
    pub fn device(&self, which: CellDevice) -> &Mosfet {
        &self.devices[which as usize]
    }

    /// Read bias: word line high, both bit lines precharged to `V_DD`.
    pub fn read_bias(&self) -> BiasCondition {
        BiasCondition {
            wl: self.vdd,
            bl: self.vdd,
            blb: self.vdd,
        }
    }

    /// Hold bias: word line low (access devices off).
    pub fn hold_bias(&self) -> BiasCondition {
        BiasCondition {
            wl: 0.0,
            bl: self.vdd,
            blb: self.vdd,
        }
    }

    /// Write bias for writing a "0" into `Q`: word line high, left bit
    /// line driven low, right bit line held at `V_DD`.
    pub fn write0_bias(&self) -> BiasCondition {
        BiasCondition {
            wl: self.vdd,
            bl: 0.0,
            blb: self.vdd,
        }
    }

    /// Returns a copy with per-device threshold shifts applied in
    /// canonical order (see [`CellDevice`]).
    ///
    /// # Panics
    ///
    /// Panics if `delta_vth.len() != 6`.
    pub fn with_delta_vth(&self, delta_vth: &[f64]) -> Self {
        assert_eq!(delta_vth.len(), 6, "expected 6 threshold shifts");
        let mut cell = self.clone();
        for (dev, dv) in cell.devices.iter_mut().zip(delta_vth) {
            *dev = dev.with_delta_vth(*dv);
        }
        cell
    }

    /// Returns a copy operated at a temperature offset from the 300 K
    /// nominal: every device loses [`VTH_TEMPCO`] volts of threshold
    /// magnitude per kelvin of heating and its thermal voltage scales
    /// linearly with absolute temperature. A zero offset reproduces the
    /// nominal cell bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `delta_c` is non-finite or outside \[−150, +200\] K —
    /// beyond that the first-order threshold model drives `vth0`
    /// unphysically.
    pub fn with_temperature_delta(&self, delta_c: f64) -> Self {
        assert!(
            delta_c.is_finite() && (-150.0..=200.0).contains(&delta_c),
            "temperature delta must lie in [-150, 200] K, got {delta_c}"
        );
        let mut cell = self.clone();
        for dev in &mut cell.devices {
            dev.params.vth0 -= VTH_TEMPCO * delta_c;
            dev.params.v_thermal *= (T_NOMINAL_K + delta_c) / T_NOMINAL_K;
        }
        cell
    }

    /// Returns the mirrored cell (left and right halves swapped).
    pub fn mirrored(&self) -> Self {
        let mut cell = self.clone();
        for d in CellDevice::ALL {
            cell.devices[d as usize] = self.devices[d.mirrored() as usize];
        }
        cell
    }

    /// Net current into the node `QB` of the right half-cell when the
    /// opposite node is at `v_gate` and `QB` is at `v_out`.
    fn right_node_current(&self, bias: &BiasCondition, v_gate: f64, v_out: f64) -> f64 {
        let load = self.device(CellDevice::LoadR);
        let driver = self.device(CellDevice::DriverR);
        let access = self.device(CellDevice::AccessR);
        // PMOS load: drain = QB, source = VDD. `id` is current into the
        // drain; a pull-up sources current into the node, so the node
        // receives −id.
        let i_load = -load.eval(v_gate, v_out, self.vdd, self.vdd).id;
        // NMOS driver: drain = QB, source = GND. Current into the drain
        // leaves the node.
        let i_driver = driver.eval(v_gate, v_out, 0.0, self.vdd).id;
        // Access NMOS: drain at BLB, source at QB; the device forwards its
        // drain current into the node.
        let i_access = access.eval(bias.wl, bias.blb, v_out, self.vdd).id;
        i_load + i_access - i_driver
    }

    /// Same for the left half-cell (node `Q`, gate driven by `QB`).
    fn left_node_current(&self, bias: &BiasCondition, v_gate: f64, v_out: f64) -> f64 {
        let load = self.device(CellDevice::LoadL);
        let driver = self.device(CellDevice::DriverL);
        let access = self.device(CellDevice::AccessL);
        let i_load = -load.eval(v_gate, v_out, self.vdd, self.vdd).id;
        let i_driver = driver.eval(v_gate, v_out, 0.0, self.vdd).id;
        let i_access = access.eval(bias.wl, bias.bl, v_out, self.vdd).id;
        i_load + i_access - i_driver
    }

    /// Solves the right half-cell transfer curve `V_QB = f_R(V_Q)` at one
    /// input point via guarded bisection.
    pub fn vtc_right(&self, bias: &BiasCondition, v_q: f64) -> f64 {
        self.bisect(|v| self.right_node_current(bias, v_q, v), None)
    }

    /// Solves the left half-cell transfer curve `V_Q = f_L(V_QB)` at one
    /// input point.
    pub fn vtc_left(&self, bias: &BiasCondition, v_qb: f64) -> f64 {
        self.bisect(|v| self.left_node_current(bias, v_qb, v), None)
    }

    /// Like [`Self::vtc_right`], but warm-started: the VTC is monotone
    /// decreasing in its input, so when sweeping the input upward the
    /// previous output is a valid *upper* bracket for the next solve,
    /// shrinking the bisection interval.
    pub fn vtc_right_warm(&self, bias: &BiasCondition, v_q: f64, upper_hint: f64) -> f64 {
        self.bisect(|v| self.right_node_current(bias, v_q, v), Some(upper_hint))
    }

    /// Warm-started variant of [`Self::vtc_left`]; see
    /// [`Self::vtc_right_warm`].
    pub fn vtc_left_warm(&self, bias: &BiasCondition, v_qb: f64, upper_hint: f64) -> f64 {
        self.bisect(|v| self.left_node_current(bias, v_qb, v), Some(upper_hint))
    }

    /// Effort-counting variant of [`Self::vtc_right_warm`] with an
    /// explicit resolution target. With `resolution = 1e-7` the returned
    /// voltage is bit-identical to the legacy warm solve.
    pub fn vtc_right_effort(
        &self,
        bias: &BiasCondition,
        v_q: f64,
        upper_hint: Option<f64>,
        resolution: f64,
    ) -> VtcSolve {
        let (lo, hi) = self.hint_bracket(upper_hint, resolution);
        let (v, iters) = self.bisect_res(
            |v| self.right_node_current(bias, v_q, v),
            lo,
            hi,
            resolution,
        );
        VtcSolve { v, iters }
    }

    /// Effort-counting variant of [`Self::vtc_left_warm`]; see
    /// [`Self::vtc_right_effort`].
    pub fn vtc_left_effort(
        &self,
        bias: &BiasCondition,
        v_qb: f64,
        upper_hint: Option<f64>,
        resolution: f64,
    ) -> VtcSolve {
        let (lo, hi) = self.hint_bracket(upper_hint, resolution);
        let (v, iters) = self.bisect_res(
            |v| self.left_node_current(bias, v_qb, v),
            lo,
            hi,
            resolution,
        );
        VtcSolve { v, iters }
    }

    /// Solves the right transfer curve inside a caller-supplied bracket
    /// (e.g. interpolated from a neighbouring cell's solved curve). The
    /// bracket is clipped to the extended rails and *validated* with two
    /// probe evaluations; `None` means the guess does not bracket the
    /// root and the caller must fall back to a full-width solve.
    pub fn vtc_right_bracketed(
        &self,
        bias: &BiasCondition,
        v_q: f64,
        lo: f64,
        hi: f64,
        resolution: f64,
    ) -> Option<VtcSolve> {
        self.bisect_bracketed(
            |v| self.right_node_current(bias, v_q, v),
            lo,
            hi,
            resolution,
        )
    }

    /// Left-curve variant of [`Self::vtc_right_bracketed`].
    pub fn vtc_left_bracketed(
        &self,
        bias: &BiasCondition,
        v_qb: f64,
        lo: f64,
        hi: f64,
        resolution: f64,
    ) -> Option<VtcSolve> {
        self.bisect_bracketed(
            |v| self.left_node_current(bias, v_qb, v),
            lo,
            hi,
            resolution,
        )
    }

    /// The legacy bracket from an optional monotone upper hint. The
    /// guard band scales with the resolution target (ten steps' worth,
    /// floored at the legacy 1 µV) so coarser solves still produce hints
    /// that safely bound the next root.
    fn hint_bracket(&self, upper_hint: Option<f64>, resolution: f64) -> (f64, f64) {
        let guard = (10.0 * resolution).max(1e-6);
        let hi = match upper_hint {
            Some(h) => (h + guard).min(self.vdd + 0.2),
            None => self.vdd + 0.2,
        };
        (-0.2, hi)
    }

    fn bisect_bracketed(
        &self,
        f: impl Fn(f64) -> f64,
        lo: f64,
        hi: f64,
        resolution: f64,
    ) -> Option<VtcSolve> {
        let lo = lo.max(-0.2);
        let hi = hi.min(self.vdd + 0.2);
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return None;
        }
        // Two probe evaluations confirm the root is inside.
        if f(lo) <= 0.0 || f(hi) >= 0.0 {
            return None;
        }
        let (v, iters) = self.bisect_res(f, lo, hi, resolution);
        Some(VtcSolve {
            v,
            iters: iters + 2,
        })
    }

    /// Bisection on a strictly decreasing current function, to 0.1 µV
    /// resolution (three orders of magnitude below any noise-margin
    /// feature of interest). The bracket extends slightly beyond the rails;
    /// `upper_hint` (if given) must be a known upper bound on the root —
    /// it is widened by a small guard band to absorb rounding.
    fn bisect(&self, f: impl Fn(f64) -> f64, upper_hint: Option<f64>) -> f64 {
        let (lo, hi) = self.hint_bracket(upper_hint, 1e-7);
        self.bisect_res(f, lo, hi, 1e-7).0
    }

    /// Bisection core with an explicit resolution target; returns the
    /// root and the number of function evaluations spent. A fixed
    /// resolution target rather than a fixed iteration count means
    /// warm-started (narrow) brackets converge in fewer steps.
    fn bisect_res(
        &self,
        f: impl Fn(f64) -> f64,
        mut lo: f64,
        mut hi: f64,
        resolution: f64,
    ) -> (f64, u32) {
        debug_assert!(f(lo) > 0.0, "current should be positive at the low rail");
        debug_assert!(
            f(hi) < 0.0,
            "current should be negative above the upper bracket"
        );
        let mut iters = 0u32;
        while hi - lo > resolution {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            iters += 1;
        }
        (0.5 * (lo + hi), iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Element, Netlist};
    use crate::solver::Solver;

    #[test]
    fn canonical_indices_are_stable() {
        assert_eq!(CellDevice::LoadL as usize, 0);
        assert_eq!(CellDevice::DriverL as usize, 1);
        assert_eq!(CellDevice::LoadR as usize, 2);
        assert_eq!(CellDevice::DriverR as usize, 3);
        assert_eq!(CellDevice::AccessL as usize, 4);
        assert_eq!(CellDevice::AccessR as usize, 5);
    }

    #[test]
    fn mirror_is_an_involution() {
        for d in CellDevice::ALL {
            assert_eq!(d.mirrored().mirrored(), d);
        }
    }

    #[test]
    fn read_vtc_endpoints() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        // Input low: output high (driver off, load + access pull up).
        let high = cell.vtc_right(&bias, 0.0);
        assert!(high > cell.vdd() - 0.05, "high level = {high}");
        // Input high: output is the read-disturb level — above ground but
        // well below VDD/2 for a functional cell.
        let low = cell.vtc_right(&bias, cell.vdd());
        assert!(
            low > 0.0 && low < 0.35 * cell.vdd(),
            "read low level = {low}"
        );
    }

    #[test]
    fn hold_vtc_pulls_fully_to_ground() {
        let cell = Sram6T::paper_cell();
        let bias = cell.hold_bias();
        let low = cell.vtc_right(&bias, cell.vdd());
        assert!(low < 0.02, "hold low level = {low}");
    }

    #[test]
    fn vtc_is_monotone_decreasing() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        let mut prev = f64::INFINITY;
        for i in 0..=20 {
            let vin = cell.vdd() * i as f64 / 20.0;
            let v = cell.vtc_right(&bias, vin);
            assert!(v <= prev + 1e-9, "VTC not monotone at vin={vin}");
            prev = v;
        }
    }

    #[test]
    fn symmetric_cell_has_symmetric_vtcs() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        for i in 0..=10 {
            let vin = cell.vdd() * i as f64 / 10.0;
            let r = cell.vtc_right(&bias, vin);
            let l = cell.vtc_left(&bias, vin);
            assert!((r - l).abs() < 1e-9, "asymmetry at vin={vin}: {r} vs {l}");
        }
    }

    #[test]
    fn delta_vth_on_driver_raises_read_low_level() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        let base = cell.vtc_right(&bias, cell.vdd());
        let mut shifts = [0.0; 6];
        shifts[CellDevice::DriverR as usize] = 0.1; // weaken right driver
        let weak = cell.with_delta_vth(&shifts);
        let degraded = weak.vtc_right(&bias, cell.vdd());
        assert!(
            degraded > base + 0.01,
            "weakened driver should raise the disturb level: {base} → {degraded}"
        );
    }

    #[test]
    fn mirrored_cell_swaps_vtcs() {
        let cell = Sram6T::paper_cell().with_delta_vth(&[0.02, -0.01, 0.0, 0.03, 0.01, -0.02]);
        let mir = cell.mirrored();
        let bias = cell.read_bias();
        for i in 0..=8 {
            let vin = cell.vdd() * i as f64 / 8.0;
            assert!((cell.vtc_right(&bias, vin) - mir.vtc_left(&bias, vin)).abs() < 1e-9);
        }
    }

    #[test]
    fn bisection_matches_full_newton_solve() {
        // Cross-check the fast 1-D solve against the MNA engine on the
        // same half-cell.
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        for vin in [0.0, 0.2, 0.35, 0.5, 0.7] {
            let fast = cell.vtc_right(&bias, vin);

            let mut nl = Netlist::new(cell.vdd());
            let vdd = nl.add_node();
            let vq = nl.add_node();
            let out = nl.add_node();
            let wl = nl.add_node();
            let blb = nl.add_node();
            nl.add(Element::VSource {
                plus: vdd,
                minus: 0,
                volts: cell.vdd(),
            });
            nl.add(Element::VSource {
                plus: vq,
                minus: 0,
                volts: vin,
            });
            nl.add(Element::VSource {
                plus: wl,
                minus: 0,
                volts: bias.wl,
            });
            nl.add(Element::VSource {
                plus: blb,
                minus: 0,
                volts: bias.blb,
            });
            nl.add(Element::Mosfet {
                d: out,
                g: vq,
                s: vdd,
                device: *cell.device(CellDevice::LoadR),
            });
            nl.add(Element::Mosfet {
                d: out,
                g: vq,
                s: 0,
                device: *cell.device(CellDevice::DriverR),
            });
            nl.add(Element::Mosfet {
                d: blb,
                g: wl,
                s: out,
                device: *cell.device(CellDevice::AccessR),
            });
            let mut init = vec![0.0; nl.node_count()];
            init[vdd] = cell.vdd();
            init[vq] = vin;
            init[wl] = bias.wl;
            init[blb] = bias.blb;
            init[out] = fast; // seed near the solution; uniqueness makes this fair
            let op = Solver::new().solve_dc(&nl, Some(&init)).expect("half-cell");
            assert!(
                (op.node_voltages[out] - fast).abs() < 1e-6,
                "vin={vin}: bisection {fast} vs newton {}",
                op.node_voltages[out]
            );
        }
    }

    #[test]
    fn effort_solve_is_bit_identical_to_legacy_warm_solve() {
        let cell = Sram6T::paper_cell().with_delta_vth(&[0.01, -0.02, 0.0, 0.03, -0.01, 0.02]);
        let bias = cell.read_bias();
        let mut hint = cell.vdd() + 0.2;
        for i in 0..=10 {
            let vin = cell.vdd() * i as f64 / 10.0;
            let legacy = cell.vtc_right_warm(&bias, vin, hint);
            let effort = cell.vtc_right_effort(&bias, vin, Some(hint), 1e-7);
            assert_eq!(legacy, effort.v, "divergence at vin={vin}");
            assert!(effort.iters > 0);
            hint = legacy;
        }
    }

    #[test]
    fn bracketed_solve_converges_faster_inside_a_tight_band() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        let vin = 0.3;
        let full = cell.vtc_right_effort(&bias, vin, None, 1e-7);
        let tight = cell
            .vtc_right_bracketed(&bias, vin, full.v - 0.02, full.v + 0.02, 1e-7)
            .expect("true root is inside the band");
        assert!((tight.v - full.v).abs() < 1e-6);
        assert!(
            tight.iters < full.iters,
            "tight bracket {} should beat full sweep {}",
            tight.iters,
            full.iters
        );
    }

    #[test]
    fn bracketed_solve_rejects_a_bad_band() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        let root = cell.vtc_right(&bias, 0.3);
        // Band entirely below the root: f > 0 at both ends.
        assert!(cell
            .vtc_right_bracketed(&bias, 0.3, root - 0.1, root - 0.05, 1e-7)
            .is_none());
        // Degenerate band.
        assert!(cell
            .vtc_right_bracketed(&bias, 0.3, 0.5, 0.4, 1e-7)
            .is_none());
        // Left-curve variant agrees on validity checking.
        assert!(cell
            .vtc_left_bracketed(&bias, 0.3, root - 0.05, root + 0.05, 1e-7)
            .is_some());
    }

    #[test]
    #[should_panic(expected = "vdd must be positive")]
    fn rejects_bad_vdd() {
        let _ = Sram6T::paper_cell_at(0.0);
    }

    #[test]
    #[should_panic(expected = "expected 6 threshold shifts")]
    fn rejects_wrong_shift_count() {
        let _ = Sram6T::paper_cell().with_delta_vth(&[0.0; 5]);
    }
}
