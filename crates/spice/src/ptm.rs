//! PTM-16nm-HP-like technology cards and the paper's Table I geometry.
//!
//! The original experiments use the 16 nm high-performance card from the
//! Predictive Technology Model (PTM). PTM distributes BSIM4 card files; our
//! compact model is EKV-style, so this module provides a parameter set
//! fitted to the same headline characteristics (V_DD = 0.7 V, |V_TH| ≈
//! 0.45 V, NMOS/PMOS drive ratio ≈ 2.2, t_ox = 0.95 nm) rather than the raw
//! card. The substitution is recorded in `DESIGN.md`.

use crate::model::{Mosfet, MosfetKind, MosfetParams, THERMAL_VOLTAGE};
use serde::{Deserialize, Serialize};

/// Nominal supply voltage of the PTM 16 nm HP node \[V\].
pub const VDD_NOMINAL: f64 = 0.7;

/// Unit-area gate capacitance for t_ox = 0.95 nm \[F/m²\]
/// (`ε₀·ε_SiO₂ / t_ox` with ε_SiO₂ = 3.9).
pub const COX: f64 = 3.9 * 8.854e-12 / 0.95e-9;

/// The Pelgrom coefficient of Table I, `A_VTH = 5×10² mV·nm = 0.5 mV·µm`,
/// expressed in V·m so `σ = A_VTH/√(L·W)` is in volts.
pub const A_VTH: f64 = 500e-3 * 1e-9; // 500 mV·nm → 5e-10 V·m

/// Sensitivity calibration factor κ (dimensionless).
///
/// The EKV-style compact model degrades the read noise margin by ~0.6 V
/// per volt of worst-case ΔVth mismatch, while the authors' BSIM4 PTM
/// card is more sensitive. To reproduce the paper's *probability regime*
/// — an RDF-only failure probability of ≈1.3e-4 at the nominal supply
/// (the paper's headline 1.33e-4) and ≈7e-3 at the lowered 0.5 V supply
/// of Fig. 7 — both the Pelgrom coefficient and the RTN single-trap
/// quantum are scaled by κ, calibrated empirically to 1.55. Because RDF
/// and RTN scale together, the whitened-space geometry every algorithm
/// operates on is identical to the paper's; only the physical unit of
/// "one sigma" differs. See `DESIGN.md` (substitutions).
pub const SENSITIVITY_CALIBRATION: f64 = 1.55;

/// Effective Pelgrom coefficient used by the experiments:
/// `κ · A_VTH` \[V·m\].
pub const A_VTH_EFFECTIVE: f64 = SENSITIVITY_CALIBRATION * A_VTH;

/// Trap areal density of Table I, `λ = 4×10⁻³ nm⁻²`, in 1/m².
pub const TRAP_DENSITY: f64 = 4.0e-3 * 1e18;

/// NMOS technology card (EKV-style fit to PTM 16 nm HP).
pub fn ptm16_hp_nmos() -> MosfetParams {
    MosfetParams {
        kind: MosfetKind::Nmos,
        vth0: 0.43,
        kp: 7.0e-4,
        slope_n: 1.35,
        lambda: 0.15,
        dibl: 0.25,
        v_thermal: THERMAL_VOLTAGE,
    }
}

/// PMOS technology card (EKV-style fit to PTM 16 nm HP).
pub fn ptm16_hp_pmos() -> MosfetParams {
    MosfetParams {
        kind: MosfetKind::Pmos,
        vth0: 0.44,
        kp: 3.2e-4,
        slope_n: 1.35,
        lambda: 0.15,
        dibl: 0.25,
        v_thermal: THERMAL_VOLTAGE,
    }
}

/// Role of a device inside the 6T cell, following Table I's naming
/// (`L`oad, `D`river, `A`ccess).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceRole {
    /// PMOS pull-up.
    Load,
    /// NMOS pull-down.
    Driver,
    /// NMOS pass gate.
    Access,
}

impl std::fmt::Display for DeviceRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceRole::Load => write!(f, "load"),
            DeviceRole::Driver => write!(f, "driver"),
            DeviceRole::Access => write!(f, "access"),
        }
    }
}

/// Geometry of one cell device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceGeometry {
    /// Role within the cell.
    pub role: DeviceRole,
    /// Channel width \[m\].
    pub width: f64,
    /// Channel length \[m\].
    pub length: f64,
}

impl DeviceGeometry {
    /// Gate area `W·L` \[m²\].
    pub fn area(&self) -> f64 {
        self.width * self.length
    }

    /// Pelgrom sigma `A_VTH/√(W·L)` for this geometry \[V\].
    pub fn pelgrom_sigma(&self, a_vth: f64) -> f64 {
        a_vth / self.area().sqrt()
    }

    /// Mean number of oxide traps `λ·W·L` at areal density `density`.
    pub fn mean_traps(&self, density: f64) -> f64 {
        density * self.area()
    }

    /// Single-trap threshold shift `q/(C_ox·W·L)` \[V\] (Eq. 9 with
    /// `N_eff = 1`).
    pub fn single_trap_dvth(&self, cox: f64) -> f64 {
        const Q: f64 = 1.602_176_634e-19;
        Q / (cox * self.area())
    }

    /// Builds the sized transistor for this geometry.
    pub fn build(&self) -> Mosfet {
        let params = match self.role {
            DeviceRole::Load => ptm16_hp_pmos(),
            DeviceRole::Driver | DeviceRole::Access => ptm16_hp_nmos(),
        };
        Mosfet::new(params, self.width, self.length)
    }
}

/// Table I geometry: load 60/16 nm, driver 30/16 nm, access 30/16 nm.
pub fn paper_geometry(role: DeviceRole) -> DeviceGeometry {
    let width = match role {
        DeviceRole::Load => 60e-9,
        DeviceRole::Driver | DeviceRole::Access => 30e-9,
    };
    DeviceGeometry {
        role,
        width,
        length: 16e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pelgrom_sigmas_match_paper_magnitudes() {
        // Driver/access: σ = 500 mV·nm / √(30·16) nm ≈ 22.8 mV.
        let d = paper_geometry(DeviceRole::Driver);
        let sigma = d.pelgrom_sigma(A_VTH);
        assert!((sigma - 22.8e-3).abs() < 0.3e-3, "driver σ = {sigma}");
        // Load: σ = 500/√(60·16) ≈ 16.1 mV.
        let l = paper_geometry(DeviceRole::Load);
        let sigma = l.pelgrom_sigma(A_VTH);
        assert!((sigma - 16.1e-3).abs() < 0.3e-3, "load σ = {sigma}");
    }

    #[test]
    fn smallest_device_has_1_92_mean_traps() {
        // The paper: λ = 4e-3 nm⁻² means the 30×16 nm device averages 1.92
        // defects.
        let d = paper_geometry(DeviceRole::Driver);
        let mean = d.mean_traps(TRAP_DENSITY);
        assert!((mean - 1.92).abs() < 1e-9, "mean traps = {mean}");
    }

    #[test]
    fn single_trap_shift_is_millivolt_scale() {
        let d = paper_geometry(DeviceRole::Driver);
        let dv = d.single_trap_dvth(COX);
        // q/(Cox·480 nm²) ≈ 9.2 mV.
        assert!(dv > 5e-3 && dv < 15e-3, "ΔVth/trap = {dv}");
    }

    #[test]
    fn load_is_twice_as_wide_as_driver() {
        let l = paper_geometry(DeviceRole::Load);
        let d = paper_geometry(DeviceRole::Driver);
        assert!((l.width / d.width - 2.0).abs() < 1e-12);
        assert_eq!(l.length, d.length);
    }

    #[test]
    fn cards_validate() {
        assert!(ptm16_hp_nmos().validate().is_ok());
        assert!(ptm16_hp_pmos().validate().is_ok());
    }

    #[test]
    fn build_assigns_polarity_by_role() {
        use crate::model::MosfetKind;
        assert_eq!(
            paper_geometry(DeviceRole::Load).build().params.kind,
            MosfetKind::Pmos
        );
        assert_eq!(
            paper_geometry(DeviceRole::Driver).build().params.kind,
            MosfetKind::Nmos
        );
        assert_eq!(
            paper_geometry(DeviceRole::Access).build().params.kind,
            MosfetKind::Nmos
        );
    }

    #[test]
    fn nmos_drives_more_than_pmos_at_same_size() {
        let n = Mosfet::new(ptm16_hp_nmos(), 30e-9, 16e-9);
        let p = Mosfet::new(ptm16_hp_pmos(), 30e-9, 16e-9);
        let idn = n.eval(VDD_NOMINAL, VDD_NOMINAL, 0.0, VDD_NOMINAL).id;
        let idp = p.eval(0.0, 0.0, VDD_NOMINAL, VDD_NOMINAL).id.abs();
        let ratio = idn / idp;
        assert!(ratio > 1.5 && ratio < 3.5, "N/P drive ratio = {ratio}");
    }
}
