//! The SRAM cell testbench — the workspace's "transistor-level
//! simulation".
//!
//! [`ReadStabilityBench`] maps a 6-component threshold-shift vector (one
//! ΔVth per cell device, canonical order of
//! [`crate::sram::CellDevice`]) to a cell margin. The historical — and
//! default — margin is the read noise margin: a sample *fails* when it
//! is negative, the indicator function `I(x)` of the paper (Sec. IV-A).
//! The same machinery exposes three sibling indicators over the same
//! variability space: hold (retention) stability, write margin, and the
//! power-up preference margin of a skew-designed PUF bit.
//!
//! Everything upstream (particle filters, classifiers, estimators) counts
//! invocations of this bench; it is deliberately the only expensive
//! operation in the workspace, just as SPICE runs are in the original
//! flow.

use crate::butterfly::{Butterfly, SampleEffort};
use crate::error::EvalError;
use crate::ptm::{paper_geometry, A_VTH_EFFECTIVE};
use crate::snm::{try_read_noise_margin, SnmReport};
use crate::sram::{BiasCondition, CellDevice, Sram6T};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of variability dimensions (one per cell transistor).
pub const DIM: usize = 6;

/// Adaptive butterfly-resolution policy for the *indicator* paths.
///
/// Far from the failure boundary only the margin's sign matters, so a
/// coarse, low-resolution butterfly decides most samples; whenever the
/// coarse margin lands inside `margin_threshold` of zero the bench
/// escalates to the exact fixed-resolution evaluation (bit-identical to
/// the non-adaptive path), preserving every verdict that could possibly
/// be grid-sensitive. Margin-returning APIs never use this policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Master switch for coarse-first indicator evaluation.
    pub enabled: bool,
    /// Grid points of the coarse screening butterfly.
    pub coarse_points: usize,
    /// Bisection resolution of the coarse pass \[V\].
    pub coarse_resolution: f64,
    /// Coarse margins closer to zero than this escalate to the exact
    /// full-resolution evaluation \[V\]. Must comfortably exceed the
    /// worst coarse-vs-fine margin drift (see the calibration test).
    pub margin_threshold: f64,
    /// Half-width of the seed-derived bisection bracket \[V\] when a
    /// neighbouring operating point is available.
    pub seed_band: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            coarse_points: 31,
            coarse_resolution: 3e-4,
            margin_threshold: 0.003,
            seed_band: 0.02,
        }
    }
}

/// Configuration of the read-stability bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Supply voltage \[V\].
    pub vdd: f64,
    /// Butterfly sampling resolution (grid points per curve).
    pub grid_points: usize,
    /// Die-temperature offset from the 300 K technology cards \[K\].
    /// `0.0` (the default) leaves every device parameter bit-identical
    /// to the historical nominal-temperature bench.
    #[serde(default)]
    pub temperature_delta_c: f64,
    /// Coarse-first indicator evaluation policy.
    #[serde(default)]
    pub adaptive: AdaptiveConfig,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            vdd: crate::ptm::VDD_NOMINAL,
            grid_points: 61,
            temperature_delta_c: 0.0,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

/// Shared solve-effort counters of a bench (and all its clones).
///
/// Counters are monotone and relaxed: they are read as before/after
/// deltas whose totals are schedule-independent, never as synchronisation.
#[derive(Debug, Default)]
pub struct SolveCounters {
    bisect_iters: AtomicU64,
    curve_solves: AtomicU64,
    seeded_curves: AtomicU64,
    coarse_accepts: AtomicU64,
    escalations: AtomicU64,
}

impl SolveCounters {
    fn record(&self, effort: &SampleEffort) {
        self.bisect_iters
            .fetch_add(effort.bisect_iters, Ordering::Relaxed);
        self.curve_solves
            .fetch_add(effort.solves, Ordering::Relaxed);
        self.seeded_curves
            .fetch_add(effort.seeded_points, Ordering::Relaxed);
    }

    fn note_accept(&self) {
        self.coarse_accepts.fetch_add(1, Ordering::Relaxed);
    }

    fn note_escalation(&self) {
        self.escalations.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EffortSnapshot {
        EffortSnapshot {
            bisect_iters: self.bisect_iters.load(Ordering::Relaxed),
            curve_solves: self.curve_solves.load(Ordering::Relaxed),
            seeded_curves: self.seeded_curves.load(Ordering::Relaxed),
            coarse_accepts: self.coarse_accepts.load(Ordering::Relaxed),
            escalations: self.escalations.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`SolveCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EffortSnapshot {
    /// Total bisection steps — the 1-D solver's "Newton iterations".
    pub bisect_iters: u64,
    /// Transfer-curve points solved — one per inner solver invocation.
    pub curve_solves: u64,
    /// Curve points solved inside a neighbour-seeded bracket.
    pub seeded_curves: u64,
    /// Indicator evaluations decided by the coarse pass alone.
    pub coarse_accepts: u64,
    /// Indicator evaluations escalated to the exact full-resolution pass.
    pub escalations: u64,
}

/// Which scalar a butterfly's Seevinck report is collapsed to.
///
/// `Worst` is the classical noise margin (smaller lobe, signed);
/// `Preference` is the *lobe asymmetry* `snm_low − snm_high`, the
/// quantity that decides which state a skewed cell prefers on power-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MarginKind {
    Worst,
    Preference,
}

impl MarginKind {
    fn extract(self, report: &SnmReport) -> f64 {
        match self {
            MarginKind::Worst => report.rnm,
            MarginKind::Preference => report.snm_low - report.snm_high,
        }
    }

    /// Decisiveness threshold for the adaptive coarse pass. A preference
    /// margin is a *difference* of two lobes, so coarse-grid drift can be
    /// up to twice the per-lobe drift — the band doubles accordingly.
    fn decisive_threshold(self, base: f64) -> f64 {
        match self {
            MarginKind::Worst => base,
            MarginKind::Preference => 2.0 * base,
        }
    }
}

/// The read-stability testbench.
#[derive(Debug, Clone)]
pub struct ReadStabilityBench {
    cell: Sram6T,
    config: BenchConfig,
    counters: Arc<SolveCounters>,
}

impl PartialEq for ReadStabilityBench {
    fn eq(&self, other: &Self) -> bool {
        // Effort counters are observability state, not identity.
        self.cell == other.cell && self.config == other.config
    }
}

impl ReadStabilityBench {
    /// The paper's Table I cell at the nominal supply.
    pub fn paper_cell() -> Self {
        Self::with_config(BenchConfig::default())
    }

    /// The paper's cell at a custom supply (Fig. 7 uses 0.5 V).
    pub fn at_vdd(vdd: f64) -> Self {
        Self::with_config(BenchConfig {
            vdd,
            ..BenchConfig::default()
        })
    }

    /// Full configuration control.
    ///
    /// # Panics
    ///
    /// Panics if the supply is non-positive or the grid is degenerate.
    pub fn with_config(config: BenchConfig) -> Self {
        assert!(config.grid_points >= 2, "grid too coarse");
        assert!(
            config.temperature_delta_c.is_finite()
                && (-150.0..=200.0).contains(&config.temperature_delta_c),
            "temperature delta outside [-150, 200] K"
        );
        if config.adaptive.enabled {
            assert!(config.adaptive.coarse_points >= 2, "coarse grid too coarse");
            assert!(
                config.adaptive.coarse_resolution > 0.0 && config.adaptive.margin_threshold > 0.0,
                "adaptive knobs must be positive"
            );
            assert!(config.adaptive.seed_band >= 0.0, "negative seed band");
        }
        Self {
            cell: Sram6T::paper_cell_at(config.vdd)
                .with_temperature_delta(config.temperature_delta_c),
            config,
            counters: Arc::new(SolveCounters::default()),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BenchConfig {
        &self.config
    }

    /// Cumulative solve effort of this bench and every clone of it (the
    /// counters live behind a shared [`Arc`], so thread-pool clones all
    /// feed one ledger).
    pub fn effort(&self) -> EffortSnapshot {
        self.counters.snapshot()
    }

    /// The underlying nominal cell.
    pub fn cell(&self) -> &Sram6T {
        &self.cell
    }

    /// Number of variability dimensions.
    pub fn dim(&self) -> usize {
        DIM
    }

    /// Per-device Pelgrom sigmas \[V\] in canonical device order, using
    /// the calibrated Pelgrom coefficient
    /// [`crate::ptm::A_VTH_EFFECTIVE`] constant.
    pub fn pelgrom_sigmas(&self) -> [f64; DIM] {
        CellDevice::ALL.map(|d| paper_geometry(d.role()).pelgrom_sigma(A_VTH_EFFECTIVE))
    }

    /// Validates a 6-component finite input vector.
    fn check_input(xs: &[f64], context: &'static str) -> Result<(), EvalError> {
        if xs.len() != DIM {
            return Err(EvalError::DimensionMismatch {
                expected: DIM,
                got: xs.len(),
            });
        }
        if xs.iter().any(|v| !v.is_finite()) {
            return Err(EvalError::NonFinite { context });
        }
        Ok(())
    }

    /// Shared fallible margin extraction under an arbitrary bias, at an
    /// arbitrary butterfly resolution. The grid override is the
    /// escalation knob of the bench-level retry ladder: a marginal
    /// operating point that defeats the default resolution often yields
    /// to a finer sweep (on top of the g-min / source-stepping ladder
    /// the DC solver already runs internally).
    fn try_margin_at(
        &self,
        delta_vth: &[f64],
        bias_of: impl Fn(&Sram6T) -> BiasCondition,
        grid_points: usize,
    ) -> Result<f64, EvalError> {
        Self::check_input(delta_vth, "threshold shifts")?;
        let cell = self.cell.with_delta_vth(delta_vth);
        let bias = bias_of(&cell);
        self.margin_kind_of(&cell, &bias, grid_points, MarginKind::Worst)
    }

    /// Exact full-resolution margin of a concrete skewed cell under a
    /// concrete bias — bit-identical to the historical fixed path, but
    /// routed through the counted sampler so effort ledgers stay honest.
    fn margin_kind_of(
        &self,
        cell: &Sram6T,
        bias: &BiasCondition,
        grid_points: usize,
        kind: MarginKind,
    ) -> Result<f64, EvalError> {
        let (butterfly, effort) =
            Butterfly::try_sample_seeded(cell, bias, grid_points, 1e-7, None, 0.0)?;
        self.counters.record(&effort);
        let margin = kind.extract(&try_read_noise_margin(&butterfly)?);
        if !margin.is_finite() {
            return Err(EvalError::NonFinite {
                context: "extracted noise margin",
            });
        }
        Ok(margin)
    }

    /// Coarse-first, optionally neighbour-seeded indicator evaluation.
    ///
    /// The verdict contract: for every input on which both paths succeed,
    /// the returned boolean equals the fixed-resolution path's verdict —
    /// decisive coarse margins (beyond `margin_threshold`, chosen far
    /// above the coarse-vs-fine margin drift) share the exact sign, and
    /// indecisive ones re-evaluate through [`Self::margin_of`], which is
    /// bit-identical to the non-adaptive evaluation.
    fn indicator_seeded(
        &self,
        x: &[f64],
        bias_of: impl Fn(&Sram6T) -> BiasCondition,
        fails_when_positive: bool,
        seed: Option<&Butterfly>,
    ) -> Result<(bool, Option<Butterfly>), EvalError> {
        self.indicator_kind_seeded(
            x,
            bias_of,
            MarginKind::Worst,
            fails_when_positive,
            None,
            seed,
        )
    }

    /// The fully general indicator: any bias, any margin kind, and an
    /// optional fixed per-device skew \[V\] added on top of the sample's
    /// physical threshold shifts (the PUF design skew). `skew: None`
    /// leaves the physical vector bit-identical to the historical path.
    fn indicator_kind_seeded(
        &self,
        x: &[f64],
        bias_of: impl Fn(&Sram6T) -> BiasCondition,
        kind: MarginKind,
        fails_when_positive: bool,
        skew: Option<&[f64; DIM]>,
        seed: Option<&Butterfly>,
    ) -> Result<(bool, Option<Butterfly>), EvalError> {
        Self::check_input(x, "whitened sample")?;
        let mut dv = self.to_physical(x);
        if let Some(s) = skew {
            for i in 0..DIM {
                dv[i] += s[i];
            }
        }
        let cell = self.cell.with_delta_vth(&dv);
        let bias = bias_of(&cell);
        let verdict = |margin: f64| {
            if fails_when_positive {
                margin > 0.0
            } else {
                margin < 0.0
            }
        };
        let adaptive = self.config.adaptive;
        if adaptive.enabled {
            let coarse = Butterfly::try_sample_seeded(
                &cell,
                &bias,
                adaptive.coarse_points,
                adaptive.coarse_resolution,
                seed,
                adaptive.seed_band,
            );
            if let Ok((coarse_bfly, effort)) = coarse {
                self.counters.record(&effort);
                if let Ok(report) = try_read_noise_margin(&coarse_bfly) {
                    let margin = kind.extract(&report);
                    if margin.is_finite()
                        && margin.abs() >= kind.decisive_threshold(adaptive.margin_threshold)
                    {
                        self.counters.note_accept();
                        return Ok((verdict(margin), Some(coarse_bfly)));
                    }
                }
                // Indecisive coarse margin: the exact path decides, but
                // the coarse curves still seed neighbouring samples.
                self.counters.note_escalation();
                let margin = self.margin_kind_of(&cell, &bias, self.config.grid_points, kind)?;
                return Ok((verdict(margin), Some(coarse_bfly)));
            }
            // The coarse pass failed outright; decide exactly, seedless.
            self.counters.note_escalation();
        }
        let margin = self.margin_kind_of(&cell, &bias, self.config.grid_points, kind)?;
        Ok((verdict(margin), None))
    }

    /// Whitened read-failure indicator with neighbour seeding: an
    /// optional previously computed [`Butterfly`] from a nearby operating
    /// point narrows the coarse pass's bisection brackets, and the coarse
    /// butterfly computed here is handed back for caching. Verdicts are
    /// identical to [`Self::try_fails_whitened`]: decisive coarse
    /// margins share the exact path's sign by construction, and
    /// indecisive ones escalate to the bit-identical fixed-resolution
    /// evaluation, which is never seeded.
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_fails_whitened_seeded(
        &self,
        x: &[f64],
        seed: Option<&Butterfly>,
    ) -> Result<(bool, Option<Butterfly>), EvalError> {
        self.indicator_seeded(x, Sram6T::read_bias, false, seed)
    }

    /// Whitened write-failure indicator with neighbour seeding (see
    /// [`Self::try_fails_whitened_seeded`]).
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_write_fails_whitened_seeded(
        &self,
        x: &[f64],
        seed: Option<&Butterfly>,
    ) -> Result<(bool, Option<Butterfly>), EvalError> {
        self.indicator_seeded(x, Sram6T::write0_bias, true, seed)
    }

    /// Read noise margin \[V\] of the cell with the given per-device
    /// threshold shifts (volts, canonical order). Negative = read failure.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`] (wrong dimension, non-finite input or
    /// operating point); see [`Self::try_read_noise_margin`] for the
    /// fallible variant.
    pub fn read_noise_margin(&self, delta_vth: &[f64]) -> f64 {
        match self.try_read_noise_margin(delta_vth) {
            Ok(m) => m,
            Err(e) => panic!("read-margin evaluation failed: {e}"),
        }
    }

    /// Fallible read noise margin: returns a typed [`EvalError`] instead
    /// of panicking on bad inputs or garbage operating points.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_read_noise_margin(&self, delta_vth: &[f64]) -> Result<f64, EvalError> {
        self.try_margin_at(delta_vth, Sram6T::read_bias, self.config.grid_points)
    }

    /// The paper's indicator function: `true` when the cell fails the
    /// read-stability specification (negative margin).
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_fails`].
    pub fn fails(&self, delta_vth: &[f64]) -> bool {
        self.read_noise_margin(delta_vth) < 0.0
    }

    /// Fallible indicator over physical threshold shifts.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_fails(&self, delta_vth: &[f64]) -> Result<bool, EvalError> {
        Ok(self.try_read_noise_margin(delta_vth)? < 0.0)
    }

    /// Convenience for whitened coordinates: scales a standard-normal
    /// vector by the Pelgrom sigmas before evaluating. This is the
    /// indicator `I(x)` over the *whitened* variability space used by all
    /// estimators.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`] (wrong dimension, non-finite input);
    /// see [`Self::try_fails_whitened`] for the typed-error variant.
    pub fn fails_whitened(&self, x: &[f64]) -> bool {
        match self.try_fails_whitened(x) {
            Ok(v) => v,
            Err(e) => panic!("read-stability evaluation failed: {e}"),
        }
    }

    /// Fallible whitened read-failure indicator.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::DimensionMismatch`] when `x.len() != 6`,
    /// [`EvalError::NonFinite`] for NaN/infinite samples or operating
    /// points.
    pub fn try_fails_whitened(&self, x: &[f64]) -> Result<bool, EvalError> {
        self.try_fails_whitened_at(x, self.config.grid_points)
    }

    /// Whitened read-failure indicator at an explicit butterfly
    /// resolution — the entry point retry ladders escalate through.
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_fails_whitened_at(&self, x: &[f64], grid_points: usize) -> Result<bool, EvalError> {
        if self.config.adaptive.enabled && grid_points == self.config.grid_points {
            return self
                .indicator_seeded(x, Sram6T::read_bias, false, None)
                .map(|(fails, _)| fails);
        }
        Self::check_input(x, "whitened sample")?;
        Ok(self.try_margin_at(&self.to_physical(x), Sram6T::read_bias, grid_points)? < 0.0)
    }

    /// Hold (retention) noise margin \[V\]: word line low, so the access
    /// devices are off and the margin is set by the cross-coupled
    /// inverters alone. Always exceeds the read margin.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_hold_noise_margin`].
    pub fn hold_noise_margin(&self, delta_vth: &[f64]) -> f64 {
        match self.try_hold_noise_margin(delta_vth) {
            Ok(m) => m,
            Err(e) => panic!("hold-margin evaluation failed: {e}"),
        }
    }

    /// Fallible hold noise margin.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_hold_noise_margin(&self, delta_vth: &[f64]) -> Result<f64, EvalError> {
        self.try_margin_at(delta_vth, Sram6T::hold_bias, self.config.grid_points)
    }

    /// Hold-failure indicator in whitened coordinates: `true` when the
    /// unaccessed cell cannot retain its state (negative hold margin).
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_hold_fails_whitened`].
    pub fn hold_fails_whitened(&self, x: &[f64]) -> bool {
        match self.try_hold_fails_whitened(x) {
            Ok(v) => v,
            Err(e) => panic!("hold-stability evaluation failed: {e}"),
        }
    }

    /// Fallible whitened hold-failure indicator.
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_hold_fails_whitened(&self, x: &[f64]) -> Result<bool, EvalError> {
        self.try_hold_fails_whitened_at(x, self.config.grid_points)
    }

    /// Whitened hold-failure indicator at an explicit butterfly
    /// resolution (the retry-ladder entry point).
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_hold_fails_whitened_at(
        &self,
        x: &[f64],
        grid_points: usize,
    ) -> Result<bool, EvalError> {
        if self.config.adaptive.enabled && grid_points == self.config.grid_points {
            return self
                .indicator_seeded(x, Sram6T::hold_bias, false, None)
                .map(|(fails, _)| fails);
        }
        Self::check_input(x, "whitened sample")?;
        Ok(self.try_margin_at(&self.to_physical(x), Sram6T::hold_bias, grid_points)? < 0.0)
    }

    /// Whitened hold-failure indicator with neighbour seeding (see
    /// [`Self::try_fails_whitened_seeded`]).
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_hold_fails_whitened_seeded(
        &self,
        x: &[f64],
        seed: Option<&Butterfly>,
    ) -> Result<(bool, Option<Butterfly>), EvalError> {
        self.indicator_seeded(x, Sram6T::hold_bias, false, seed)
    }

    /// Write margin \[V\] for writing a "0" into node `Q` — an extension
    /// beyond the paper's read-only analysis.
    ///
    /// Under write bias (left bit line low, word line high) a *healthy*
    /// cell is monostable: the old state must be destroyed. The margin is
    /// therefore the *negated* Seevinck margin of the write-bias
    /// butterfly: positive when the residual eye has collapsed (write
    /// succeeds), negative when an eye remains (the cell can retain its
    /// old state — write failure).
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_write_margin`].
    pub fn write_margin(&self, delta_vth: &[f64]) -> f64 {
        match self.try_write_margin(delta_vth) {
            Ok(m) => m,
            Err(e) => panic!("write-margin evaluation failed: {e}"),
        }
    }

    /// Fallible write margin (see [`Self::write_margin`]).
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_write_margin(&self, delta_vth: &[f64]) -> Result<f64, EvalError> {
        Ok(-self.try_margin_at(delta_vth, Sram6T::write0_bias, self.config.grid_points)?)
    }

    /// Write-failure indicator in whitened coordinates (see
    /// [`Self::write_margin`]).
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see
    /// [`Self::try_write_fails_whitened`].
    pub fn write_fails_whitened(&self, x: &[f64]) -> bool {
        match self.try_write_fails_whitened(x) {
            Ok(v) => v,
            Err(e) => panic!("write-stability evaluation failed: {e}"),
        }
    }

    /// Fallible whitened write-failure indicator.
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_write_fails_whitened(&self, x: &[f64]) -> Result<bool, EvalError> {
        self.try_write_fails_whitened_at(x, self.config.grid_points)
    }

    /// Whitened write-failure indicator at an explicit butterfly
    /// resolution (the retry-ladder entry point).
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_write_fails_whitened_at(
        &self,
        x: &[f64],
        grid_points: usize,
    ) -> Result<bool, EvalError> {
        if self.config.adaptive.enabled && grid_points == self.config.grid_points {
            return self
                .indicator_seeded(x, Sram6T::write0_bias, true, None)
                .map(|(fails, _)| fails);
        }
        Self::check_input(x, "whitened sample")?;
        Ok(self.try_margin_at(&self.to_physical(x), Sram6T::write0_bias, grid_points)? > 0.0)
    }

    /// The fixed design skew \[V\] of the power-up PUF cell: the left
    /// driver (NL) is strengthened by this much threshold magnitude, so a
    /// mismatch-free cell powers up into `Q = 0` with a comfortable
    /// preference margin. A PUF *bit error* is a mismatch draw strong
    /// enough to overcome the skew and flip the preferred state.
    const POWERUP_SKEW_VTH: f64 = 0.04;

    /// Per-device physical skew vector of the PUF cell.
    fn powerup_skew() -> [f64; DIM] {
        let mut s = [0.0; DIM];
        s[CellDevice::DriverL as usize] = -Self::POWERUP_SKEW_VTH;
        s
    }

    /// Power-up preference margin \[V\] of the skewed PUF cell with the
    /// given *additional* per-device threshold shifts: the lobe asymmetry
    /// `snm_low − snm_high` of the hold-bias butterfly. Positive means
    /// the cell still prefers the designed `Q = 0` state; negative means
    /// mismatch flipped the bit.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_powerup_margin`].
    pub fn powerup_margin(&self, delta_vth: &[f64]) -> f64 {
        match self.try_powerup_margin(delta_vth) {
            Ok(m) => m,
            Err(e) => panic!("power-up evaluation failed: {e}"),
        }
    }

    /// Fallible power-up preference margin (see [`Self::powerup_margin`]).
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_powerup_margin(&self, delta_vth: &[f64]) -> Result<f64, EvalError> {
        Self::check_input(delta_vth, "threshold shifts")?;
        let skew = Self::powerup_skew();
        let mut dv = [0.0; DIM];
        for i in 0..DIM {
            dv[i] = delta_vth[i] + skew[i];
        }
        let cell = self.cell.with_delta_vth(&dv);
        let bias = cell.hold_bias();
        self.margin_kind_of(
            &cell,
            &bias,
            self.config.grid_points,
            MarginKind::Preference,
        )
    }

    /// Power-up bit-error indicator in whitened coordinates: `true` when
    /// the mismatch draw flips the skew-designed preferred state.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see
    /// [`Self::try_powerup_fails_whitened`].
    pub fn powerup_fails_whitened(&self, x: &[f64]) -> bool {
        match self.try_powerup_fails_whitened(x) {
            Ok(v) => v,
            Err(e) => panic!("power-up evaluation failed: {e}"),
        }
    }

    /// Fallible whitened power-up bit-error indicator.
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_powerup_fails_whitened(&self, x: &[f64]) -> Result<bool, EvalError> {
        self.try_powerup_fails_whitened_at(x, self.config.grid_points)
    }

    /// Whitened power-up bit-error indicator at an explicit butterfly
    /// resolution (the retry-ladder entry point).
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_powerup_fails_whitened_at(
        &self,
        x: &[f64],
        grid_points: usize,
    ) -> Result<bool, EvalError> {
        if self.config.adaptive.enabled && grid_points == self.config.grid_points {
            return self
                .try_powerup_fails_whitened_seeded(x, None)
                .map(|(fails, _)| fails);
        }
        Self::check_input(x, "whitened sample")?;
        let sigmas = self.pelgrom_sigmas();
        let skew = Self::powerup_skew();
        let mut dv = [0.0; DIM];
        for i in 0..DIM {
            dv[i] = x[i] * sigmas[i] + skew[i];
        }
        let cell = self.cell.with_delta_vth(&dv);
        let bias = cell.hold_bias();
        Ok(self.margin_kind_of(&cell, &bias, grid_points, MarginKind::Preference)? < 0.0)
    }

    /// Whitened power-up bit-error indicator with neighbour seeding (see
    /// [`Self::try_fails_whitened_seeded`]).
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_powerup_fails_whitened_seeded(
        &self,
        x: &[f64],
        seed: Option<&Butterfly>,
    ) -> Result<(bool, Option<Butterfly>), EvalError> {
        let skew = Self::powerup_skew();
        self.indicator_kind_seeded(
            x,
            Sram6T::hold_bias,
            MarginKind::Preference,
            false,
            Some(&skew),
            seed,
        )
    }

    /// Scales a whitened vector back to physical threshold shifts \[V\].
    fn to_physical(&self, x: &[f64]) -> [f64; DIM] {
        let sigmas = self.pelgrom_sigmas();
        let mut dv = [0.0; DIM];
        for i in 0..DIM {
            dv[i] = x[i] * sigmas[i];
        }
        dv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_cell_passes() {
        let bench = ReadStabilityBench::paper_cell();
        assert!(!bench.fails(&[0.0; 6]));
        assert!(bench.read_noise_margin(&[0.0; 6]) > 0.0);
    }

    #[test]
    fn extreme_mismatch_fails() {
        let bench = ReadStabilityBench::paper_cell();
        // Massive driver imbalance: the read disturb flips the cell.
        let dv = [0.0, -0.3, 0.0, 0.3, 0.0, 0.0];
        assert!(bench.fails(&dv));
    }

    #[test]
    fn whitened_indicator_matches_physical_one() {
        let bench = ReadStabilityBench::paper_cell();
        let sig = bench.pelgrom_sigmas();
        let x = [1.0, -2.0, 0.5, 3.0, -1.0, 0.0];
        let dv: Vec<f64> = x.iter().zip(&sig).map(|(xi, s)| xi * s).collect();
        assert_eq!(bench.fails_whitened(&x), bench.fails(&dv));
    }

    #[test]
    fn sigma_order_follows_canonical_devices() {
        let bench = ReadStabilityBench::paper_cell();
        let s = bench.pelgrom_sigmas();
        // Loads (indices 0, 2) are wider → smaller sigma than drivers
        // (1, 3) and access (4, 5).
        assert!(s[0] < s[1]);
        assert!(s[2] < s[3]);
        assert_eq!(s[1], s[4]);
        assert_eq!(s[3], s[5]);
        assert_eq!(s[0], s[2]);
    }

    #[test]
    fn failure_region_is_far_from_origin_in_sigma_units() {
        // The boundary along a symmetric worst-case direction should sit
        // several sigma out — that is what makes naive MC hopeless and the
        // whole method necessary.
        let bench = ReadStabilityBench::paper_cell();
        let dir = [1.0, -1.0, -1.0, 1.0, 0.0, 0.0].map(|v: f64| v / 2.0); // unit-norm
        let mut lo = 0.0_f64;
        let mut hi = 20.0_f64;
        assert!(!bench.fails_whitened(&dir.map(|d| d * lo)));
        assert!(bench.fails_whitened(&dir.map(|d| d * hi)));
        for _ in 0..30 {
            let mid = 0.5 * (lo + hi);
            if bench.fails_whitened(&dir.map(|d| d * mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let boundary = 0.5 * (lo + hi);
        assert!(
            boundary > 2.0 && boundary < 12.0,
            "boundary at {boundary}σ along the worst-case direction"
        );
    }

    #[test]
    fn lower_vdd_moves_boundary_inward() {
        let hi_vdd = ReadStabilityBench::at_vdd(0.7);
        let lo_vdd = ReadStabilityBench::at_vdd(0.5);
        let dir = [1.0, -1.0, -1.0, 1.0, 0.0, 0.0].map(|v: f64| v / 2.0);
        let boundary = |bench: &ReadStabilityBench| {
            let mut lo = 0.0_f64;
            let mut hi = 20.0_f64;
            for _ in 0..30 {
                let mid = 0.5 * (lo + hi);
                if bench.fails_whitened(&dir.map(|d| d * mid)) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            0.5 * (lo + hi)
        };
        assert!(
            boundary(&lo_vdd) < boundary(&hi_vdd),
            "lower supply should fail earlier"
        );
    }

    #[test]
    fn rejects_wrong_dimension_with_typed_error() {
        let bench = ReadStabilityBench::paper_cell();
        assert_eq!(
            bench.try_fails_whitened(&[0.0; 5]),
            Err(EvalError::DimensionMismatch {
                expected: 6,
                got: 5
            })
        );
        assert_eq!(
            bench.try_write_fails_whitened(&[0.0; 7]),
            Err(EvalError::DimensionMismatch {
                expected: 6,
                got: 7
            })
        );
    }

    #[test]
    fn rejects_non_finite_samples_with_typed_error() {
        let bench = ReadStabilityBench::paper_cell();
        let mut x = [0.0; 6];
        x[3] = f64::NAN;
        assert_eq!(
            bench.try_fails_whitened(&x),
            Err(EvalError::NonFinite {
                context: "whitened sample"
            })
        );
        x[3] = f64::INFINITY;
        assert_eq!(
            bench.try_read_noise_margin(&x),
            Err(EvalError::NonFinite {
                context: "threshold shifts"
            })
        );
    }

    #[test]
    fn try_variants_match_panicking_variants_on_healthy_samples() {
        let bench = ReadStabilityBench::paper_cell();
        let x = [0.4, -0.7, 0.1, 0.0, -0.2, 0.5];
        assert_eq!(bench.try_fails_whitened(&x), Ok(bench.fails_whitened(&x)));
        let dv = [0.0, -0.02, 0.0, 0.02, 0.0, 0.0];
        assert_eq!(
            bench.try_read_noise_margin(&dv),
            Ok(bench.read_noise_margin(&dv))
        );
        assert_eq!(bench.try_write_margin(&dv), Ok(bench.write_margin(&dv)));
        assert_eq!(
            bench.try_hold_noise_margin(&dv),
            Ok(bench.hold_noise_margin(&dv))
        );
    }

    #[test]
    fn finer_grids_refine_the_margin_estimate() {
        // The retry ladder escalates butterfly resolution; the verdict on
        // a comfortably passing sample must not flip with the grid.
        let bench = ReadStabilityBench::paper_cell();
        let x = [0.1, -0.1, 0.0, 0.0, 0.0, 0.0];
        let coarse = bench.try_fails_whitened_at(&x, 31).expect("coarse grid");
        let fine = bench.try_fails_whitened_at(&x, 121).expect("fine grid");
        assert_eq!(coarse, fine);
    }

    #[test]
    fn hold_margin_exceeds_read_margin() {
        let bench = ReadStabilityBench::paper_cell();
        let dv = [0.0, -0.02, 0.0, 0.02, 0.0, 0.0];
        assert!(bench.hold_noise_margin(&dv) > bench.read_noise_margin(&dv));
    }

    #[test]
    fn nominal_cell_is_writeable() {
        let bench = ReadStabilityBench::paper_cell();
        assert!(
            bench.write_margin(&[0.0; 6]) > 0.0,
            "a healthy cell must accept a write"
        );
    }

    #[test]
    fn write_margin_degrades_with_strong_load_and_weak_access() {
        // Writing 0 into Q fights the left pull-up through the left
        // access device; strengthening PL and weakening AL is the
        // classic write-failure direction.
        let bench = ReadStabilityBench::paper_cell();
        let mut prev = f64::INFINITY;
        for k in 0..5 {
            let s = 0.08 * k as f64;
            let dv = [-s, 0.0, 0.0, 0.0, s, 0.0];
            let wm = bench.write_margin(&dv);
            assert!(
                wm < prev + 1e-9,
                "write margin should fall with write-hostile skew: step {k} gives {wm}"
            );
            prev = wm;
        }
        assert!(
            prev < 0.0,
            "extreme skew should break the write, margin = {prev}"
        );
    }

    fn fixed_bench() -> ReadStabilityBench {
        let mut config = BenchConfig::default();
        config.adaptive.enabled = false;
        ReadStabilityBench::with_config(config)
    }

    /// Deterministic pseudo-random stream in (-1, 1).
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn adaptive_and_fixed_oracles_agree_everywhere() {
        let adaptive = ReadStabilityBench::paper_cell();
        let fixed = fixed_bench();
        // Bulk samples plus jittered points straddling the worst-case
        // failure boundary, where coarse margins are least trustworthy.
        let mut state = 0x243F_6A88_85A3_08D3_u64;
        let dir = [1.0, -1.0, -1.0, 1.0, 0.0, 0.0].map(|v: f64| v / 2.0);
        let mut samples: Vec<[f64; 6]> = Vec::new();
        for _ in 0..24 {
            let mut x = [0.0; 6];
            for v in &mut x {
                *v = 3.0 * lcg(&mut state);
            }
            samples.push(x);
        }
        for k in 0..12 {
            let r = 5.0 + 0.35 * k as f64;
            let mut x = dir.map(|d| d * r);
            for v in &mut x {
                *v += 0.2 * lcg(&mut state);
            }
            samples.push(x);
        }
        for x in &samples {
            assert_eq!(
                adaptive.try_fails_whitened(x),
                fixed.try_fails_whitened(x),
                "adaptive verdict drifted at {x:?}"
            );
        }
        let effort = adaptive.effort();
        assert_eq!(
            effort.coarse_accepts + effort.escalations,
            samples.len() as u64
        );
        assert!(effort.coarse_accepts > 0, "coarse pass never decided");
    }

    #[test]
    fn margins_ignore_the_adaptive_policy() {
        let adaptive = ReadStabilityBench::paper_cell();
        let fixed = fixed_bench();
        let dv = [0.0, -0.02, 0.0, 0.02, 0.0, 0.0];
        assert_eq!(
            adaptive.read_noise_margin(&dv).to_bits(),
            fixed.read_noise_margin(&dv).to_bits()
        );
        assert_eq!(adaptive.try_write_margin(&dv), fixed.try_write_margin(&dv));
        assert_eq!(
            adaptive.try_hold_noise_margin(&dv),
            fixed.try_hold_noise_margin(&dv)
        );
    }

    #[test]
    fn neighbour_seed_reuses_curves_and_preserves_verdicts() {
        let bench = ReadStabilityBench::paper_cell();
        let x0 = [0.5, -0.5, 0.0, 0.5, 0.0, 0.0];
        let (v0, seed) = bench
            .try_fails_whitened_seeded(&x0, None)
            .expect("first eval");
        let seed = seed.expect("adaptive evaluation must hand back a seed");
        let x1 = [0.55, -0.45, 0.0, 0.5, 0.05, 0.0];
        let before = bench.effort();
        let (v1, _) = bench
            .try_fails_whitened_seeded(&x1, Some(&seed))
            .expect("seeded eval");
        let after = bench.effort();
        assert!(after.seeded_curves > before.seeded_curves, "seed unused");
        let (v1_cold, _) = bench
            .try_fails_whitened_seeded(&x1, None)
            .expect("cold eval");
        assert_eq!(v1, v1_cold, "a neighbour seed changed a verdict");
        assert_eq!(v0, fixed_bench().fails_whitened(&x0));
    }

    #[test]
    fn clones_share_one_effort_ledger() {
        let bench = ReadStabilityBench::paper_cell();
        let clone = bench.clone();
        clone.fails_whitened(&[0.2, -0.2, 0.0, 0.0, 0.0, 0.0]);
        let effort = bench.effort();
        assert!(
            effort.curve_solves > 0,
            "clone's work invisible: {effort:?}"
        );
        assert!(effort.bisect_iters > effort.curve_solves);
    }

    #[test]
    fn nominal_puf_cell_prefers_the_designed_state() {
        let bench = ReadStabilityBench::paper_cell();
        let margin = bench.powerup_margin(&[0.0; 6]);
        assert!(
            margin > 0.0,
            "skewed PUF cell must power up deterministically, margin = {margin}"
        );
        assert!(!bench.powerup_fails_whitened(&[0.0; 6]));
    }

    #[test]
    fn counter_skew_flips_the_powerup_bit() {
        // Strengthening the *right* driver harder than the designed left
        // skew flips the preferred state: the definition of a bit error.
        let bench = ReadStabilityBench::paper_cell();
        let mut dv = [0.0; 6];
        dv[CellDevice::DriverR as usize] = -0.12;
        dv[CellDevice::DriverL as usize] = 0.12;
        assert!(
            bench.powerup_margin(&dv) < 0.0,
            "strong counter-skew must flip the bit"
        );
        let sigmas = bench.pelgrom_sigmas();
        let x: Vec<f64> = dv.iter().zip(&sigmas).map(|(d, s)| d / s).collect();
        assert!(bench.powerup_fails_whitened(&x));
    }

    #[test]
    fn hold_failures_need_more_mismatch_than_read_failures() {
        let bench = ReadStabilityBench::paper_cell();
        let read_killer = [0.0, -0.15, 0.0, 0.15, 0.0, 0.0];
        assert!(bench.fails(&read_killer));
        let sigmas = bench.pelgrom_sigmas();
        let x: Vec<f64> = read_killer
            .iter()
            .zip(&sigmas)
            .map(|(d, s)| d / s)
            .collect();
        assert!(
            !bench.hold_fails_whitened(&x),
            "a marginal read failure should still hold its state"
        );
        // Push much harder and retention breaks too.
        let x2: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        assert!(bench.hold_fails_whitened(&x2));
    }

    #[test]
    fn hold_and_powerup_adaptive_verdicts_match_fixed_ones() {
        let adaptive = ReadStabilityBench::paper_cell();
        let fixed = fixed_bench();
        let mut state = 0x13198A2E_03707344_u64;
        let mut samples: Vec<[f64; 6]> = Vec::new();
        for _ in 0..16 {
            let mut x = [0.0; 6];
            for v in &mut x {
                *v = 4.0 * lcg(&mut state);
            }
            samples.push(x);
        }
        // Jitter around each indicator's own critical direction.
        let hold_dir = [1.0, -1.0, -1.0, 1.0, 0.0, 0.0].map(|v: f64| v / 2.0);
        for k in 0..8 {
            let r = 8.0 + 0.8 * k as f64;
            let mut x = hold_dir.map(|d| d * r);
            for v in &mut x {
                *v += 0.3 * lcg(&mut state);
            }
            samples.push(x);
        }
        for x in &samples {
            assert_eq!(
                adaptive.try_hold_fails_whitened(x),
                fixed.try_hold_fails_whitened(x),
                "adaptive hold verdict drifted at {x:?}"
            );
            assert_eq!(
                adaptive.try_powerup_fails_whitened(x),
                fixed.try_powerup_fails_whitened(x),
                "adaptive power-up verdict drifted at {x:?}"
            );
        }
    }

    #[test]
    fn zero_temperature_delta_is_bit_identical() {
        let nominal = ReadStabilityBench::paper_cell();
        let explicit = ReadStabilityBench::with_config(BenchConfig {
            temperature_delta_c: 0.0,
            ..BenchConfig::default()
        });
        assert_eq!(nominal.cell(), explicit.cell());
        let dv = [0.0, -0.02, 0.0, 0.02, 0.0, 0.0];
        assert_eq!(
            nominal.read_noise_margin(&dv).to_bits(),
            explicit.read_noise_margin(&dv).to_bits()
        );
    }

    #[test]
    fn heating_degrades_the_read_margin() {
        let cold = ReadStabilityBench::paper_cell();
        let hot = ReadStabilityBench::with_config(BenchConfig {
            temperature_delta_c: 100.0,
            ..BenchConfig::default()
        });
        let cold_m = cold.read_noise_margin(&[0.0; 6]);
        let hot_m = hot.read_noise_margin(&[0.0; 6]);
        assert!(
            hot_m < cold_m,
            "heating should shrink the margin: {hot_m} vs {cold_m}"
        );
        assert!(
            hot_m > 0.0,
            "the nominal cell must survive 100 K of heating"
        );
    }

    #[test]
    fn rejects_out_of_range_temperature() {
        let result = std::panic::catch_unwind(|| {
            ReadStabilityBench::with_config(BenchConfig {
                temperature_delta_c: 500.0,
                ..BenchConfig::default()
            })
        });
        assert!(result.is_err(), "a 500 K delta must be rejected");
    }

    #[test]
    fn write_failure_boundary_is_distinct_from_read_boundary() {
        // The read-critical direction (driver imbalance) barely moves
        // the write margin and vice versa.
        let bench = ReadStabilityBench::paper_cell();
        let read_dir = [0.0, -0.15, 0.0, 0.15, 0.0, 0.0];
        assert!(bench.fails(&read_dir));
        assert!(
            bench.write_margin(&read_dir) > 0.0,
            "read-failing skew should still write"
        );
    }
}
