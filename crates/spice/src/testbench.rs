//! The read-stability testbench — the workspace's "transistor-level
//! simulation".
//!
//! [`ReadStabilityBench`] maps a 6-component threshold-shift vector (one
//! ΔVth per cell device, canonical order of
//! [`crate::sram::CellDevice`]) to the cell's read noise margin. A sample
//! *fails* when the margin is negative — the indicator function `I(x)` of
//! the paper (Sec. IV-A).
//!
//! Everything upstream (particle filters, classifiers, estimators) counts
//! invocations of this bench; it is deliberately the only expensive
//! operation in the workspace, just as SPICE runs are in the original
//! flow.

use crate::butterfly::Butterfly;
use crate::error::EvalError;
use crate::ptm::{paper_geometry, A_VTH_EFFECTIVE};
use crate::snm::try_read_noise_margin;
use crate::sram::{BiasCondition, CellDevice, Sram6T};
use serde::{Deserialize, Serialize};

/// Number of variability dimensions (one per cell transistor).
pub const DIM: usize = 6;

/// Configuration of the read-stability bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Supply voltage \[V\].
    pub vdd: f64,
    /// Butterfly sampling resolution (grid points per curve).
    pub grid_points: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            vdd: crate::ptm::VDD_NOMINAL,
            grid_points: 61,
        }
    }
}

/// The read-stability testbench.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadStabilityBench {
    cell: Sram6T,
    config: BenchConfig,
}

impl ReadStabilityBench {
    /// The paper's Table I cell at the nominal supply.
    pub fn paper_cell() -> Self {
        Self::with_config(BenchConfig::default())
    }

    /// The paper's cell at a custom supply (Fig. 7 uses 0.5 V).
    pub fn at_vdd(vdd: f64) -> Self {
        Self::with_config(BenchConfig {
            vdd,
            ..BenchConfig::default()
        })
    }

    /// Full configuration control.
    ///
    /// # Panics
    ///
    /// Panics if the supply is non-positive or the grid is degenerate.
    pub fn with_config(config: BenchConfig) -> Self {
        assert!(config.grid_points >= 2, "grid too coarse");
        Self {
            cell: Sram6T::paper_cell_at(config.vdd),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BenchConfig {
        &self.config
    }

    /// The underlying nominal cell.
    pub fn cell(&self) -> &Sram6T {
        &self.cell
    }

    /// Number of variability dimensions.
    pub fn dim(&self) -> usize {
        DIM
    }

    /// Per-device Pelgrom sigmas \[V\] in canonical device order, using
    /// the calibrated Pelgrom coefficient
    /// [`crate::ptm::A_VTH_EFFECTIVE`] constant.
    pub fn pelgrom_sigmas(&self) -> [f64; DIM] {
        CellDevice::ALL.map(|d| paper_geometry(d.role()).pelgrom_sigma(A_VTH_EFFECTIVE))
    }

    /// Validates a 6-component finite input vector.
    fn check_input(xs: &[f64], context: &'static str) -> Result<(), EvalError> {
        if xs.len() != DIM {
            return Err(EvalError::DimensionMismatch {
                expected: DIM,
                got: xs.len(),
            });
        }
        if xs.iter().any(|v| !v.is_finite()) {
            return Err(EvalError::NonFinite { context });
        }
        Ok(())
    }

    /// Shared fallible margin extraction under an arbitrary bias, at an
    /// arbitrary butterfly resolution. The grid override is the
    /// escalation knob of the bench-level retry ladder: a marginal
    /// operating point that defeats the default resolution often yields
    /// to a finer sweep (on top of the g-min / source-stepping ladder
    /// the DC solver already runs internally).
    fn try_margin_at(
        &self,
        delta_vth: &[f64],
        bias_of: impl Fn(&Sram6T) -> BiasCondition,
        grid_points: usize,
    ) -> Result<f64, EvalError> {
        Self::check_input(delta_vth, "threshold shifts")?;
        let cell = self.cell.with_delta_vth(delta_vth);
        let bias = bias_of(&cell);
        let butterfly = Butterfly::try_sample(&cell, &bias, grid_points)?;
        let rnm = try_read_noise_margin(&butterfly)?.rnm;
        if !rnm.is_finite() {
            return Err(EvalError::NonFinite {
                context: "extracted noise margin",
            });
        }
        Ok(rnm)
    }

    /// Read noise margin \[V\] of the cell with the given per-device
    /// threshold shifts (volts, canonical order). Negative = read failure.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`] (wrong dimension, non-finite input or
    /// operating point); see [`Self::try_read_noise_margin`] for the
    /// fallible variant.
    pub fn read_noise_margin(&self, delta_vth: &[f64]) -> f64 {
        match self.try_read_noise_margin(delta_vth) {
            Ok(m) => m,
            Err(e) => panic!("read-margin evaluation failed: {e}"),
        }
    }

    /// Fallible read noise margin: returns a typed [`EvalError`] instead
    /// of panicking on bad inputs or garbage operating points.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_read_noise_margin(&self, delta_vth: &[f64]) -> Result<f64, EvalError> {
        self.try_margin_at(delta_vth, Sram6T::read_bias, self.config.grid_points)
    }

    /// The paper's indicator function: `true` when the cell fails the
    /// read-stability specification (negative margin).
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_fails`].
    pub fn fails(&self, delta_vth: &[f64]) -> bool {
        self.read_noise_margin(delta_vth) < 0.0
    }

    /// Fallible indicator over physical threshold shifts.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_fails(&self, delta_vth: &[f64]) -> Result<bool, EvalError> {
        Ok(self.try_read_noise_margin(delta_vth)? < 0.0)
    }

    /// Convenience for whitened coordinates: scales a standard-normal
    /// vector by the Pelgrom sigmas before evaluating. This is the
    /// indicator `I(x)` over the *whitened* variability space used by all
    /// estimators.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`] (wrong dimension, non-finite input);
    /// see [`Self::try_fails_whitened`] for the typed-error variant.
    pub fn fails_whitened(&self, x: &[f64]) -> bool {
        match self.try_fails_whitened(x) {
            Ok(v) => v,
            Err(e) => panic!("read-stability evaluation failed: {e}"),
        }
    }

    /// Fallible whitened read-failure indicator.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::DimensionMismatch`] when `x.len() != 6`,
    /// [`EvalError::NonFinite`] for NaN/infinite samples or operating
    /// points.
    pub fn try_fails_whitened(&self, x: &[f64]) -> Result<bool, EvalError> {
        self.try_fails_whitened_at(x, self.config.grid_points)
    }

    /// Whitened read-failure indicator at an explicit butterfly
    /// resolution — the entry point retry ladders escalate through.
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_fails_whitened_at(&self, x: &[f64], grid_points: usize) -> Result<bool, EvalError> {
        Self::check_input(x, "whitened sample")?;
        Ok(self.try_margin_at(&self.to_physical(x), Sram6T::read_bias, grid_points)? < 0.0)
    }

    /// Hold (retention) noise margin \[V\]: word line low, so the access
    /// devices are off and the margin is set by the cross-coupled
    /// inverters alone. Always exceeds the read margin.
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_hold_noise_margin`].
    pub fn hold_noise_margin(&self, delta_vth: &[f64]) -> f64 {
        match self.try_hold_noise_margin(delta_vth) {
            Ok(m) => m,
            Err(e) => panic!("hold-margin evaluation failed: {e}"),
        }
    }

    /// Fallible hold noise margin.
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_hold_noise_margin(&self, delta_vth: &[f64]) -> Result<f64, EvalError> {
        self.try_margin_at(delta_vth, Sram6T::hold_bias, self.config.grid_points)
    }

    /// Write margin \[V\] for writing a "0" into node `Q` — an extension
    /// beyond the paper's read-only analysis.
    ///
    /// Under write bias (left bit line low, word line high) a *healthy*
    /// cell is monostable: the old state must be destroyed. The margin is
    /// therefore the *negated* Seevinck margin of the write-bias
    /// butterfly: positive when the residual eye has collapsed (write
    /// succeeds), negative when an eye remains (the cell can retain its
    /// old state — write failure).
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see [`Self::try_write_margin`].
    pub fn write_margin(&self, delta_vth: &[f64]) -> f64 {
        match self.try_write_margin(delta_vth) {
            Ok(m) => m,
            Err(e) => panic!("write-margin evaluation failed: {e}"),
        }
    }

    /// Fallible write margin (see [`Self::write_margin`]).
    ///
    /// # Errors
    ///
    /// See [`EvalError`].
    pub fn try_write_margin(&self, delta_vth: &[f64]) -> Result<f64, EvalError> {
        Ok(-self.try_margin_at(delta_vth, Sram6T::write0_bias, self.config.grid_points)?)
    }

    /// Write-failure indicator in whitened coordinates (see
    /// [`Self::write_margin`]).
    ///
    /// # Panics
    ///
    /// Panics on any [`EvalError`]; see
    /// [`Self::try_write_fails_whitened`].
    pub fn write_fails_whitened(&self, x: &[f64]) -> bool {
        match self.try_write_fails_whitened(x) {
            Ok(v) => v,
            Err(e) => panic!("write-stability evaluation failed: {e}"),
        }
    }

    /// Fallible whitened write-failure indicator.
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_write_fails_whitened(&self, x: &[f64]) -> Result<bool, EvalError> {
        self.try_write_fails_whitened_at(x, self.config.grid_points)
    }

    /// Whitened write-failure indicator at an explicit butterfly
    /// resolution (the retry-ladder entry point).
    ///
    /// # Errors
    ///
    /// See [`Self::try_fails_whitened`].
    pub fn try_write_fails_whitened_at(
        &self,
        x: &[f64],
        grid_points: usize,
    ) -> Result<bool, EvalError> {
        Self::check_input(x, "whitened sample")?;
        Ok(self.try_margin_at(&self.to_physical(x), Sram6T::write0_bias, grid_points)? > 0.0)
    }

    /// Scales a whitened vector back to physical threshold shifts \[V\].
    fn to_physical(&self, x: &[f64]) -> [f64; DIM] {
        let sigmas = self.pelgrom_sigmas();
        let mut dv = [0.0; DIM];
        for i in 0..DIM {
            dv[i] = x[i] * sigmas[i];
        }
        dv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_cell_passes() {
        let bench = ReadStabilityBench::paper_cell();
        assert!(!bench.fails(&[0.0; 6]));
        assert!(bench.read_noise_margin(&[0.0; 6]) > 0.0);
    }

    #[test]
    fn extreme_mismatch_fails() {
        let bench = ReadStabilityBench::paper_cell();
        // Massive driver imbalance: the read disturb flips the cell.
        let dv = [0.0, -0.3, 0.0, 0.3, 0.0, 0.0];
        assert!(bench.fails(&dv));
    }

    #[test]
    fn whitened_indicator_matches_physical_one() {
        let bench = ReadStabilityBench::paper_cell();
        let sig = bench.pelgrom_sigmas();
        let x = [1.0, -2.0, 0.5, 3.0, -1.0, 0.0];
        let dv: Vec<f64> = x.iter().zip(&sig).map(|(xi, s)| xi * s).collect();
        assert_eq!(bench.fails_whitened(&x), bench.fails(&dv));
    }

    #[test]
    fn sigma_order_follows_canonical_devices() {
        let bench = ReadStabilityBench::paper_cell();
        let s = bench.pelgrom_sigmas();
        // Loads (indices 0, 2) are wider → smaller sigma than drivers
        // (1, 3) and access (4, 5).
        assert!(s[0] < s[1]);
        assert!(s[2] < s[3]);
        assert_eq!(s[1], s[4]);
        assert_eq!(s[3], s[5]);
        assert_eq!(s[0], s[2]);
    }

    #[test]
    fn failure_region_is_far_from_origin_in_sigma_units() {
        // The boundary along a symmetric worst-case direction should sit
        // several sigma out — that is what makes naive MC hopeless and the
        // whole method necessary.
        let bench = ReadStabilityBench::paper_cell();
        let dir = [1.0, -1.0, -1.0, 1.0, 0.0, 0.0].map(|v: f64| v / 2.0); // unit-norm
        let mut lo = 0.0_f64;
        let mut hi = 20.0_f64;
        assert!(!bench.fails_whitened(&dir.map(|d| d * lo)));
        assert!(bench.fails_whitened(&dir.map(|d| d * hi)));
        for _ in 0..30 {
            let mid = 0.5 * (lo + hi);
            if bench.fails_whitened(&dir.map(|d| d * mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let boundary = 0.5 * (lo + hi);
        assert!(
            boundary > 2.0 && boundary < 12.0,
            "boundary at {boundary}σ along the worst-case direction"
        );
    }

    #[test]
    fn lower_vdd_moves_boundary_inward() {
        let hi_vdd = ReadStabilityBench::at_vdd(0.7);
        let lo_vdd = ReadStabilityBench::at_vdd(0.5);
        let dir = [1.0, -1.0, -1.0, 1.0, 0.0, 0.0].map(|v: f64| v / 2.0);
        let boundary = |bench: &ReadStabilityBench| {
            let mut lo = 0.0_f64;
            let mut hi = 20.0_f64;
            for _ in 0..30 {
                let mid = 0.5 * (lo + hi);
                if bench.fails_whitened(&dir.map(|d| d * mid)) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            0.5 * (lo + hi)
        };
        assert!(
            boundary(&lo_vdd) < boundary(&hi_vdd),
            "lower supply should fail earlier"
        );
    }

    #[test]
    fn rejects_wrong_dimension_with_typed_error() {
        let bench = ReadStabilityBench::paper_cell();
        assert_eq!(
            bench.try_fails_whitened(&[0.0; 5]),
            Err(EvalError::DimensionMismatch {
                expected: 6,
                got: 5
            })
        );
        assert_eq!(
            bench.try_write_fails_whitened(&[0.0; 7]),
            Err(EvalError::DimensionMismatch {
                expected: 6,
                got: 7
            })
        );
    }

    #[test]
    fn rejects_non_finite_samples_with_typed_error() {
        let bench = ReadStabilityBench::paper_cell();
        let mut x = [0.0; 6];
        x[3] = f64::NAN;
        assert_eq!(
            bench.try_fails_whitened(&x),
            Err(EvalError::NonFinite {
                context: "whitened sample"
            })
        );
        x[3] = f64::INFINITY;
        assert_eq!(
            bench.try_read_noise_margin(&x),
            Err(EvalError::NonFinite {
                context: "threshold shifts"
            })
        );
    }

    #[test]
    fn try_variants_match_panicking_variants_on_healthy_samples() {
        let bench = ReadStabilityBench::paper_cell();
        let x = [0.4, -0.7, 0.1, 0.0, -0.2, 0.5];
        assert_eq!(bench.try_fails_whitened(&x), Ok(bench.fails_whitened(&x)));
        let dv = [0.0, -0.02, 0.0, 0.02, 0.0, 0.0];
        assert_eq!(
            bench.try_read_noise_margin(&dv),
            Ok(bench.read_noise_margin(&dv))
        );
        assert_eq!(bench.try_write_margin(&dv), Ok(bench.write_margin(&dv)));
        assert_eq!(
            bench.try_hold_noise_margin(&dv),
            Ok(bench.hold_noise_margin(&dv))
        );
    }

    #[test]
    fn finer_grids_refine_the_margin_estimate() {
        // The retry ladder escalates butterfly resolution; the verdict on
        // a comfortably passing sample must not flip with the grid.
        let bench = ReadStabilityBench::paper_cell();
        let x = [0.1, -0.1, 0.0, 0.0, 0.0, 0.0];
        let coarse = bench.try_fails_whitened_at(&x, 31).expect("coarse grid");
        let fine = bench.try_fails_whitened_at(&x, 121).expect("fine grid");
        assert_eq!(coarse, fine);
    }

    #[test]
    fn hold_margin_exceeds_read_margin() {
        let bench = ReadStabilityBench::paper_cell();
        let dv = [0.0, -0.02, 0.0, 0.02, 0.0, 0.0];
        assert!(bench.hold_noise_margin(&dv) > bench.read_noise_margin(&dv));
    }

    #[test]
    fn nominal_cell_is_writeable() {
        let bench = ReadStabilityBench::paper_cell();
        assert!(
            bench.write_margin(&[0.0; 6]) > 0.0,
            "a healthy cell must accept a write"
        );
    }

    #[test]
    fn write_margin_degrades_with_strong_load_and_weak_access() {
        // Writing 0 into Q fights the left pull-up through the left
        // access device; strengthening PL and weakening AL is the
        // classic write-failure direction.
        let bench = ReadStabilityBench::paper_cell();
        let mut prev = f64::INFINITY;
        for k in 0..5 {
            let s = 0.08 * k as f64;
            let dv = [-s, 0.0, 0.0, 0.0, s, 0.0];
            let wm = bench.write_margin(&dv);
            assert!(
                wm < prev + 1e-9,
                "write margin should fall with write-hostile skew: step {k} gives {wm}"
            );
            prev = wm;
        }
        assert!(
            prev < 0.0,
            "extreme skew should break the write, margin = {prev}"
        );
    }

    #[test]
    fn write_failure_boundary_is_distinct_from_read_boundary() {
        // The read-critical direction (driver imbalance) barely moves
        // the write margin and vice versa.
        let bench = ReadStabilityBench::paper_cell();
        let read_dir = [0.0, -0.15, 0.0, 0.15, 0.0, 0.0];
        assert!(bench.fails(&read_dir));
        assert!(
            bench.write_margin(&read_dir) > 0.0,
            "read-failing skew should still write"
        );
    }
}
