//! Static noise margin extraction (Seevinck's maximum-embedded-square
//! criterion), extended with a *signed* margin for unstable cells.
//!
//! Following Seevinck, List and Lohstroh (JSSC 1987): rotate the butterfly
//! plot by 45° with `u = (x − y)/√2`, `v = (x + y)/√2`. Along each
//! (monotone-decreasing) transfer curve, `u` is strictly increasing, so
//! both curves become single-valued functions `v(u)`. The side of the
//! largest square with axes-parallel sides embedded in a lobe equals
//! `max_u Δv(u) / √2`, where `Δv` is the inter-curve gap in the rotated
//! frame — positive in one direction for each lobe.
//!
//! When mismatch destroys one of the stable states, the corresponding gap
//! maximum is negative; we keep its (negative) value as a graded failure
//! depth. The **read noise margin** is the minimum over the two lobes, so
//! `rnm < 0` exactly when the cell cannot hold both states — the paper's
//! failure criterion.

use crate::butterfly::Butterfly;
use crate::error::EvalError;
use serde::{Deserialize, Serialize};

/// Noise margins of the two lobes and their minimum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnmReport {
    /// Margin of the lobe around the `Q=0, QB=1` state \[V\] (signed).
    pub snm_low: f64,
    /// Margin of the lobe around the `Q=1, QB=0` state \[V\] (signed).
    pub snm_high: f64,
    /// `min(snm_low, snm_high)` — the cell's noise margin \[V\].
    pub rnm: f64,
}

impl SnmReport {
    /// Whether the margin's *sign* is trustworthy at a coarser sampling
    /// resolution: finite and at least `threshold` volts away from zero.
    /// Adaptive evaluation accepts a coarse verdict only when this holds
    /// with a threshold well above the coarse-vs-fine margin drift.
    pub fn decisive(&self, threshold: f64) -> bool {
        self.rnm.is_finite() && self.rnm.abs() >= threshold
    }
}

/// A polyline resampled as a single-valued function of the rotated
/// coordinate `u`.
struct RotatedCurve {
    u: Vec<f64>,
    v: Vec<f64>,
}

impl RotatedCurve {
    /// Rotates `(x, y)` points into `(u, v)` and enforces monotone `u`.
    /// Non-finite points are rejected with a typed error — they would
    /// otherwise poison the interpolation silently.
    fn from_points(points: impl Iterator<Item = (f64, f64)>) -> Result<Self, EvalError> {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let mut u = Vec::new();
        let mut v = Vec::new();
        for (x, y) in points {
            if !x.is_finite() || !y.is_finite() {
                return Err(EvalError::NonFinite {
                    context: "butterfly curve point",
                });
            }
            let uu = (x - y) * inv_sqrt2;
            let vv = (x + y) * inv_sqrt2;
            // Transfer curves are monotone, but bisection noise can create
            // ~1e-12 reversals; drop non-advancing points.
            if let Some(&last) = u.last() {
                if uu <= last {
                    continue;
                }
            }
            u.push(uu);
            v.push(vv);
        }
        Ok(Self { u, v })
    }

    /// First `u` value; curves are only built with ≥ 2 points before use.
    fn u_min(&self) -> f64 {
        self.u.first().copied().unwrap_or(f64::NAN)
    }

    fn u_max(&self) -> f64 {
        self.u.last().copied().unwrap_or(f64::NAN)
    }

    /// Linear interpolation of `v(u)`; clamps outside the sampled range.
    /// All `u` values are finite (enforced in `from_points`), so
    /// `total_cmp` agrees with the ordinary ordering here.
    fn eval(&self, uu: f64) -> f64 {
        match self.u.binary_search_by(|p| p.total_cmp(&uu)) {
            Ok(i) => self.v[i],
            Err(0) => self.v[0],
            Err(i) if i >= self.u.len() => self.v[self.u.len() - 1],
            Err(i) => {
                let (u0, u1) = (self.u[i - 1], self.u[i]);
                let (v0, v1) = (self.v[i - 1], self.v[i]);
                let t = (uu - u0) / (u1 - u0);
                v0 + t * (v1 - v0)
            }
        }
    }
}

/// Computes the signed noise margins of a butterfly plot.
///
/// The inter-curve gap `g(u) = v_A(u) − v_B(u)` changes sign exactly at
/// the DC solutions of the cross-coupled loop (the butterfly
/// intersections). A bistable cell has three: the two stable states
/// bracket the lobes, so both margins are evaluated between the outermost
/// crossings (`g > 0` in the `Q=0` lobe, `g < 0` in the `Q=1` lobe). A
/// monostable — read-unstable — cell has one crossing; on the surviving
/// state's side of it `g` keeps a single sign, so the *maximum* of the
/// vanished lobe's gap is negative and measures how far the cell is from
/// regaining bistability. That signed value is what bisection-based
/// boundary searches in the variability space rely on.
///
/// The returned margins are exact up to the butterfly's sampling
/// resolution; refine by sampling more points.
///
/// # Panics
///
/// Panics if the butterfly has fewer than two usable points per curve or
/// contains non-finite values. Use [`try_read_noise_margin`] for a typed
/// error instead.
pub fn read_noise_margin(butterfly: &Butterfly) -> SnmReport {
    match try_read_noise_margin(butterfly) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible variant of [`read_noise_margin`]: a garbage operating point
/// (NaN curve values, curves that collapse to fewer than two usable
/// points) surfaces as a typed [`EvalError`] instead of a panic or a
/// bogus margin.
///
/// # Errors
///
/// Returns [`EvalError::NonFinite`] for NaN/infinite curve points and
/// [`EvalError::DegenerateCurve`] when either rotated curve has fewer
/// than two usable points.
pub fn try_read_noise_margin(butterfly: &Butterfly) -> Result<SnmReport, EvalError> {
    let a = RotatedCurve::from_points(butterfly.points_a())?;
    // Curve B runs in descending u as sampled (its x coordinate falls as
    // the grid rises); reverse so u ascends.
    let b_pts: Vec<(f64, f64)> = butterfly.points_b().collect();
    let b = RotatedCurve::from_points(b_pts.into_iter().rev())?;
    let usable = a.u.len().min(b.u.len());
    if usable < 2 {
        return Err(EvalError::DegenerateCurve { usable });
    }

    let lo = a.u_min().max(b.u_min());
    let hi = a.u_max().min(b.u_max());
    // Dense uniform scan across the overlap; 4× the native resolution
    // keeps the interpolation error negligible.
    let n = 4 * butterfly.len().max(2);
    let us: Vec<f64> = (0..=n)
        .map(|i| lo + (hi - lo) * i as f64 / n as f64)
        .collect();
    let gaps: Vec<f64> = us.iter().map(|&u| a.eval(u) - b.eval(u)).collect();

    // Indices of sign changes of g — the butterfly intersections (DC
    // fixed points of the cross-coupled loop).
    let crossings: Vec<usize> = (1..gaps.len())
        .filter(|&i| gaps[i - 1].signum() != gaps[i].signum() && gaps[i - 1] != 0.0)
        .collect();

    let max_over = |range: std::ops::RangeInclusive<usize>, sign: f64| {
        gaps[range]
            .iter()
            .fold(f64::NEG_INFINITY, |acc, &g| acc.max(sign * g))
    };

    let (gap_pos, gap_neg) = if crossings.len() >= 3 {
        // Bistable: the outermost crossings are the stable states; both
        // lobes live between them (g > 0 in the Q=0 lobe at low u, g < 0
        // in the Q=1 lobe at high u). Scanning between the outer
        // crossings excludes the thin truncation slivers outside them.
        let (i_lo, i_hi) = (crossings[0], crossings[crossings.len() - 1]);
        (max_over(i_lo..=i_hi, 1.0), max_over(i_lo..=i_hi, -1.0))
    } else {
        // Monostable (or tangent): only one state's lobe has a genuine
        // peak; the other lobe's gap never reaches zero. Split at the
        // surviving lobe's peak: the vanished lobe's (negative) maximum
        // lies on the far side of it. The Q=0 lobe sits at lower u than
        // the Q=1 lobe, which fixes the scan direction. All gaps are
        // finite here (guaranteed by `from_points`), so `total_cmp`
        // agrees with the ordinary ordering.
        let n_all = gaps.len() - 1;
        let peak_pos = max_over(0..=n_all, 1.0);
        let peak_neg = max_over(0..=n_all, -1.0);
        if peak_pos >= peak_neg {
            // Q=0 survives; the vanished Q=1 lobe is to the right of the
            // surviving peak.
            let i_peak = gaps
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            (peak_pos, max_over(i_peak..=n_all, -1.0))
        } else {
            // Q=1 survives; the vanished Q=0 lobe is to the left.
            let i_peak = gaps
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            (max_over(0..=i_peak, 1.0), peak_neg)
        }
    };
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    let snm_low = gap_pos * inv_sqrt2;
    let snm_high = gap_neg * inv_sqrt2;
    Ok(SnmReport {
        snm_low,
        snm_high,
        rnm: snm_low.min(snm_high),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::{CellDevice, Sram6T};

    fn margin(cell: &Sram6T, read: bool, points: usize) -> SnmReport {
        let bias = if read {
            cell.read_bias()
        } else {
            cell.hold_bias()
        };
        read_noise_margin(&Butterfly::sample(cell, &bias, points))
    }

    #[test]
    fn ideal_step_inverters_give_half_vdd_margin() {
        // Synthetic butterfly from ideal inverters: SNM must be VDD/2.
        let vdd = 1.0;
        let n = 201;
        let grid: Vec<f64> = (0..n).map(|i| vdd * i as f64 / (n - 1) as f64).collect();
        let step = |x: f64| if x < 0.5 * vdd { vdd } else { 0.0 };
        let b = Butterfly {
            grid: grid.clone(),
            curve_a: grid.iter().map(|&x| step(x)).collect(),
            curve_b: grid.iter().map(|&x| step(x)).collect(),
        };
        let m = read_noise_margin(&b);
        assert!(
            (m.rnm - 0.5 * vdd).abs() < 0.02,
            "ideal SNM = {}, want 0.5",
            m.rnm
        );
        assert!((m.snm_low - m.snm_high).abs() < 0.02);
    }

    #[test]
    fn nominal_cell_is_read_stable() {
        let cell = Sram6T::paper_cell();
        let m = margin(&cell, true, 121);
        assert!(m.rnm > 0.02, "nominal RNM = {} V", m.rnm);
        // Symmetric cell: both lobes agree.
        assert!(
            (m.snm_low - m.snm_high).abs() < 2e-3,
            "lobe asymmetry: {} vs {}",
            m.snm_low,
            m.snm_high
        );
    }

    #[test]
    fn hold_margin_exceeds_read_margin() {
        let cell = Sram6T::paper_cell();
        let read = margin(&cell, true, 121);
        let hold = margin(&cell, false, 121);
        assert!(
            hold.rnm > read.rnm + 0.01,
            "hold {} should comfortably exceed read {}",
            hold.rnm,
            read.rnm
        );
    }

    #[test]
    fn margin_decreases_monotonically_with_mismatch() {
        let cell = Sram6T::paper_cell();
        let mut prev = f64::INFINITY;
        for k in 0..7 {
            let s = 0.05 * k as f64;
            // Worst-case read direction: weaken one driver, strengthen
            // the other (driver mismatch dominates read stability).
            let mut dv = [0.0; 6];
            dv[CellDevice::DriverR as usize] = s;
            dv[CellDevice::DriverL as usize] = -s;
            let m = margin(&cell.with_delta_vth(&dv), true, 121);
            assert!(
                m.rnm < prev + 1e-6,
                "margin should fall with mismatch: step {k} gives {}",
                m.rnm
            );
            prev = m.rnm;
        }
        // By the largest skew the cell must have failed.
        assert!(
            prev < 0.0,
            "expected failure at 0.3 V skew, margin = {prev}"
        );
    }

    #[test]
    fn signed_margin_goes_negative_continuously() {
        // Bracket the failure boundary and confirm the margin passes
        // through ≈0 rather than jumping.
        let cell = Sram6T::paper_cell();
        let skew = |s: f64| {
            let mut dv = [0.0; 6];
            dv[CellDevice::DriverR as usize] = s;
            dv[CellDevice::DriverL as usize] = -s;
            dv
        };
        let mut lo = 0.0; // stable
        let mut hi = 0.30; // unstable (verified by the test above)
        for _ in 0..20 {
            let mid = 0.5 * (lo + hi);
            let m = margin(&cell.with_delta_vth(&skew(mid)), true, 121);
            if m.rnm > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let m = margin(&cell.with_delta_vth(&skew(0.5 * (lo + hi))), true, 121);
        assert!(
            m.rnm.abs() < 5e-3,
            "margin at the bisected boundary should be near zero, got {}",
            m.rnm
        );
    }

    #[test]
    fn mirroring_swaps_lobes() {
        let cell = Sram6T::paper_cell().with_delta_vth(&[0.03, -0.02, 0.01, 0.04, -0.01, 0.02]);
        let m = margin(&cell, true, 121);
        let mm = margin(&cell.mirrored(), true, 121);
        assert!((m.snm_low - mm.snm_high).abs() < 2e-3, "{m:?} vs {mm:?}");
        assert!((m.snm_high - mm.snm_low).abs() < 2e-3);
        assert!((m.rnm - mm.rnm).abs() < 2e-3);
    }

    #[test]
    fn lower_vdd_reduces_margin() {
        let hi = margin(&Sram6T::paper_cell_at(0.7), true, 121);
        let lo = margin(&Sram6T::paper_cell_at(0.5), true, 121);
        assert!(
            lo.rnm < hi.rnm,
            "margin at 0.5 V ({}) should be below 0.7 V ({})",
            lo.rnm,
            hi.rnm
        );
    }

    #[test]
    fn nan_curve_yields_typed_error() {
        let b = Butterfly {
            grid: vec![0.0, 0.5, 1.0],
            curve_a: vec![1.0, f64::NAN, 0.0],
            curve_b: vec![1.0, 0.5, 0.0],
        };
        match try_read_noise_margin(&b) {
            Err(EvalError::NonFinite { .. }) => {}
            other => panic!("expected NonFinite error, got {other:?}"),
        }
    }

    #[test]
    fn collapsed_curve_yields_degenerate_error() {
        // Every point identical → after monotone-u filtering a single
        // usable point remains.
        let b = Butterfly {
            grid: vec![0.3; 4],
            curve_a: vec![0.3; 4],
            curve_b: vec![0.3; 4],
        };
        match try_read_noise_margin(&b) {
            Err(EvalError::DegenerateCurve { usable }) => assert!(usable < 2),
            other => panic!("expected DegenerateCurve error, got {other:?}"),
        }
    }

    #[test]
    fn try_variant_matches_panicking_variant() {
        let cell = Sram6T::paper_cell();
        let b = Butterfly::sample(&cell, &cell.read_bias(), 61);
        let a = read_noise_margin(&b);
        let t = try_read_noise_margin(&b).expect("healthy butterfly");
        assert_eq!(a, t);
    }

    #[test]
    fn resolution_convergence() {
        // Doubling the butterfly resolution should barely move the margin.
        let cell = Sram6T::paper_cell();
        let coarse = margin(&cell, true, 61).rnm;
        let fine = margin(&cell, true, 241).rnm;
        assert!(
            (coarse - fine).abs() < 3e-3,
            "margin drifted with resolution: {coarse} vs {fine}"
        );
    }
}
