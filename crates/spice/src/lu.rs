//! Dense LU factorisation with partial pivoting.
//!
//! The MNA systems of this workspace are tiny (≤ ~10 unknowns for the 6T
//! cell with sources), so a straightforward `O(n³)` dense factorisation is
//! both the simplest and the fastest option — no sparse machinery, no
//! external linear-algebra dependency.

/// A square matrix in row-major storage.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "row-major data length mismatch");
        Self { n, data }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element setter.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// In-place element update (`+=`), the natural operation for MNA
    /// stamping.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
    }

    /// Resets all entries to zero, preserving the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Row-major data slice (length `dim() * dim()`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Copies another matrix's contents into this one without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        assert_eq!(self.n, other.n, "copy_from dimension mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// Error returned when factorisation meets a (numerically) singular pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError;

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular to working precision")
    }
}

impl std::error::Error for SingularMatrixError {}

/// An LU factorisation `P·A = L·U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factorises `a` (consumed).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if a pivot smaller than `1e-300`
    /// in magnitude is encountered.
    pub fn factor(a: DenseMatrix) -> Result<Self, SingularMatrixError> {
        let n = a.n;
        let mut out = Self {
            n,
            lu: a.data,
            perm: (0..n).collect(),
        };
        out.factor_in_place()?;
        Ok(out)
    }

    /// Creates an *unfactored* placeholder of dimension `n`, holding the
    /// identity. Useful as a reusable scratch slot for
    /// [`Self::refactor`].
    pub fn placeholder(n: usize) -> Self {
        let mut lu = vec![0.0; n * n];
        for i in 0..n {
            lu[i * n + i] = 1.0;
        }
        Self {
            n,
            lu,
            perm: (0..n).collect(),
        }
    }

    /// Re-factorises `a` into this object, reusing the existing `lu` and
    /// `perm` allocations — the allocation-free path for solvers that
    /// factorise once per Newton iteration.
    ///
    /// On error the factors are left in an unspecified state and must be
    /// refilled by a successful `refactor` before the next `solve`.
    ///
    /// # Panics
    ///
    /// Panics if `a.dim()` does not match this factorisation's dimension.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] under the same conditions as
    /// [`Self::factor`].
    pub fn refactor(&mut self, a: &DenseMatrix) -> Result<(), SingularMatrixError> {
        assert_eq!(a.n, self.n, "refactor dimension mismatch");
        self.lu.copy_from_slice(&a.data);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        self.factor_in_place()
    }

    fn factor_in_place(&mut self) -> Result<(), SingularMatrixError> {
        let n = self.n;
        let lu = &mut self.lu;
        let perm = &mut self.perm;
        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu[col * n + col].abs();
            for row in (col + 1)..n {
                let v = lu[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return Err(SingularMatrixError);
            }
            if pivot_row != col {
                for k in 0..n {
                    lu.swap(col * n + k, pivot_row * n + k);
                }
                perm.swap(col, pivot_row);
            }
            let pivot = lu[col * n + col];
            for row in (col + 1)..n {
                let factor = lu[row * n + col] / pivot;
                lu[row * n + col] = factor;
                for k in (col + 1)..n {
                    lu[row * n + k] -= factor * lu[col * n + k];
                }
            }
        }
        Ok(())
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A·x = b` into a caller-provided buffer — the
    /// allocation-free path for hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` does not match the matrix
    /// dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        assert_eq!(x.len(), self.n, "solution dimension mismatch");
        let n = self.n;
        // Apply permutation.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            for k in 0..i {
                x[i] -= self.lu[i * n + k] * x[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[i * n + k] * x[k];
            }
            x[i] /= self.lu[i * n + i];
        }
    }
}

/// Convenience: factorises and solves in one call.
///
/// # Errors
///
/// Returns [`SingularMatrixError`] if the matrix cannot be factorised.
pub fn solve_dense(a: DenseMatrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrixError> {
    Ok(LuFactors::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let mut a = DenseMatrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve_dense(a, &[3.0, -1.0, 2.5]).expect("identity is regular");
        assert_eq!(x, vec![3.0, -1.0, 2.5]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5] → x = [0.8, 1.4]
        let a = DenseMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve_dense(a, &[3.0, 5.0]).expect("regular");
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading zero demands a row swap.
        let a = DenseMatrix::from_rows(2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve_dense(a, &[2.0, 3.0]).expect("regular after pivot");
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(solve_dense(a, &[1.0, 2.0]), Err(SingularMatrixError));
    }

    #[test]
    fn refactor_reuses_buffers_and_matches_factor() {
        let a = DenseMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]);
        let b = DenseMatrix::from_rows(2, vec![0.0, 1.0, 1.0, 0.0]);
        let fresh = LuFactors::factor(b.clone()).expect("regular");
        let mut reused = LuFactors::factor(a).expect("regular");
        reused.refactor(&b).expect("regular");
        assert_eq!(fresh.solve(&[2.0, 3.0]), reused.solve(&[2.0, 3.0]));
    }

    #[test]
    fn refactor_reports_singularity_like_factor() {
        let singular = DenseMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 4.0]);
        let mut f = LuFactors::factor(DenseMatrix::from_rows(2, vec![1.0, 0.0, 0.0, 1.0])).unwrap();
        assert_eq!(f.refactor(&singular), Err(SingularMatrixError));
    }

    #[test]
    fn placeholder_solves_as_identity_after_refactor() {
        let mut f = LuFactors::placeholder(3);
        let mut a = DenseMatrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 2.0);
        }
        f.refactor(&a).expect("regular");
        let mut x = vec![0.0; 3];
        f.solve_into(&[2.0, 4.0, 6.0], &mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = DenseMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]);
        let f = LuFactors::factor(a).expect("regular");
        let mut x = vec![0.0; 2];
        f.solve_into(&[3.0, 5.0], &mut x);
        assert_eq!(x, f.solve(&[3.0, 5.0]));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn stamping_add_accumulates() {
        let mut a = DenseMatrix::zeros(2);
        a.add(0, 0, 1.5);
        a.add(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 4.0);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }

    proptest! {
        #[test]
        fn prop_solves_diagonally_dominant_systems(
            seed in proptest::collection::vec(-1.0f64..1.0, 16),
            rhs in proptest::collection::vec(-10.0f64..10.0, 4),
        ) {
            // Make the matrix strictly diagonally dominant → regular.
            let n = 4;
            let mut a = DenseMatrix::from_rows(n, seed);
            for i in 0..n {
                let off: f64 = (0..n).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
                a.set(i, i, off + 1.0);
            }
            let x = solve_dense(a.clone(), &rhs).expect("dd matrix is regular");
            let back = a.mul_vec(&x);
            for (b, r) in back.iter().zip(&rhs) {
                prop_assert!((b - r).abs() < 1e-8);
            }
        }
    }
}
