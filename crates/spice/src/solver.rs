//! Damped Newton DC operating-point solver with g-min and source
//! stepping.
//!
//! The classic SPICE `.OP` convergence toolkit, miniaturised:
//!
//! 1. plain damped Newton–Raphson from the supplied (or zero) initial
//!    state;
//! 2. on failure, **g-min stepping** — solve with a large conductance from
//!    every node to ground, then relax it geometrically towards the target
//!    `gmin`, reusing each solution as the next starting point;
//! 3. on failure, **source stepping** — ramp all independent sources from
//!    0 to 100 %.
//!
//! SRAM cells are bistable, so which stable state the solver lands in
//! depends on the initial state; callers seed the state node voltages to
//! select a state (see [`crate::sram`]).

use crate::lu::{DenseMatrix, LuFactors};
use crate::netlist::Netlist;

/// Convergence and stepping knobs for the DC solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Maximum Newton iterations per solve attempt.
    pub max_iterations: usize,
    /// Residual infinity-norm tolerance \[A\] (and \[V\] for branch rows).
    pub tolerance: f64,
    /// Maximum voltage change per Newton step \[V\] (damping clamp).
    pub max_step: f64,
    /// Final (target) g-min conductance \[S\].
    pub gmin: f64,
    /// Number of g-min relaxation decades on fallback.
    pub gmin_steps: usize,
    /// Number of source-stepping ramp points on fallback.
    pub source_steps: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-12,
            max_step: 0.3,
            gmin: 1e-12,
            gmin_steps: 10,
            source_steps: 10,
        }
    }
}

/// Why a DC solve failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Newton did not reach the tolerance within the iteration budget,
    /// even with g-min and source stepping. Carries the best residual
    /// norm reached.
    NoConvergence {
        /// Best residual infinity norm achieved.
        best_residual: f64,
    },
    /// The Jacobian became singular.
    SingularJacobian,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NoConvergence { best_residual } => {
                write!(
                    f,
                    "newton iteration did not converge (best residual {best_residual:e})"
                )
            }
            SolveError::SingularJacobian => write!(f, "singular jacobian in newton solve"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A converged DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Node voltages indexed by node id (`[0]` is ground, always 0).
    pub node_voltages: Vec<f64>,
    /// Voltage-source branch currents in element insertion order.
    pub branch_currents: Vec<f64>,
    /// Newton iterations spent (across all stepping phases).
    pub iterations: usize,
}

/// The DC solver.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    /// Options used by [`Self::solve_dc`].
    pub options: SolverOptions,
}

impl Solver {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves for the DC operating point.
    ///
    /// `initial_voltages`, if provided, seeds the non-ground node voltages
    /// (length must be `netlist.node_count()`, entry 0 ignored); this is
    /// how callers choose between stable states of bistable circuits.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if no convergence strategy succeeds.
    pub fn solve_dc(
        &self,
        netlist: &Netlist,
        initial_voltages: Option<&[f64]>,
    ) -> Result<OperatingPoint, SolveError> {
        let n = netlist.system_size();
        let nodes = netlist.node_count();
        let mut state = vec![0.0; n];
        if let Some(init) = initial_voltages {
            assert_eq!(init.len(), nodes, "initial voltage vector length mismatch");
            state[..nodes - 1].copy_from_slice(&init[1..]);
        }

        let mut iterations = 0usize;

        // Phase 1: plain Newton.
        match self.newton(netlist, &mut state, self.options.gmin, 1.0) {
            Ok(iters) => {
                iterations += iters;
                return Ok(self.finish(netlist, state, iterations));
            }
            Err(SolveError::SingularJacobian) => {}
            Err(SolveError::NoConvergence { .. }) => {}
        }

        // Phase 2: g-min stepping from 1e-2 S down to the target.
        let mut gstate = vec![0.0; n];
        if let Some(init) = initial_voltages {
            gstate[..nodes - 1].copy_from_slice(&init[1..]);
        }
        let mut ok = true;
        let start_g = 1e-2_f64;
        let steps = self.options.gmin_steps.max(1);
        let ratio = (self.options.gmin / start_g).powf(1.0 / steps as f64);
        let mut g = start_g;
        for _ in 0..=steps {
            match self.newton(netlist, &mut gstate, g.max(self.options.gmin), 1.0) {
                Ok(iters) => iterations += iters,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            g *= ratio;
        }
        if ok {
            // Final polish at the target g-min.
            if let Ok(iters) = self.newton(netlist, &mut gstate, self.options.gmin, 1.0) {
                iterations += iters;
                return Ok(self.finish(netlist, gstate, iterations));
            }
        }

        // Phase 3: source stepping.
        let mut sstate = vec![0.0; n];
        let steps = self.options.source_steps.max(1);
        let mut best_residual = f64::INFINITY;
        for k in 1..=steps {
            let scale = k as f64 / steps as f64;
            match self.newton(netlist, &mut sstate, self.options.gmin, scale) {
                Ok(iters) => iterations += iters,
                Err(SolveError::NoConvergence { best_residual: r }) => {
                    best_residual = best_residual.min(r);
                    return Err(SolveError::NoConvergence { best_residual });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.finish(netlist, sstate, iterations))
    }

    /// Runs damped Newton at fixed `gmin`/`src_scale`; on success the
    /// state holds the solution and the iteration count is returned.
    fn newton(
        &self,
        netlist: &Netlist,
        state: &mut [f64],
        gmin: f64,
        src_scale: f64,
    ) -> Result<usize, SolveError> {
        let n = netlist.system_size();
        let mut jac = DenseMatrix::zeros(n);
        let mut residual = vec![0.0; n];
        let mut best = f64::INFINITY;
        for iter in 0..self.options.max_iterations {
            netlist.assemble(state, gmin, src_scale, &mut jac, &mut residual);
            let norm = residual.iter().fold(0.0_f64, |acc, r| acc.max(r.abs()));
            best = best.min(norm);
            if norm < self.options.tolerance {
                return Ok(iter);
            }
            let neg: Vec<f64> = residual.iter().map(|r| -r).collect();
            let delta = LuFactors::factor(jac.clone())
                .map_err(|_| SolveError::SingularJacobian)?
                .solve(&neg);
            // Damping: clamp the largest voltage move.
            let max_move = delta.iter().fold(0.0_f64, |acc, d| acc.max(d.abs()));
            let scale = if max_move > self.options.max_step {
                self.options.max_step / max_move
            } else {
                1.0
            };
            for (s, d) in state.iter_mut().zip(&delta) {
                *s += scale * d;
            }
        }
        Err(SolveError::NoConvergence {
            best_residual: best,
        })
    }

    fn finish(&self, netlist: &Netlist, state: Vec<f64>, iterations: usize) -> OperatingPoint {
        let nodes = netlist.node_count();
        let mut node_voltages = vec![0.0; nodes];
        node_voltages[1..].copy_from_slice(&state[..nodes - 1]);
        let branch_currents = state[nodes - 1..].to_vec();
        OperatingPoint {
            node_voltages,
            branch_currents,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mosfet;
    use crate::netlist::Element;
    use crate::ptm::{paper_geometry, ptm16_hp_nmos, DeviceRole, VDD_NOMINAL};

    #[test]
    fn resistive_divider() {
        let mut nl = Netlist::new(0.0);
        let vin = nl.add_node();
        let mid = nl.add_node();
        nl.add(Element::VSource {
            plus: vin,
            minus: 0,
            volts: 1.0,
        });
        nl.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 1e3,
        });
        nl.add(Element::Resistor {
            a: mid,
            b: 0,
            ohms: 3e3,
        });
        let op = Solver::new().solve_dc(&nl, None).expect("linear circuit");
        assert!((op.node_voltages[vin] - 1.0).abs() < 1e-9);
        assert!((op.node_voltages[mid] - 0.75).abs() < 1e-9);
        // Source current = −1.0/4e3 (current flows out of + terminal).
        assert!((op.branch_currents[0] + 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut nl = Netlist::new(0.0);
        let a = nl.add_node();
        nl.add(Element::ISource {
            from: 0,
            into: a,
            amps: 1e-3,
        });
        nl.add(Element::Resistor { a, b: 0, ohms: 2e3 });
        let op = Solver::new().solve_dc(&nl, None).expect("linear circuit");
        // g-min (1e-12 S to ground) shifts the answer by ~4 nV.
        assert!((op.node_voltages[a] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_settles_between_rails() {
        // VDD → R → (drain=gate) NMOS → gnd: a nonlinear but
        // single-solution circuit.
        let mut nl = Netlist::new(VDD_NOMINAL);
        let vdd = nl.add_node();
        let d = nl.add_node();
        nl.add(Element::VSource {
            plus: vdd,
            minus: 0,
            volts: VDD_NOMINAL,
        });
        nl.add(Element::Resistor {
            a: vdd,
            b: d,
            ohms: 50e3,
        });
        nl.add(Element::Mosfet {
            d,
            g: d,
            s: 0,
            device: Mosfet::new(ptm16_hp_nmos(), 60e-9, 16e-9),
        });
        let op = Solver::new().solve_dc(&nl, None).expect("diode circuit");
        let v = op.node_voltages[d];
        assert!(v > 0.1 && v < VDD_NOMINAL, "diode node at {v}");
        // KCL check: resistor current equals transistor current.
        let ir = (VDD_NOMINAL - v) / 50e3;
        let m = Mosfet::new(ptm16_hp_nmos(), 60e-9, 16e-9);
        let it = m.eval(v, v, 0.0, VDD_NOMINAL).id;
        assert!((ir - it).abs() < 1e-9, "KCL: {ir:e} vs {it:e}");
    }

    #[test]
    fn cmos_inverter_transfer_endpoints() {
        // Inverter with input forced low → output high, and vice versa.
        for (vin, want_high) in [(0.0, true), (VDD_NOMINAL, false)] {
            let mut nl = Netlist::new(VDD_NOMINAL);
            let vdd = nl.add_node();
            let input = nl.add_node();
            let out = nl.add_node();
            nl.add(Element::VSource {
                plus: vdd,
                minus: 0,
                volts: VDD_NOMINAL,
            });
            nl.add(Element::VSource {
                plus: input,
                minus: 0,
                volts: vin,
            });
            nl.add(Element::Mosfet {
                d: out,
                g: input,
                s: vdd,
                device: paper_geometry(DeviceRole::Load).build(),
            });
            nl.add(Element::Mosfet {
                d: out,
                g: input,
                s: 0,
                device: paper_geometry(DeviceRole::Driver).build(),
            });
            let op = Solver::new().solve_dc(&nl, None).expect("inverter");
            let v = op.node_voltages[out];
            if want_high {
                assert!(v > VDD_NOMINAL - 0.02, "out = {v} for vin = {vin}");
            } else {
                assert!(v < 0.02, "out = {v} for vin = {vin}");
            }
        }
    }

    #[test]
    fn initial_state_selects_bistable_branch() {
        // Cross-coupled inverter pair (latch): seeding decides the state.
        fn latch(seed_q: f64, seed_qb: f64) -> (f64, f64) {
            let mut nl = Netlist::new(VDD_NOMINAL);
            let vdd = nl.add_node();
            let q = nl.add_node();
            let qb = nl.add_node();
            nl.add(Element::VSource {
                plus: vdd,
                minus: 0,
                volts: VDD_NOMINAL,
            });
            for (out, input) in [(q, qb), (qb, q)] {
                nl.add(Element::Mosfet {
                    d: out,
                    g: input,
                    s: vdd,
                    device: paper_geometry(DeviceRole::Load).build(),
                });
                nl.add(Element::Mosfet {
                    d: out,
                    g: input,
                    s: 0,
                    device: paper_geometry(DeviceRole::Driver).build(),
                });
            }
            let mut init = vec![0.0; nl.node_count()];
            init[vdd] = VDD_NOMINAL;
            init[q] = seed_q;
            init[qb] = seed_qb;
            let op = Solver::new()
                .solve_dc(&nl, Some(&init))
                .expect("latch solves");
            (op.node_voltages[q], op.node_voltages[qb])
        }
        let (q1, qb1) = latch(VDD_NOMINAL, 0.0);
        assert!(
            q1 > VDD_NOMINAL - 0.05 && qb1 < 0.05,
            "state 1: q={q1} qb={qb1}"
        );
        let (q0, qb0) = latch(0.0, VDD_NOMINAL);
        assert!(
            q0 < 0.05 && qb0 > VDD_NOMINAL - 0.05,
            "state 0: q={q0} qb={qb0}"
        );
    }

    #[test]
    fn solver_reports_iterations() {
        let mut nl = Netlist::new(0.0);
        let a = nl.add_node();
        nl.add(Element::VSource {
            plus: a,
            minus: 0,
            volts: 1.0,
        });
        nl.add(Element::Resistor { a, b: 0, ohms: 1e3 });
        let op = Solver::new().solve_dc(&nl, None).expect("linear");
        // Linear circuit: a handful of damped steps (the 0.3 V step clamp
        // spreads the 1 V move over several iterations).
        assert!(op.iterations <= 20, "iterations = {}", op.iterations);
    }
}
