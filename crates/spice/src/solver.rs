//! Damped Newton DC operating-point solver with g-min and source
//! stepping.
//!
//! The classic SPICE `.OP` convergence toolkit, miniaturised:
//!
//! 1. plain damped Newton–Raphson from the supplied (or zero) initial
//!    state;
//! 2. on failure, **g-min stepping** — solve with a large conductance from
//!    every node to ground, then relax it geometrically towards the target
//!    `gmin`, reusing each solution as the next starting point;
//! 3. on failure, **source stepping** — ramp all independent sources from
//!    0 to 100 %.
//!
//! SRAM cells are bistable, so which stable state the solver lands in
//! depends on the initial state; callers seed the state node voltages to
//! select a state (see [`crate::sram`]).

use crate::lu::{DenseMatrix, LuFactors};
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Work counters accumulated by the DC solver.
///
/// Every Newton step and every LU factorisation is counted; the gap
/// between the two is the amortisation win of chord iterations that
/// reuse an earlier sample's factors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Damped Newton steps taken (all stepping phases).
    pub newton_iterations: u64,
    /// Fresh LU factorisations performed.
    pub factorisations: u64,
    /// Newton steps that reused a previous sample's LU factors.
    pub jacobian_reuses: u64,
    /// Batch samples seeded from the previous sample's solution.
    pub warm_starts: u64,
}

impl SolveStats {
    /// Accumulates another counter set into this one.
    pub fn add(&mut self, other: &SolveStats) {
        self.newton_iterations += other.newton_iterations;
        self.factorisations += other.factorisations;
        self.jacobian_reuses += other.jacobian_reuses;
        self.warm_starts += other.warm_starts;
    }
}

/// Reusable scratch state for repeated DC solves: the Jacobian, residual
/// and step buffers plus the LU factor slot are allocated once and
/// recycled, so the Newton loop performs no per-iteration allocation.
#[derive(Debug, Clone)]
pub struct SolverScratch {
    jac: DenseMatrix,
    prev_jac: DenseMatrix,
    residual: Vec<f64>,
    neg: Vec<f64>,
    delta: Vec<f64>,
    lu: LuFactors,
    lu_valid: bool,
    /// Work counters, accumulated across every solve through this
    /// scratch. Callers reset by replacing with `Default::default()`.
    pub stats: SolveStats,
}

impl SolverScratch {
    /// Creates scratch buffers for systems of dimension `n`.
    pub fn new(n: usize) -> Self {
        Self {
            jac: DenseMatrix::zeros(n),
            prev_jac: DenseMatrix::zeros(n),
            residual: vec![0.0; n],
            neg: vec![0.0; n],
            delta: vec![0.0; n],
            lu: LuFactors::placeholder(n),
            lu_valid: false,
            stats: SolveStats::default(),
        }
    }

    /// Buffer dimension.
    pub fn dim(&self) -> usize {
        self.residual.len()
    }
}

/// Chord-iteration policy for batch solves (internal).
#[derive(Debug, Clone, Copy)]
struct ChordPolicy {
    /// Newton steps allowed to reuse the previous LU factors.
    budget: usize,
    /// Maximum relative Jacobian drift for reuse to engage at all.
    drift_threshold: f64,
}

/// Knobs of [`Solver::solve_dc_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOptions {
    /// Seed each sample's Newton iteration from the previous sample's
    /// converged state instead of the caller-supplied initial state.
    pub warm_start: bool,
    /// Reuse the previous sample's LU factors as a chord-Newton
    /// preconditioner while the Jacobian drift stays below
    /// `drift_threshold` and the residual keeps contracting.
    pub reuse_lu: bool,
    /// Maximum relative (max-norm) Jacobian drift between consecutive
    /// samples for LU reuse to engage.
    pub drift_threshold: f64,
    /// Maximum chord steps before a fresh factorisation is forced.
    pub chord_budget: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            warm_start: true,
            reuse_lu: true,
            drift_threshold: 0.05,
            chord_budget: 8,
        }
    }
}

/// Result of a batch solve: per-sample outcomes plus one contiguous
/// structure-of-arrays state block.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-sample operating points, in input order.
    pub ops: Vec<Result<OperatingPoint, SolveError>>,
    /// Converged raw states, sample-major: sample `i` occupies
    /// `states[i*system_size .. (i+1)*system_size]` (zeros on failure).
    pub states: Vec<f64>,
    /// Unknowns per sample.
    pub system_size: usize,
    /// Work counters summed over the whole batch.
    pub stats: SolveStats,
}

/// Convergence and stepping knobs for the DC solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Maximum Newton iterations per solve attempt.
    pub max_iterations: usize,
    /// Residual infinity-norm tolerance \[A\] (and \[V\] for branch rows).
    pub tolerance: f64,
    /// Maximum voltage change per Newton step \[V\] (damping clamp).
    pub max_step: f64,
    /// Final (target) g-min conductance \[S\].
    pub gmin: f64,
    /// Number of g-min relaxation decades on fallback.
    pub gmin_steps: usize,
    /// Number of source-stepping ramp points on fallback.
    pub source_steps: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-12,
            max_step: 0.3,
            gmin: 1e-12,
            gmin_steps: 10,
            source_steps: 10,
        }
    }
}

/// Why a DC solve failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Newton did not reach the tolerance within the iteration budget,
    /// even with g-min and source stepping. Carries the best residual
    /// norm reached.
    NoConvergence {
        /// Best residual infinity norm achieved.
        best_residual: f64,
    },
    /// The Jacobian became singular.
    SingularJacobian,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NoConvergence { best_residual } => {
                write!(
                    f,
                    "newton iteration did not converge (best residual {best_residual:e})"
                )
            }
            SolveError::SingularJacobian => write!(f, "singular jacobian in newton solve"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A converged DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Node voltages indexed by node id (`[0]` is ground, always 0).
    pub node_voltages: Vec<f64>,
    /// Voltage-source branch currents in element insertion order.
    pub branch_currents: Vec<f64>,
    /// Newton iterations spent (across all stepping phases).
    pub iterations: usize,
}

/// The DC solver.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    /// Options used by [`Self::solve_dc`].
    pub options: SolverOptions,
}

impl Solver {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves for the DC operating point.
    ///
    /// `initial_voltages`, if provided, seeds the non-ground node voltages
    /// (length must be `netlist.node_count()`, entry 0 ignored); this is
    /// how callers choose between stable states of bistable circuits.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if no convergence strategy succeeds.
    pub fn solve_dc(
        &self,
        netlist: &Netlist,
        initial_voltages: Option<&[f64]>,
    ) -> Result<OperatingPoint, SolveError> {
        let mut ws = SolverScratch::new(netlist.system_size());
        self.solve_dc_with(netlist, initial_voltages, &mut ws)
    }

    /// Like [`Self::solve_dc`], but reusing caller-owned scratch buffers
    /// so repeated solves allocate nothing per call; work counters
    /// accumulate in `ws.stats`.
    ///
    /// # Panics
    ///
    /// Panics if `ws.dim() != netlist.system_size()` or on an
    /// `initial_voltages` length mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if no convergence strategy succeeds.
    pub fn solve_dc_with(
        &self,
        netlist: &Netlist,
        initial_voltages: Option<&[f64]>,
        ws: &mut SolverScratch,
    ) -> Result<OperatingPoint, SolveError> {
        let n = netlist.system_size();
        let nodes = netlist.node_count();
        let mut seed = vec![0.0; n];
        if let Some(init) = initial_voltages {
            assert_eq!(init.len(), nodes, "initial voltage vector length mismatch");
            seed[..nodes - 1].copy_from_slice(&init[1..]);
        }
        let mut state = vec![0.0; n];
        let iterations = self.ladder(netlist, &seed, &mut state, ws, None)?;
        Ok(self.finish(netlist, &state, iterations))
    }

    /// Solves a family of same-topology netlists (e.g. one cell under
    /// many ΔVth perturbations) with one scratch pool and a shared
    /// stepping schedule. Per-sample state lives in one contiguous
    /// structure-of-arrays block; consecutive samples optionally warm
    /// start from the previous solution and reuse its LU factors as a
    /// chord-Newton preconditioner while the Jacobian drift stays below
    /// `opts.drift_threshold`.
    ///
    /// Failures are per-sample: a diverging sample falls back to the
    /// usual g-min / source-stepping ladder (cold-started, so results do
    /// not depend on its neighbours' convergence).
    ///
    /// # Panics
    ///
    /// Panics if the netlists disagree on `system_size`/`node_count`, or
    /// on an `initial_voltages` length mismatch.
    pub fn solve_dc_batch(
        &self,
        netlists: &[Netlist],
        initial_voltages: Option<&[f64]>,
        opts: &BatchOptions,
    ) -> BatchResult {
        let Some(first) = netlists.first() else {
            return BatchResult {
                ops: Vec::new(),
                states: Vec::new(),
                system_size: 0,
                stats: SolveStats::default(),
            };
        };
        let n = first.system_size();
        let nodes = first.node_count();
        for nl in netlists {
            assert_eq!(nl.system_size(), n, "batch netlists must share topology");
            assert_eq!(nl.node_count(), nodes, "batch netlists must share topology");
        }
        let mut cold_seed = vec![0.0; n];
        if let Some(init) = initial_voltages {
            assert_eq!(init.len(), nodes, "initial voltage vector length mismatch");
            cold_seed[..nodes - 1].copy_from_slice(&init[1..]);
        }

        let mut ws = SolverScratch::new(n);
        let mut states = vec![0.0; n * netlists.len()];
        let mut ops = Vec::with_capacity(netlists.len());
        let mut seed_buf = cold_seed.clone();
        let mut prev_ok = false;
        for (i, nl) in netlists.iter().enumerate() {
            if opts.warm_start && prev_ok {
                seed_buf.copy_from_slice(&states[(i - 1) * n..i * n]);
                ws.stats.warm_starts += 1;
            } else {
                seed_buf.copy_from_slice(&cold_seed);
            }
            let chord = if opts.reuse_lu && prev_ok {
                Some(ChordPolicy {
                    budget: opts.chord_budget,
                    drift_threshold: opts.drift_threshold,
                })
            } else {
                None
            };
            let out = &mut states[i * n..(i + 1) * n];
            match self.ladder(nl, &seed_buf, out, &mut ws, chord) {
                Ok(iters) => {
                    ops.push(Ok(self.finish(nl, out, iters)));
                    // Remember the converged-point Jacobian so the next
                    // sample can gauge drift before reusing the factors.
                    ws.prev_jac.copy_from(&ws.jac);
                    prev_ok = true;
                }
                Err(e) => {
                    ops.push(Err(e));
                    out.fill(0.0);
                    prev_ok = false;
                }
            }
        }
        BatchResult {
            ops,
            states,
            system_size: n,
            stats: ws.stats,
        }
    }

    /// The full convergence ladder (plain Newton → g-min stepping →
    /// source stepping), writing the converged state into `out`.
    fn ladder(
        &self,
        netlist: &Netlist,
        seed: &[f64],
        out: &mut [f64],
        ws: &mut SolverScratch,
        chord: Option<ChordPolicy>,
    ) -> Result<usize, SolveError> {
        let mut iterations = 0usize;

        // Phase 1: plain Newton (the only phase where chord reuse makes
        // sense — the fallback ladders re-shape the system).
        out.copy_from_slice(seed);
        match self.newton(netlist, out, self.options.gmin, 1.0, ws, chord) {
            Ok(iters) => {
                iterations += iters;
                return Ok(iterations);
            }
            Err(SolveError::SingularJacobian) => {}
            Err(SolveError::NoConvergence { .. }) => {}
        }

        // Phase 2: g-min stepping from 1e-2 S down to the target.
        out.copy_from_slice(seed);
        let mut ok = true;
        let start_g = 1e-2_f64;
        let steps = self.options.gmin_steps.max(1);
        let ratio = (self.options.gmin / start_g).powf(1.0 / steps as f64);
        let mut g = start_g;
        for _ in 0..=steps {
            match self.newton(netlist, out, g.max(self.options.gmin), 1.0, ws, None) {
                Ok(iters) => iterations += iters,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            g *= ratio;
        }
        if ok {
            // Final polish at the target g-min.
            if let Ok(iters) = self.newton(netlist, out, self.options.gmin, 1.0, ws, None) {
                iterations += iters;
                return Ok(iterations);
            }
        }

        // Phase 3: source stepping.
        out.fill(0.0);
        let steps = self.options.source_steps.max(1);
        let mut best_residual = f64::INFINITY;
        for k in 1..=steps {
            let scale = k as f64 / steps as f64;
            match self.newton(netlist, out, self.options.gmin, scale, ws, None) {
                Ok(iters) => iterations += iters,
                Err(SolveError::NoConvergence { best_residual: r }) => {
                    best_residual = best_residual.min(r);
                    return Err(SolveError::NoConvergence { best_residual });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(iterations)
    }

    /// Runs damped Newton at fixed `gmin`/`src_scale` in caller scratch;
    /// on success the state holds the solution and the iteration count is
    /// returned. With a `chord` policy the first steps reuse the factors
    /// left in the scratch from the previous sample, provided the
    /// Jacobian drift is below the policy threshold and each chord step
    /// keeps contracting the residual.
    fn newton(
        &self,
        netlist: &Netlist,
        state: &mut [f64],
        gmin: f64,
        src_scale: f64,
        ws: &mut SolverScratch,
        chord: Option<ChordPolicy>,
    ) -> Result<usize, SolveError> {
        let SolverScratch {
            jac,
            prev_jac,
            residual,
            neg,
            delta,
            lu,
            lu_valid,
            stats,
        } = ws;
        let mut budget = 0usize;
        let mut best = f64::INFINITY;
        let mut prev_norm = f64::INFINITY;
        for iter in 0..self.options.max_iterations {
            netlist.assemble(state, gmin, src_scale, jac, residual);
            let norm = residual.iter().fold(0.0_f64, |acc, r| acc.max(r.abs()));
            best = best.min(norm);
            if norm < self.options.tolerance {
                return Ok(iter);
            }
            if iter == 0 {
                if let Some(policy) = chord {
                    if *lu_valid && relative_drift(jac, prev_jac) <= policy.drift_threshold {
                        budget = policy.budget;
                    }
                }
            }
            // Chord step: keep the old factors while they still shrink
            // the residual; refactor the moment progress stalls.
            if iter < budget && *lu_valid && norm < prev_norm {
                stats.jacobian_reuses += 1;
            } else {
                *lu_valid = false;
                lu.refactor(jac).map_err(|_| SolveError::SingularJacobian)?;
                *lu_valid = true;
                stats.factorisations += 1;
            }
            stats.newton_iterations += 1;
            for (nj, r) in neg.iter_mut().zip(residual.iter()) {
                *nj = -r;
            }
            lu.solve_into(neg, delta);
            // Damping: clamp the largest voltage move.
            let max_move = delta.iter().fold(0.0_f64, |acc, d| acc.max(d.abs()));
            let scale = if max_move > self.options.max_step {
                self.options.max_step / max_move
            } else {
                1.0
            };
            for (s, d) in state.iter_mut().zip(delta.iter()) {
                *s += scale * d;
            }
            prev_norm = norm;
        }
        Err(SolveError::NoConvergence {
            best_residual: best,
        })
    }

    fn finish(&self, netlist: &Netlist, state: &[f64], iterations: usize) -> OperatingPoint {
        let nodes = netlist.node_count();
        let mut node_voltages = vec![0.0; nodes];
        node_voltages[1..].copy_from_slice(&state[..nodes - 1]);
        let branch_currents = state[nodes - 1..].to_vec();
        OperatingPoint {
            node_voltages,
            branch_currents,
            iterations,
        }
    }
}

/// Relative max-norm drift between two same-dimension matrices.
fn relative_drift(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    let scale = b
        .data()
        .iter()
        .fold(0.0_f64, |acc, v| acc.max(v.abs()))
        .max(1e-300);
    a.data()
        .iter()
        .zip(b.data())
        .fold(0.0_f64, |acc, (x, y)| acc.max((x - y).abs()))
        / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mosfet;
    use crate::netlist::Element;
    use crate::ptm::{paper_geometry, ptm16_hp_nmos, DeviceRole, VDD_NOMINAL};

    #[test]
    fn resistive_divider() {
        let mut nl = Netlist::new(0.0);
        let vin = nl.add_node();
        let mid = nl.add_node();
        nl.add(Element::VSource {
            plus: vin,
            minus: 0,
            volts: 1.0,
        });
        nl.add(Element::Resistor {
            a: vin,
            b: mid,
            ohms: 1e3,
        });
        nl.add(Element::Resistor {
            a: mid,
            b: 0,
            ohms: 3e3,
        });
        let op = Solver::new().solve_dc(&nl, None).expect("linear circuit");
        assert!((op.node_voltages[vin] - 1.0).abs() < 1e-9);
        assert!((op.node_voltages[mid] - 0.75).abs() < 1e-9);
        // Source current = −1.0/4e3 (current flows out of + terminal).
        assert!((op.branch_currents[0] + 0.25e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut nl = Netlist::new(0.0);
        let a = nl.add_node();
        nl.add(Element::ISource {
            from: 0,
            into: a,
            amps: 1e-3,
        });
        nl.add(Element::Resistor { a, b: 0, ohms: 2e3 });
        let op = Solver::new().solve_dc(&nl, None).expect("linear circuit");
        // g-min (1e-12 S to ground) shifts the answer by ~4 nV.
        assert!((op.node_voltages[a] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn diode_connected_nmos_settles_between_rails() {
        // VDD → R → (drain=gate) NMOS → gnd: a nonlinear but
        // single-solution circuit.
        let mut nl = Netlist::new(VDD_NOMINAL);
        let vdd = nl.add_node();
        let d = nl.add_node();
        nl.add(Element::VSource {
            plus: vdd,
            minus: 0,
            volts: VDD_NOMINAL,
        });
        nl.add(Element::Resistor {
            a: vdd,
            b: d,
            ohms: 50e3,
        });
        nl.add(Element::Mosfet {
            d,
            g: d,
            s: 0,
            device: Mosfet::new(ptm16_hp_nmos(), 60e-9, 16e-9),
        });
        let op = Solver::new().solve_dc(&nl, None).expect("diode circuit");
        let v = op.node_voltages[d];
        assert!(v > 0.1 && v < VDD_NOMINAL, "diode node at {v}");
        // KCL check: resistor current equals transistor current.
        let ir = (VDD_NOMINAL - v) / 50e3;
        let m = Mosfet::new(ptm16_hp_nmos(), 60e-9, 16e-9);
        let it = m.eval(v, v, 0.0, VDD_NOMINAL).id;
        assert!((ir - it).abs() < 1e-9, "KCL: {ir:e} vs {it:e}");
    }

    #[test]
    fn cmos_inverter_transfer_endpoints() {
        // Inverter with input forced low → output high, and vice versa.
        for (vin, want_high) in [(0.0, true), (VDD_NOMINAL, false)] {
            let mut nl = Netlist::new(VDD_NOMINAL);
            let vdd = nl.add_node();
            let input = nl.add_node();
            let out = nl.add_node();
            nl.add(Element::VSource {
                plus: vdd,
                minus: 0,
                volts: VDD_NOMINAL,
            });
            nl.add(Element::VSource {
                plus: input,
                minus: 0,
                volts: vin,
            });
            nl.add(Element::Mosfet {
                d: out,
                g: input,
                s: vdd,
                device: paper_geometry(DeviceRole::Load).build(),
            });
            nl.add(Element::Mosfet {
                d: out,
                g: input,
                s: 0,
                device: paper_geometry(DeviceRole::Driver).build(),
            });
            let op = Solver::new().solve_dc(&nl, None).expect("inverter");
            let v = op.node_voltages[out];
            if want_high {
                assert!(v > VDD_NOMINAL - 0.02, "out = {v} for vin = {vin}");
            } else {
                assert!(v < 0.02, "out = {v} for vin = {vin}");
            }
        }
    }

    #[test]
    fn initial_state_selects_bistable_branch() {
        // Cross-coupled inverter pair (latch): seeding decides the state.
        fn latch(seed_q: f64, seed_qb: f64) -> (f64, f64) {
            let mut nl = Netlist::new(VDD_NOMINAL);
            let vdd = nl.add_node();
            let q = nl.add_node();
            let qb = nl.add_node();
            nl.add(Element::VSource {
                plus: vdd,
                minus: 0,
                volts: VDD_NOMINAL,
            });
            for (out, input) in [(q, qb), (qb, q)] {
                nl.add(Element::Mosfet {
                    d: out,
                    g: input,
                    s: vdd,
                    device: paper_geometry(DeviceRole::Load).build(),
                });
                nl.add(Element::Mosfet {
                    d: out,
                    g: input,
                    s: 0,
                    device: paper_geometry(DeviceRole::Driver).build(),
                });
            }
            let mut init = vec![0.0; nl.node_count()];
            init[vdd] = VDD_NOMINAL;
            init[q] = seed_q;
            init[qb] = seed_qb;
            let op = Solver::new()
                .solve_dc(&nl, Some(&init))
                .expect("latch solves");
            (op.node_voltages[q], op.node_voltages[qb])
        }
        let (q1, qb1) = latch(VDD_NOMINAL, 0.0);
        assert!(
            q1 > VDD_NOMINAL - 0.05 && qb1 < 0.05,
            "state 1: q={q1} qb={qb1}"
        );
        let (q0, qb0) = latch(0.0, VDD_NOMINAL);
        assert!(
            q0 < 0.05 && qb0 > VDD_NOMINAL - 0.05,
            "state 0: q={q0} qb={qb0}"
        );
    }

    /// Cross-coupled inverter latch with a ΔVth skew on the right
    /// driver — the batch-solver test family.
    fn skewed_latch(delta_vth: f64) -> (Netlist, Vec<f64>) {
        let mut nl = Netlist::new(VDD_NOMINAL);
        let vdd = nl.add_node();
        let q = nl.add_node();
        let qb = nl.add_node();
        nl.add(Element::VSource {
            plus: vdd,
            minus: 0,
            volts: VDD_NOMINAL,
        });
        for (out, input, skew) in [(q, qb, 0.0), (qb, q, delta_vth)] {
            nl.add(Element::Mosfet {
                d: out,
                g: input,
                s: vdd,
                device: paper_geometry(DeviceRole::Load).build(),
            });
            nl.add(Element::Mosfet {
                d: out,
                g: input,
                s: 0,
                device: paper_geometry(DeviceRole::Driver)
                    .build()
                    .with_delta_vth(skew),
            });
        }
        let mut init = vec![0.0; nl.node_count()];
        init[vdd] = VDD_NOMINAL;
        init[q] = VDD_NOMINAL;
        (nl, init)
    }

    #[test]
    fn batch_matches_individual_solves() {
        let family: Vec<(Netlist, Vec<f64>)> = (0..12)
            .map(|k| skewed_latch(-0.06 + 0.01 * k as f64))
            .collect();
        let netlists: Vec<Netlist> = family.iter().map(|(nl, _)| nl.clone()).collect();
        let init = family[0].1.clone();
        let solver = Solver::new();
        let batch = solver.solve_dc_batch(&netlists, Some(&init), &BatchOptions::default());
        assert_eq!(batch.ops.len(), netlists.len());
        for (nl, op) in netlists.iter().zip(&batch.ops) {
            let single = solver.solve_dc(nl, Some(&init)).expect("latch solves");
            let warm = op.as_ref().expect("batch sample solves");
            for (a, b) in warm.node_voltages.iter().zip(&single.node_voltages) {
                // Warm starts walk a different iteration path but land on
                // the same operating point to within the residual
                // tolerance.
                assert!((a - b).abs() < 1e-8, "batch {a} vs single {b}");
            }
        }
    }

    #[test]
    fn batch_soa_states_match_operating_points() {
        let netlists: Vec<Netlist> = (0..4).map(|k| skewed_latch(0.01 * k as f64).0).collect();
        let init = skewed_latch(0.0).1;
        let batch = Solver::new().solve_dc_batch(&netlists, Some(&init), &BatchOptions::default());
        let n = batch.system_size;
        assert_eq!(batch.states.len(), n * netlists.len());
        for (i, op) in batch.ops.iter().enumerate() {
            let op = op.as_ref().expect("solves");
            let state = &batch.states[i * n..(i + 1) * n];
            let nodes = op.node_voltages.len();
            assert_eq!(&state[..nodes - 1], &op.node_voltages[1..]);
            assert_eq!(&state[nodes - 1..], op.branch_currents.as_slice());
        }
    }

    /// VDD → R → diode-connected NMOS with a ΔVth shift: nonlinear,
    /// single-solution, and genuinely iterative from a zero start.
    fn skewed_diode(delta_vth: f64) -> Netlist {
        let mut nl = Netlist::new(VDD_NOMINAL);
        let vdd = nl.add_node();
        let d = nl.add_node();
        nl.add(Element::VSource {
            plus: vdd,
            minus: 0,
            volts: VDD_NOMINAL,
        });
        nl.add(Element::Resistor {
            a: vdd,
            b: d,
            ohms: 50e3,
        });
        nl.add(Element::Mosfet {
            d,
            g: d,
            s: 0,
            device: Mosfet::new(ptm16_hp_nmos(), 60e-9, 16e-9).with_delta_vth(delta_vth),
        });
        nl
    }

    #[test]
    fn warm_start_and_lu_reuse_cut_work() {
        let netlists: Vec<Netlist> = (0..24).map(|k| skewed_diode(0.002 * k as f64)).collect();
        let solver = Solver::new();
        let cold = solver.solve_dc_batch(
            &netlists,
            None,
            &BatchOptions {
                warm_start: false,
                reuse_lu: false,
                ..BatchOptions::default()
            },
        );
        let warm = solver.solve_dc_batch(&netlists, None, &BatchOptions::default());
        assert_eq!(warm.stats.warm_starts, netlists.len() as u64 - 1);
        assert!(
            warm.stats.newton_iterations < cold.stats.newton_iterations,
            "warm {} vs cold {} iterations",
            warm.stats.newton_iterations,
            cold.stats.newton_iterations
        );
        assert!(
            warm.stats.factorisations < cold.stats.factorisations,
            "warm {} vs cold {} factorisations",
            warm.stats.factorisations,
            cold.stats.factorisations
        );
        assert!(warm.stats.jacobian_reuses > 0, "chord steps should engage");
        // Both paths agree on the physics.
        for (a, b) in warm.ops.iter().zip(&cold.ops) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            for (x, y) in a.node_voltages.iter().zip(&b.node_voltages) {
                assert!((x - y).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_cold_solves() {
        let (nl, init) = skewed_latch(0.03);
        let solver = Solver::new();
        let mut ws = SolverScratch::new(nl.system_size());
        let a = solver
            .solve_dc_with(&nl, Some(&init), &mut ws)
            .expect("latch");
        let b = solver
            .solve_dc_with(&nl, Some(&init), &mut ws)
            .expect("latch");
        let cold = solver.solve_dc(&nl, Some(&init)).expect("latch");
        assert_eq!(a, cold);
        assert_eq!(b, cold);
        assert!(ws.stats.newton_iterations > 0);
        assert_eq!(ws.stats.factorisations, ws.stats.newton_iterations);
    }

    #[test]
    fn empty_batch_is_empty() {
        let batch = Solver::new().solve_dc_batch(&[], None, &BatchOptions::default());
        assert!(batch.ops.is_empty());
        assert!(batch.states.is_empty());
        assert_eq!(batch.stats, SolveStats::default());
    }

    #[test]
    fn solver_reports_iterations() {
        let mut nl = Netlist::new(0.0);
        let a = nl.add_node();
        nl.add(Element::VSource {
            plus: a,
            minus: 0,
            volts: 1.0,
        });
        nl.add(Element::Resistor { a, b: 0, ohms: 1e3 });
        let op = Solver::new().solve_dc(&nl, None).expect("linear");
        // Linear circuit: a handful of damped steps (the 0.3 V step clamp
        // spreads the 1 V move over several iterations).
        assert!(op.iterations <= 20, "iterations = {}", op.iterations);
    }
}
