//! Typed evaluation errors for the circuit-level testbench.
//!
//! Historically a bad input (wrong dimension, NaN threshold shift) or an
//! ill-conditioned operating point either panicked deep inside the
//! margin extraction or — worse — produced a garbage pass/fail verdict
//! that silently distorted the failure-probability estimate. Every
//! fallible evaluation entry point now has a `try_*` variant returning
//! an [`EvalError`], so callers (the retry/quarantine layer in
//! `ecripse-core`) can distinguish a genuine failing sample from a
//! sample that could not be evaluated at all.

use crate::solver::SolveError;

/// Why a testbench evaluation could not produce a trustworthy verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The input vector had the wrong number of components.
    DimensionMismatch {
        /// Components the bench expects.
        expected: usize,
        /// Components the caller supplied.
        got: usize,
    },
    /// A NaN or infinity appeared in the inputs or in a computed
    /// operating point; the pass/fail verdict would be meaningless.
    NonFinite {
        /// Where the non-finite value was detected.
        context: &'static str,
    },
    /// The transfer curves were too degenerate for margin extraction
    /// (fewer than two usable points after rotation).
    DegenerateCurve {
        /// Usable points on the thinner curve.
        usable: usize,
    },
    /// The underlying DC solve failed outright.
    Solve(SolveError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::DimensionMismatch { expected, got } => {
                write!(f, "sample has {got} components, bench expects {expected}")
            }
            EvalError::NonFinite { context } => {
                write!(f, "non-finite value in {context}")
            }
            EvalError::DegenerateCurve { usable } => write!(
                f,
                "butterfly curves too degenerate for margin extraction ({usable} usable points)"
            ),
            EvalError::Solve(e) => write!(f, "DC solve failed: {e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for EvalError {
    fn from(e: SolveError) -> Self {
        EvalError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = EvalError::DimensionMismatch {
            expected: 6,
            got: 5,
        };
        assert!(e.to_string().contains("5 components"));
        assert!(e.to_string().contains("expects 6"));
        let e = EvalError::NonFinite {
            context: "butterfly curve A",
        };
        assert!(e.to_string().contains("butterfly curve A"));
        let e = EvalError::from(SolveError::SingularJacobian);
        assert!(e.to_string().contains("DC solve failed"));
    }

    #[test]
    fn solve_errors_keep_their_source() {
        use std::error::Error;
        let e = EvalError::from(SolveError::SingularJacobian);
        assert!(e.source().is_some());
        assert!(matches!(e, EvalError::Solve(SolveError::SingularJacobian)));
    }
}
