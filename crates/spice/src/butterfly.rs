//! Butterfly-curve construction.
//!
//! A butterfly plot overlays the two storage-node transfer curves of the
//! cell in the `(V_Q, V_QB)` plane:
//!
//! * curve A — `V_QB = f_R(V_Q)`: the right half-cell driven by `Q`;
//! * curve B — `V_Q = f_L(V_QB)`: the left half-cell driven by `QB`.
//!
//! A bistable (readable) cell shows the classic two-lobed "eye"; the
//! static noise margin is the side of the largest square embedded in the
//! smaller lobe (see [`crate::snm`]).

use crate::error::EvalError;
use crate::sram::{BiasCondition, Sram6T};
use serde::{Deserialize, Serialize};

/// The two transfer curves of a cell sampled on a uniform input grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Butterfly {
    /// Uniform grid of input voltages, ascending from 0 to `V_DD`.
    pub grid: Vec<f64>,
    /// `curve_a[i] = f_R(grid[i])` — right half-cell output.
    pub curve_a: Vec<f64>,
    /// `curve_b[i] = f_L(grid[i])` — left half-cell output.
    pub curve_b: Vec<f64>,
}

impl Butterfly {
    /// Samples both transfer curves of `cell` under `bias` on a uniform
    /// grid with `points` samples.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`, or if the cell parameters produce a
    /// non-finite transfer curve (use [`Self::try_sample`] for a typed
    /// error instead).
    pub fn sample(cell: &Sram6T, bias: &BiasCondition, points: usize) -> Self {
        match Self::try_sample(cell, bias, points) {
            Ok(b) => b,
            Err(e) => panic!("butterfly sampling failed: {e}"),
        }
    }

    /// Like [`Self::sample`], but surfaces a garbage operating point
    /// (NaN supply, non-finite ΔVth propagating into the curves) as a
    /// typed [`EvalError`] instead of handing back poisoned data.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` — a caller bug, not a data problem.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::NonFinite`] when the supply or either
    /// transfer curve contains a NaN or infinity.
    pub fn try_sample(
        cell: &Sram6T,
        bias: &BiasCondition,
        points: usize,
    ) -> Result<Self, EvalError> {
        assert!(points >= 2, "need at least two grid points, got {points}");
        let vdd = cell.vdd();
        if !vdd.is_finite() {
            return Err(EvalError::NonFinite {
                context: "supply voltage",
            });
        }
        let mut grid = Vec::with_capacity(points);
        let mut curve_a = Vec::with_capacity(points);
        let mut curve_b = Vec::with_capacity(points);
        // The VTCs are monotone decreasing, so each solve's result bounds
        // the next one from above — warm-start the bisection bracket.
        let mut hint_a = vdd + 0.2;
        let mut hint_b = vdd + 0.2;
        for i in 0..points {
            let vin = vdd * i as f64 / (points - 1) as f64;
            grid.push(vin);
            hint_a = cell.vtc_right_warm(bias, vin, hint_a);
            hint_b = cell.vtc_left_warm(bias, vin, hint_b);
            if !hint_a.is_finite() {
                return Err(EvalError::NonFinite {
                    context: "butterfly curve A",
                });
            }
            if !hint_b.is_finite() {
                return Err(EvalError::NonFinite {
                    context: "butterfly curve B",
                });
            }
            curve_a.push(hint_a);
            curve_b.push(hint_b);
        }
        Ok(Self {
            grid,
            curve_a,
            curve_b,
        })
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// Whether the butterfly has no samples (never true after
    /// [`Self::sample`]).
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Curve A as `(V_Q, V_QB)` points: `(grid[i], curve_a[i])`.
    pub fn points_a(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.grid.iter().copied().zip(self.curve_a.iter().copied())
    }

    /// Curve B as `(V_Q, V_QB)` points: `(curve_b[i], grid[i])` — note the
    /// axis swap, since curve B maps `V_QB` to `V_Q`.
    pub fn points_b(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.curve_b.iter().copied().zip(self.grid.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_has_requested_resolution() {
        let cell = Sram6T::paper_cell();
        let b = Butterfly::sample(&cell, &cell.read_bias(), 41);
        assert_eq!(b.len(), 41);
        assert_eq!(b.grid[0], 0.0);
        assert!((b.grid[40] - cell.vdd()).abs() < 1e-12);
    }

    #[test]
    fn nominal_cell_butterfly_is_symmetric() {
        // With identical halves, curve B is curve A reflected about y = x:
        // f_L == f_R, so points_b are points_a with coordinates swapped.
        let cell = Sram6T::paper_cell();
        let b = Butterfly::sample(&cell, &cell.read_bias(), 21);
        for (a, bb) in b.curve_a.iter().zip(&b.curve_b) {
            assert!((a - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn curves_stay_within_extended_rails() {
        let cell = Sram6T::paper_cell();
        for bias in [cell.read_bias(), cell.hold_bias()] {
            let b = Butterfly::sample(&cell, &bias, 31);
            for v in b.curve_a.iter().chain(&b.curve_b) {
                assert!(*v > -0.01 && *v < cell.vdd() + 0.01, "out of rails: {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two grid points")]
    fn rejects_degenerate_grid() {
        let cell = Sram6T::paper_cell();
        let _ = Butterfly::sample(&cell, &cell.read_bias(), 1);
    }

    #[test]
    fn try_sample_matches_sample_on_healthy_cells() {
        let cell = Sram6T::paper_cell();
        let a = Butterfly::sample(&cell, &cell.read_bias(), 31);
        let b = Butterfly::try_sample(&cell, &cell.read_bias(), 31).expect("healthy cell");
        assert_eq!(a, b);
    }
}
