//! Butterfly-curve construction.
//!
//! A butterfly plot overlays the two storage-node transfer curves of the
//! cell in the `(V_Q, V_QB)` plane:
//!
//! * curve A — `V_QB = f_R(V_Q)`: the right half-cell driven by `Q`;
//! * curve B — `V_Q = f_L(V_QB)`: the left half-cell driven by `QB`.
//!
//! A bistable (readable) cell shows the classic two-lobed "eye"; the
//! static noise margin is the side of the largest square embedded in the
//! smaller lobe (see [`crate::snm`]).

use crate::error::EvalError;
use crate::sram::{BiasCondition, Sram6T, VtcSolve};
use serde::{Deserialize, Serialize};

/// Work spent sampling one butterfly, for effort accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleEffort {
    /// Transfer-curve points solved (two per grid point).
    pub solves: u64,
    /// Total bisection steps across all solves — the 1-D analogue of
    /// Newton iterations.
    pub bisect_iters: u64,
    /// Solves that converged inside a seed-derived bracket.
    pub seeded_points: u64,
    /// Solves where the seed bracket missed and the full-width sweep ran
    /// instead.
    pub fallback_points: u64,
}

impl SampleEffort {
    /// Accumulates another effort record into this one.
    pub fn add(&mut self, other: &SampleEffort) {
        self.solves += other.solves;
        self.bisect_iters += other.bisect_iters;
        self.seeded_points += other.seeded_points;
        self.fallback_points += other.fallback_points;
    }
}

/// The two transfer curves of a cell sampled on a uniform input grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Butterfly {
    /// Uniform grid of input voltages, ascending from 0 to `V_DD`.
    pub grid: Vec<f64>,
    /// `curve_a[i] = f_R(grid[i])` — right half-cell output.
    pub curve_a: Vec<f64>,
    /// `curve_b[i] = f_L(grid[i])` — left half-cell output.
    pub curve_b: Vec<f64>,
}

impl Butterfly {
    /// Samples both transfer curves of `cell` under `bias` on a uniform
    /// grid with `points` samples.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`, or if the cell parameters produce a
    /// non-finite transfer curve (use [`Self::try_sample`] for a typed
    /// error instead).
    pub fn sample(cell: &Sram6T, bias: &BiasCondition, points: usize) -> Self {
        match Self::try_sample(cell, bias, points) {
            Ok(b) => b,
            Err(e) => panic!("butterfly sampling failed: {e}"),
        }
    }

    /// Like [`Self::sample`], but surfaces a garbage operating point
    /// (NaN supply, non-finite ΔVth propagating into the curves) as a
    /// typed [`EvalError`] instead of handing back poisoned data.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` — a caller bug, not a data problem.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::NonFinite`] when the supply or either
    /// transfer curve contains a NaN or infinity.
    pub fn try_sample(
        cell: &Sram6T,
        bias: &BiasCondition,
        points: usize,
    ) -> Result<Self, EvalError> {
        Self::try_sample_seeded(cell, bias, points, 1e-7, None, 0.0).map(|(b, _)| b)
    }

    /// The full-control sampler behind [`Self::try_sample`]: an explicit
    /// bisection `resolution`, an optional `seed` butterfly from a nearby
    /// operating point, and effort counters.
    ///
    /// When a seed is given, each solve first tries the bracket
    /// `seed(vin) ± band`; the bracket is validated and, if it does not
    /// contain the root (the neighbour was too far away), the solve falls
    /// back to the ordinary monotone-hint sweep, so the result is correct
    /// for any seed. With `resolution = 1e-7` and no seed this is
    /// bit-identical to [`Self::try_sample`].
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` — a caller bug, not a data problem.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::NonFinite`] when the supply or either
    /// transfer curve contains a NaN or infinity.
    pub fn try_sample_seeded(
        cell: &Sram6T,
        bias: &BiasCondition,
        points: usize,
        resolution: f64,
        seed: Option<&Butterfly>,
        band: f64,
    ) -> Result<(Self, SampleEffort), EvalError> {
        assert!(points >= 2, "need at least two grid points, got {points}");
        let vdd = cell.vdd();
        if !vdd.is_finite() {
            return Err(EvalError::NonFinite {
                context: "supply voltage",
            });
        }
        let seed = seed.filter(|s| s.len() >= 2 && band > 0.0);
        let mut effort = SampleEffort::default();
        let mut grid = Vec::with_capacity(points);
        let mut curve_a = Vec::with_capacity(points);
        let mut curve_b = Vec::with_capacity(points);
        // The VTCs are monotone decreasing, so each solve's result bounds
        // the next one from above — warm-start the bisection bracket.
        let mut hint_a = vdd + 0.2;
        let mut hint_b = vdd + 0.2;
        for i in 0..points {
            let vin = vdd * i as f64 / (points - 1) as f64;
            grid.push(vin);
            let solve_a = Self::seeded_solve(
                cell,
                bias,
                vin,
                resolution,
                seed,
                band,
                hint_a,
                true,
                &mut effort,
            );
            let solve_b = Self::seeded_solve(
                cell,
                bias,
                vin,
                resolution,
                seed,
                band,
                hint_b,
                false,
                &mut effort,
            );
            hint_a = solve_a.v;
            hint_b = solve_b.v;
            if !hint_a.is_finite() {
                return Err(EvalError::NonFinite {
                    context: "butterfly curve A",
                });
            }
            if !hint_b.is_finite() {
                return Err(EvalError::NonFinite {
                    context: "butterfly curve B",
                });
            }
            curve_a.push(hint_a);
            curve_b.push(hint_b);
        }
        Ok((
            Self {
                grid,
                curve_a,
                curve_b,
            },
            effort,
        ))
    }

    /// One curve-point solve: seed-derived bracket first, monotone-hint
    /// sweep as the fallback.
    #[allow(clippy::too_many_arguments)]
    fn seeded_solve(
        cell: &Sram6T,
        bias: &BiasCondition,
        vin: f64,
        resolution: f64,
        seed: Option<&Butterfly>,
        band: f64,
        hint: f64,
        right: bool,
        effort: &mut SampleEffort,
    ) -> VtcSolve {
        effort.solves += 1;
        if let Some(s) = seed {
            let predicted = if right {
                s.interp_a(vin)
            } else {
                s.interp_b(vin)
            };
            if predicted.is_finite() {
                let solved = if right {
                    cell.vtc_right_bracketed(
                        bias,
                        vin,
                        predicted - band,
                        predicted + band,
                        resolution,
                    )
                } else {
                    cell.vtc_left_bracketed(
                        bias,
                        vin,
                        predicted - band,
                        predicted + band,
                        resolution,
                    )
                };
                if let Some(v) = solved {
                    effort.seeded_points += 1;
                    effort.bisect_iters += v.iters as u64;
                    return v;
                }
            }
            effort.fallback_points += 1;
        }
        let v = if right {
            cell.vtc_right_effort(bias, vin, Some(hint), resolution)
        } else {
            cell.vtc_left_effort(bias, vin, Some(hint), resolution)
        };
        effort.bisect_iters += v.iters as u64;
        v
    }

    /// Linear interpolation of curve A (`f_R`) at an arbitrary input,
    /// clamped to the sampled range.
    pub fn interp_a(&self, vin: f64) -> f64 {
        Self::interp(&self.grid, &self.curve_a, vin)
    }

    /// Linear interpolation of curve B (`f_L`) at an arbitrary input,
    /// clamped to the sampled range.
    pub fn interp_b(&self, vin: f64) -> f64 {
        Self::interp(&self.grid, &self.curve_b, vin)
    }

    fn interp(grid: &[f64], curve: &[f64], vin: f64) -> f64 {
        match grid.binary_search_by(|g| g.total_cmp(&vin)) {
            Ok(i) => curve[i],
            Err(0) => curve[0],
            Err(i) if i >= grid.len() => curve[grid.len() - 1],
            Err(i) => {
                let t = (vin - grid[i - 1]) / (grid[i] - grid[i - 1]);
                curve[i - 1] + t * (curve[i] - curve[i - 1])
            }
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// Whether the butterfly has no samples (never true after
    /// [`Self::sample`]).
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Curve A as `(V_Q, V_QB)` points: `(grid[i], curve_a[i])`.
    pub fn points_a(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.grid.iter().copied().zip(self.curve_a.iter().copied())
    }

    /// Curve B as `(V_Q, V_QB)` points: `(curve_b[i], grid[i])` — note the
    /// axis swap, since curve B maps `V_QB` to `V_Q`.
    pub fn points_b(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.curve_b.iter().copied().zip(self.grid.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_has_requested_resolution() {
        let cell = Sram6T::paper_cell();
        let b = Butterfly::sample(&cell, &cell.read_bias(), 41);
        assert_eq!(b.len(), 41);
        assert_eq!(b.grid[0], 0.0);
        assert!((b.grid[40] - cell.vdd()).abs() < 1e-12);
    }

    #[test]
    fn nominal_cell_butterfly_is_symmetric() {
        // With identical halves, curve B is curve A reflected about y = x:
        // f_L == f_R, so points_b are points_a with coordinates swapped.
        let cell = Sram6T::paper_cell();
        let b = Butterfly::sample(&cell, &cell.read_bias(), 21);
        for (a, bb) in b.curve_a.iter().zip(&b.curve_b) {
            assert!((a - bb).abs() < 1e-9);
        }
    }

    #[test]
    fn curves_stay_within_extended_rails() {
        let cell = Sram6T::paper_cell();
        for bias in [cell.read_bias(), cell.hold_bias()] {
            let b = Butterfly::sample(&cell, &bias, 31);
            for v in b.curve_a.iter().chain(&b.curve_b) {
                assert!(*v > -0.01 && *v < cell.vdd() + 0.01, "out of rails: {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two grid points")]
    fn rejects_degenerate_grid() {
        let cell = Sram6T::paper_cell();
        let _ = Butterfly::sample(&cell, &cell.read_bias(), 1);
    }

    #[test]
    fn try_sample_matches_sample_on_healthy_cells() {
        let cell = Sram6T::paper_cell();
        let a = Butterfly::sample(&cell, &cell.read_bias(), 31);
        let b = Butterfly::try_sample(&cell, &cell.read_bias(), 31).expect("healthy cell");
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_sampling_cuts_bisection_work() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        let (seed, cold) =
            Butterfly::try_sample_seeded(&cell, &bias, 31, 1e-7, None, 0.0).expect("cold");
        // A tiny perturbation of the same cell: the seed curves are
        // excellent brackets.
        let near = cell.with_delta_vth(&[0.002, -0.001, 0.0, 0.001, 0.0, -0.002]);
        let (_, unseeded) =
            Butterfly::try_sample_seeded(&near, &bias, 31, 1e-7, None, 0.0).expect("unseeded");
        let (warm_b, warm) =
            Butterfly::try_sample_seeded(&near, &bias, 31, 1e-7, Some(&seed), 0.05)
                .expect("seeded");
        assert!(warm.seeded_points > 0, "seed brackets should engage");
        assert!(
            warm.bisect_iters < unseeded.bisect_iters,
            "seeded {} vs unseeded {} bisection steps",
            warm.bisect_iters,
            unseeded.bisect_iters
        );
        assert_eq!(cold.seeded_points, 0);
        // And the curves agree with the unseeded solve to the bisection
        // resolution.
        let (plain, _) =
            Butterfly::try_sample_seeded(&near, &bias, 31, 1e-7, None, 0.0).expect("plain");
        for (a, b) in warm_b.curve_a.iter().zip(&plain.curve_a) {
            assert!((a - b).abs() < 2e-7, "seeded {a} vs plain {b}");
        }
    }

    #[test]
    fn far_seed_falls_back_to_full_sweep() {
        let cell = Sram6T::paper_cell();
        let bias = cell.read_bias();
        // A nonsense seed: constant mid-rail curves bracket almost no
        // roots, so nearly every point must fall back — and the result
        // must still be correct.
        let bogus = Butterfly {
            grid: vec![0.0, cell.vdd()],
            curve_a: vec![0.35, 0.35],
            curve_b: vec![0.35, 0.35],
        };
        let (b, eff) = Butterfly::try_sample_seeded(&cell, &bias, 21, 1e-7, Some(&bogus), 0.01)
            .expect("fallback path");
        assert!(eff.fallback_points > 0);
        let plain = Butterfly::try_sample(&cell, &bias, 21).expect("plain");
        for (a, p) in b.curve_a.iter().zip(&plain.curve_a) {
            assert!((a - p).abs() < 2e-7);
        }
    }

    #[test]
    fn interpolation_clamps_and_matches_grid_points() {
        let cell = Sram6T::paper_cell();
        let b = Butterfly::sample(&cell, &cell.read_bias(), 21);
        for (i, &g) in b.grid.iter().enumerate() {
            assert_eq!(b.interp_a(g), b.curve_a[i]);
            assert_eq!(b.interp_b(g), b.curve_b[i]);
        }
        assert_eq!(b.interp_a(-1.0), b.curve_a[0]);
        assert_eq!(b.interp_a(b.grid[20] + 1.0), b.curve_a[20]);
        // Midpoints interpolate between neighbours.
        let mid = 0.5 * (b.grid[3] + b.grid[4]);
        let want = 0.5 * (b.curve_a[3] + b.curve_a[4]);
        assert!((b.interp_a(mid) - want).abs() < 1e-12);
    }
}
