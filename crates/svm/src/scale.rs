//! Feature standardisation.
//!
//! Degree-4 monomials of inputs around ±4σ span six orders of magnitude;
//! subgradient descent on raw features either diverges or crawls. The
//! scaler is fitted once on the first labelled batch and then *frozen*,
//! so that incrementally added samples see the same feature geometry and
//! previously learned weights stay meaningful.

use serde::{Deserialize, Serialize};

/// Per-feature affine standardiser `f ↦ (f − mean)/std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    inv_std: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to a batch of feature vectors.
    ///
    /// Features with (near-)zero variance — e.g. the constant monomial —
    /// keep their offset but get unit scale.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "inconsistent feature dimensions");
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for r in rows {
            for ((v, m), x) in var.iter_mut().zip(&mean).zip(r) {
                let d = x - m;
                *v += d * d;
            }
        }
        let inv_std = var
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    1.0 / s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean, inv_std }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardises one feature vector in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the fitted one.
    pub fn transform_in_place(&self, features: &mut [f64]) {
        assert_eq!(features.len(), self.dim(), "feature dimension mismatch");
        for ((f, m), s) in features.iter_mut().zip(&self.mean).zip(&self.inv_std) {
            *f = (*f - m) * s;
        }
    }

    /// Standardises one feature vector.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        let mut out = features.to_vec();
        self.transform_in_place(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardised_batch_has_zero_mean_unit_var() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 1000.0 + 10.0 * (i % 7) as f64])
            .collect();
        let sc = StandardScaler::fit(&rows);
        let t: Vec<Vec<f64>> = rows.iter().map(|r| sc.transform(r)).collect();
        for d in 0..2 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.iter().map(|r| r[d] * r[d]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "dim {d} var {var}");
        }
    }

    #[test]
    fn constant_feature_gets_unit_scale() {
        let rows = vec![vec![1.0, 5.0], vec![1.0, 7.0], vec![1.0, 9.0]];
        let sc = StandardScaler::fit(&rows);
        let t = sc.transform(&[1.0, 7.0]);
        assert_eq!(t[0], 0.0); // offset removed, scale 1
        assert!(t[1].abs() < 1e-9);
    }

    #[test]
    fn transform_is_affine() {
        let rows = vec![vec![0.0], vec![2.0], vec![4.0]];
        let sc = StandardScaler::fit(&rows);
        let a = sc.transform(&[1.0])[0];
        let b = sc.transform(&[3.0])[0];
        let mid = sc.transform(&[2.0])[0];
        assert!((0.5 * (a + b) - mid).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot fit a scaler on no data")]
    fn rejects_empty_fit() {
        let _ = StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn rejects_wrong_dimension() {
        let sc = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = sc.transform(&[1.0]);
    }
}
