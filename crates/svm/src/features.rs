//! Explicit polynomial feature expansion.
//!
//! For a `d`-dimensional input and total degree `p`, the feature vector
//! contains every monomial `x₁^{e₁}·…·x_d^{e_d}` with `Σeᵢ ≤ p`,
//! including the constant `1` — exactly the transform the paper describes
//! ("if the input vector is `[x₁, x₂]` and `D_poly` is two then the
//! feature vector is `[1, x₁, x₂, x₁x₂, x₁², x₂²]`"). A linear separator
//! over these features is a degree-`p` polynomial decision surface in the
//! original space.

use serde::{Deserialize, Serialize};

/// A fixed polynomial feature map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolynomialFeatures {
    dim: usize,
    degree: u32,
    /// Exponent vectors, one per output feature, in graded
    /// lexicographic order starting with the constant term.
    exponents: Vec<Vec<u32>>,
    /// Each non-constant monomial as `(variable, parent)`: feature `f`
    /// equals `x[variable] * feature[parent]`, where the parent (one
    /// lower total degree) always precedes `f` in the graded order. One
    /// multiply per feature, instead of a `dim`-wide product over a
    /// powers table — `transform` runs once per classified sample.
    chain: Vec<(u32, u32)>,
}

impl PolynomialFeatures {
    /// Builds the feature map for `dim` inputs and total degree `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, degree: u32) -> Self {
        assert!(dim > 0, "zero-dimensional feature map");
        let mut exponents = Vec::new();
        let mut current = vec![0u32; dim];
        // Enumerate by total degree so features are grouped constant,
        // linear, quadratic, …
        for total in 0..=degree {
            enumerate_compositions(&mut current, 0, total, &mut exponents);
        }
        // Link every non-constant monomial to a parent one degree lower:
        // divide by the first variable with a positive exponent.
        let index: std::collections::HashMap<&[u32], u32> = exponents
            .iter()
            .enumerate()
            .map(|(i, e)| (e.as_slice(), i as u32))
            .collect();
        let chain = exponents
            .iter()
            .skip(1)
            .map(|e| {
                let var = e.iter().position(|&p| p > 0).expect("non-constant");
                let mut parent = e.clone();
                parent[var] -= 1;
                (var as u32, index[parent.as_slice()])
            })
            .collect();
        Self {
            dim,
            degree,
            exponents,
            chain,
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total polynomial degree.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Number of output features, `C(dim + degree, degree)`.
    pub fn n_features(&self) -> usize {
        self.exponents.len()
    }

    /// The exponent vector of each feature.
    pub fn exponents(&self) -> &[Vec<u32>] {
        &self.exponents
    }

    /// Evaluates the feature vector at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let mut out = Vec::with_capacity(self.exponents.len());
        out.push(1.0);
        for &(var, parent) in &self.chain {
            let v = x[var as usize] * out[parent as usize];
            out.push(v);
        }
        out
    }
}

/// Recursively enumerates all exponent vectors with the given remaining
/// total degree (compositions of `total` into `dim` parts).
fn enumerate_compositions(
    current: &mut Vec<u32>,
    pos: usize,
    remaining: u32,
    out: &mut Vec<Vec<u32>>,
) {
    if pos == current.len() - 1 {
        current[pos] = remaining;
        out.push(current.clone());
        current[pos] = 0;
        return;
    }
    for e in (0..=remaining).rev() {
        current[pos] = e;
        enumerate_compositions(current, pos + 1, remaining - e, out);
        current[pos] = 0;
    }
}

/// Binomial coefficient used by tests to check feature counts.
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_dimension_two_degree_two() {
        // [1, x1, x2, x1x2, x1², x2²] — six features.
        let f = PolynomialFeatures::new(2, 2);
        assert_eq!(f.n_features(), 6);
        let got = f.transform(&[2.0, 3.0]);
        let mut sorted = got.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        // 1, x1=2, x2=3, x1x2=6, x1²=4, x2²=9 in some order.
        assert_eq!(sorted, vec![1.0, 2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn feature_count_is_binomial() {
        for (d, p) in [(1usize, 3u32), (2, 4), (6, 4), (3, 5)] {
            let f = PolynomialFeatures::new(d, p);
            assert_eq!(
                f.n_features() as u64,
                binomial((d as u64) + (p as u64), p as u64),
                "count mismatch for d={d} p={p}"
            );
        }
    }

    #[test]
    fn ecripse_configuration_has_210_features() {
        // 6 variability dimensions, degree 4 → C(10,4) = 210.
        assert_eq!(PolynomialFeatures::new(6, 4).n_features(), 210);
    }

    #[test]
    fn constant_feature_comes_first() {
        let f = PolynomialFeatures::new(3, 2);
        assert_eq!(f.transform(&[5.0, -2.0, 0.5])[0], 1.0);
        assert!(f.exponents()[0].iter().all(|&e| e == 0));
    }

    #[test]
    fn degree_zero_is_just_the_constant() {
        let f = PolynomialFeatures::new(4, 0);
        assert_eq!(f.n_features(), 1);
        assert_eq!(f.transform(&[1.0, 2.0, 3.0, 4.0]), vec![1.0]);
    }

    #[test]
    fn exponents_are_unique() {
        let f = PolynomialFeatures::new(4, 3);
        let mut seen = std::collections::HashSet::new();
        for e in f.exponents() {
            assert!(seen.insert(e.clone()), "duplicate exponent vector {e:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_transform_matches_naive_monomials(
            x in proptest::collection::vec(-2.0f64..2.0, 3),
        ) {
            let f = PolynomialFeatures::new(3, 3);
            let got = f.transform(&x);
            for (feat, e) in got.iter().zip(f.exponents()) {
                let naive: f64 = x
                    .iter()
                    .zip(e)
                    .map(|(xi, &p)| xi.powi(p as i32))
                    .product();
                prop_assert!((feat - naive).abs() < 1e-9 * naive.abs().max(1.0));
            }
        }

        #[test]
        fn prop_transform_at_origin_is_indicator_of_constant(
            d in 1usize..5,
            p in 0u32..4,
        ) {
            let f = PolynomialFeatures::new(d, p);
            let feats = f.transform(&vec![0.0; d]);
            prop_assert_eq!(feats[0], 1.0);
            for v in &feats[1..] {
                prop_assert_eq!(*v, 0.0);
            }
        }
    }
}
