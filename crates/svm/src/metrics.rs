//! Classification metrics.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix (positive class = failure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Failures predicted as failures.
    pub true_positive: u64,
    /// Passes predicted as passes.
    pub true_negative: u64,
    /// Passes predicted as failures.
    pub false_positive: u64,
    /// Failures predicted as passes.
    pub false_negative: u64,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.true_positive += 1,
            (false, false) => self.true_negative += 1,
            (false, true) => self.false_positive += 1,
            (true, false) => self.false_negative += 1,
        }
    }

    /// Builds a matrix from parallel label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(actual: &[bool], predicted: &[bool]) -> Self {
        assert_eq!(actual.len(), predicted.len(), "label length mismatch");
        let mut m = Self::new();
        for (a, p) in actual.iter().zip(predicted) {
            m.record(*a, *p);
        }
        m
    }

    /// Total number of recorded predictions.
    pub fn total(&self) -> u64 {
        self.true_positive + self.true_negative + self.false_positive + self.false_negative
    }

    /// Fraction of correct predictions (NaN when empty).
    pub fn accuracy(&self) -> f64 {
        (self.true_positive + self.true_negative) as f64 / self.total() as f64
    }

    /// Of predicted failures, the fraction that actually fail (NaN when
    /// nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        self.true_positive as f64 / (self.true_positive + self.false_positive) as f64
    }

    /// Of actual failures, the fraction that was caught (NaN when there
    /// are no actual positives).
    pub fn recall(&self) -> f64 {
        self.true_positive as f64 / (self.true_positive + self.false_negative) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        2.0 * p * r / (p + r)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positive += other.true_positive;
        self.true_negative += other.true_negative;
        self.false_positive += other.false_positive;
        self.false_negative += other.false_negative;
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tp={} tn={} fp={} fn={} (acc {:.3})",
            self.true_positive,
            self.true_negative,
            self.false_positive,
            self.false_negative,
            self.accuracy()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let actual = [true, false, true, false];
        let m = ConfusionMatrix::from_labels(&actual, &actual);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn known_counts() {
        let actual = [true, true, false, false, true];
        let predicted = [true, false, true, false, true];
        let m = ConfusionMatrix::from_labels(&actual, &predicted);
        assert_eq!(m.true_positive, 2);
        assert_eq!(m.false_negative, 1);
        assert_eq!(m.false_positive, 1);
        assert_eq!(m.true_negative, 1);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::from_labels(&[true], &[true]);
        let b = ConfusionMatrix::from_labels(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.false_positive, 1);
    }

    #[test]
    fn display_is_informative() {
        let m = ConfusionMatrix::from_labels(&[true, false], &[true, false]);
        let s = format!("{m}");
        assert!(s.contains("tp=1"));
        assert!(s.contains("acc 1.000"));
    }

    #[test]
    #[should_panic(expected = "label length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = ConfusionMatrix::from_labels(&[true], &[]);
    }
}
