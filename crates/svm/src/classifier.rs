//! The assembled classification pipeline:
//! polynomial features → frozen standardiser → linear SVM, with
//! incremental retraining and a margin-based uncertainty band.
//!
//! Usage in the ECRIPSE flow:
//!
//! * **Stage 1** (particle-filter iterations): train on `K` labelled
//!   samples, classify the remaining `N·M − K` freely — a rough decision
//!   surface is enough, because it only shapes the alternative
//!   distribution, not the estimate (paper Sec. III-B, step 3).
//! * **Stage 2** (importance sampling): samples whose geometric margin
//!   falls inside the uncertainty band are *not* trusted; the caller
//!   simulates them and feeds the labels back through
//!   [`SvmClassifier::add_labelled`], which continues the Pegasos
//!   schedule (paper Sec. III-B, step 5).

use crate::features::PolynomialFeatures;
use crate::linear::{LinearSvm, SvmOptions};
use crate::scale::StandardScaler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the classifier pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Polynomial degree of the feature transform (the paper uses 4).
    pub degree: u32,
    /// Dual-coordinate-descent hyper-parameters.
    pub svm: SvmOptions,
    /// Geometric-margin half-width of the uncertainty band; samples with
    /// `|margin| < uncertain_band` should be verified by simulation.
    pub uncertain_band: f64,
    /// Maximum number of labelled samples retained for (re)training;
    /// once the bank is full, further labels are ignored. Bounds the
    /// warm-started retraining cost of long importance-sampling runs.
    pub max_bank: usize,
    /// RNG seed for the (stochastic) trainer, so classification flows are
    /// reproducible.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            degree: 4,
            svm: SvmOptions::default(),
            uncertain_band: 0.15,
            max_bank: 20_000,
            seed: 0x5eed_c1a5,
        }
    }
}

/// Error returned when a classifier cannot be trained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// All training labels belong to one class; no separating surface is
    /// defined.
    SingleClass,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyTrainingSet => write!(f, "empty training set"),
            TrainError::SingleClass => {
                write!(
                    f,
                    "training set contains a single class; cannot fit a separator"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// The trained pipeline.
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    config: SvmConfig,
    features: PolynomialFeatures,
    scaler: StandardScaler,
    svm: LinearSvm,
    rng: StdRng,
    /// All labelled data seen so far (features pre-transformed and
    /// scaled); dual coordinate descent warm-starts over this bank when
    /// new labels arrive, so old knowledge is never lost.
    bank_x: Vec<Vec<f64>>,
    bank_y: Vec<bool>,
}

impl SvmClassifier {
    /// Fits the pipeline on raw variability-space samples (`true` =
    /// failure).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the set is empty or single-class.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent dimensions.
    pub fn fit(config: &SvmConfig, xs: &[Vec<f64>], ys: &[bool]) -> Result<Self, TrainError> {
        if xs.is_empty() {
            return Err(TrainError::EmptyTrainingSet);
        }
        assert_eq!(xs.len(), ys.len(), "label count mismatch");
        if ys.iter().all(|y| *y) || ys.iter().all(|y| !*y) {
            return Err(TrainError::SingleClass);
        }
        let features = PolynomialFeatures::new(xs[0].len(), config.degree);
        let raw: Vec<Vec<f64>> = xs.iter().map(|x| features.transform(x)).collect();
        let scaler = StandardScaler::fit(&raw);
        let bank_x: Vec<Vec<f64>> = raw.iter().map(|r| scaler.transform(r)).collect();
        let bank_y = ys.to_vec();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let svm = LinearSvm::train(&mut rng, &bank_x, &bank_y, &config.svm);
        Ok(Self {
            config: *config,
            features,
            scaler,
            svm,
            rng,
            bank_x,
            bank_y,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SvmConfig {
        &self.config
    }

    /// Number of labelled samples the classifier has absorbed.
    pub fn n_training_samples(&self) -> usize {
        self.bank_x.len()
    }

    /// Transforms a raw sample into the scaled feature space.
    fn featurise(&self, x: &[f64]) -> Vec<f64> {
        let mut f = self.features.transform(x);
        self.scaler.transform_in_place(&mut f);
        f
    }

    /// Predicted class for a raw sample (`true` = failure).
    pub fn predict(&self, x: &[f64]) -> bool {
        self.svm.predict(&self.featurise(x))
    }

    /// Geometric margin of a raw sample (signed distance to the decision
    /// surface in scaled feature space).
    pub fn margin(&self, x: &[f64]) -> f64 {
        self.svm.geometric_margin(&self.featurise(x))
    }

    /// Predicted class and geometric margin in a single featurisation
    /// pass — callers that need both (e.g. the oracle's margin
    /// telemetry) avoid computing the polynomial features twice.
    pub fn predict_with_margin(&self, x: &[f64]) -> (bool, f64) {
        let f = self.featurise(x);
        (self.svm.predict(&f), self.svm.geometric_margin(&f))
    }

    /// Whether a sample falls inside the uncertainty band and should be
    /// verified with a transistor-level simulation.
    pub fn is_uncertain(&self, x: &[f64]) -> bool {
        self.margin(x).abs() < self.config.uncertain_band
    }

    /// Whether the label bank has reached its configured cap (further
    /// labels will be ignored — callers can skip simulating for training
    /// purposes once this returns `true`).
    pub fn is_bank_full(&self) -> bool {
        self.bank_x.len() >= self.config.max_bank
    }

    /// Adds freshly simulated labels and continues training (rehearsing
    /// the full bank so old knowledge is retained). No-op on empty input
    /// or when the bank cap is reached.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or dimensions are inconsistent.
    pub fn add_labelled(&mut self, xs: &[Vec<f64>], ys: &[bool]) {
        assert_eq!(xs.len(), ys.len(), "label count mismatch");
        if xs.is_empty() || self.is_bank_full() {
            return;
        }
        let room = self.config.max_bank - self.bank_x.len();
        let take = room.min(xs.len());
        let (xs, ys) = (&xs[..take], &ys[..take]);
        for (x, y) in xs.iter().zip(ys) {
            self.bank_x.push(self.featurise(x));
            self.bank_y.push(*y);
        }
        // Warm-started dual coordinate descent over the enlarged bank:
        // existing dual variables are kept, new samples enter at α = 0,
        // so this is much cheaper than retraining from scratch.
        self.svm
            .continue_training(&mut self.rng, &self.bank_x, &self.bank_y, &self.config.svm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Spherical failure region: ‖x‖ > r fails — mimics the geometry of
    /// an SRAM failure boundary (far from origin), quadratically
    /// separable.
    fn sphere_data(n: usize, dim: usize, r: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
            ys.push(norm > r);
            xs.push(x);
        }
        (xs, ys)
    }

    #[test]
    fn learns_spherical_boundary_with_degree_two() {
        let (xs, ys) = sphere_data(600, 3, 1.8, 1);
        let cfg = SvmConfig {
            degree: 2,
            ..SvmConfig::default()
        };
        let clf = SvmClassifier::fit(&cfg, &xs, &ys).expect("two classes present");
        let (tx, ty) = sphere_data(300, 3, 1.8, 2);
        let correct = tx
            .iter()
            .zip(&ty)
            .filter(|(x, y)| clf.predict(x) == **y)
            .count();
        assert!(correct >= 270, "held-out accuracy {correct}/300");
    }

    #[test]
    fn degree_four_matches_the_paper_pipeline() {
        let (xs, ys) = sphere_data(800, 6, 2.6, 3);
        let clf = SvmClassifier::fit(&SvmConfig::default(), &xs, &ys).expect("two classes");
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| clf.predict(x) == **y)
            .count();
        assert!(
            correct as f64 >= 0.9 * xs.len() as f64,
            "{correct}/{}",
            xs.len()
        );
    }

    #[test]
    fn uncertain_band_flags_points_near_boundary() {
        let (xs, ys) = sphere_data(600, 2, 1.5, 4);
        let cfg = SvmConfig {
            degree: 2,
            ..SvmConfig::default()
        };
        let clf = SvmClassifier::fit(&cfg, &xs, &ys).expect("two classes");
        // Points well inside and well outside should be confident;
        // a point right on the boundary should be less confident than
        // either.
        let near = clf.margin(&[1.5, 0.0]).abs();
        let inside = clf.margin(&[0.1, 0.0]).abs();
        let outside = clf.margin(&[2.6, 0.0]).abs();
        assert!(near < inside, "near {near} vs inside {inside}");
        assert!(near < outside, "near {near} vs outside {outside}");
    }

    #[test]
    fn incremental_labels_refine_the_boundary() {
        // Initial training with few samples → sloppy boundary; feeding
        // back boundary-region labels must improve accuracy there.
        let (xs, ys) = sphere_data(80, 2, 1.5, 5);
        let cfg = SvmConfig {
            degree: 2,
            ..SvmConfig::default()
        };
        let mut clf = SvmClassifier::fit(&cfg, &xs, &ys).expect("two classes");
        // Boundary-region evaluation set.
        let mut rng = StdRng::seed_from_u64(6);
        let ring: Vec<Vec<f64>> = (0..400)
            .map(|_| {
                let t: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let r: f64 = rng.gen_range(1.2..1.8);
                vec![r * t.cos(), r * t.sin()]
            })
            .collect();
        let ring_labels: Vec<bool> = ring
            .iter()
            .map(|x| x.iter().map(|v| v * v).sum::<f64>().sqrt() > 1.5)
            .collect();
        let acc = |c: &SvmClassifier| {
            ring.iter()
                .zip(&ring_labels)
                .filter(|(x, y)| c.predict(x) == **y)
                .count()
        };
        let before = acc(&clf);
        clf.add_labelled(&ring[..200], &ring_labels[..200]);
        let after = acc(&clf);
        assert!(
            after + 10 >= before,
            "incremental update should not collapse accuracy: {before} → {after}"
        );
        assert!(clf.n_training_samples() == 280);
    }

    #[test]
    fn single_class_is_rejected() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        assert_eq!(
            SvmClassifier::fit(&SvmConfig::default(), &xs, &[true, true]).err(),
            Some(TrainError::SingleClass)
        );
    }

    #[test]
    fn empty_set_is_rejected() {
        assert_eq!(
            SvmClassifier::fit(&SvmConfig::default(), &[], &[]).err(),
            Some(TrainError::EmptyTrainingSet)
        );
    }

    #[test]
    fn same_seed_same_model() {
        let (xs, ys) = sphere_data(300, 2, 1.5, 7);
        let cfg = SvmConfig {
            degree: 2,
            ..SvmConfig::default()
        };
        let a = SvmClassifier::fit(&cfg, &xs, &ys).expect("two classes");
        let b = SvmClassifier::fit(&cfg, &xs, &ys).expect("two classes");
        for x in xs.iter().take(50) {
            assert_eq!(a.margin(x), b.margin(x));
        }
    }
}
