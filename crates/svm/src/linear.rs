//! Linear SVM trained by dual coordinate descent.
//!
//! Solves the L1-hinge SVM
//!
//! ```text
//! min_w  ½‖w‖² + C·Σᵢ cᵢ·max(0, 1 − yᵢ·w·x̃ᵢ)
//! ```
//!
//! in the dual, one coordinate `αᵢ ∈ [0, C·cᵢ]` at a time (Hsieh et al.,
//! ICML 2008 — the algorithm behind liblinear). Unlike stochastic
//! subgradient methods this has no learning-rate schedule, converges in a
//! few dozen passes even on the ill-conditioned degree-4 polynomial
//! features, and *warm-starts*: keeping the `α` vector lets stage 2 of
//! the ECRIPSE flow absorb freshly simulated labels at a fraction of the
//! initial training cost.
//!
//! The bias is handled by feature augmentation (`x̃ = [x, 1]`), the
//! standard liblinear treatment.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmOptions {
    /// Misclassification cost `C`.
    pub cost: f64,
    /// Maximum passes over the training set for an initial (cold) fit.
    pub max_epochs: usize,
    /// Maximum passes for a warm-started incremental update, where the
    /// retained `α` vector already solves the bulk of the problem and a
    /// short correction pass suffices. Retraining cost is linear in this
    /// knob, and it sits on the estimator's simulation-free floor (one
    /// forced retrain per particle-filter batch).
    #[serde(default = "default_incremental_epochs")]
    pub incremental_epochs: usize,
    /// Stop when the largest projected-gradient violation in a pass
    /// drops below this.
    pub tolerance: f64,
    /// Cost multiplier for positive (failure) examples, to counter class
    /// imbalance. `1.0` = unweighted.
    pub positive_weight: f64,
}

fn default_incremental_epochs() -> usize {
    20
}

impl Default for SvmOptions {
    fn default() -> Self {
        Self {
            cost: 10.0,
            max_epochs: 100,
            incremental_epochs: default_incremental_epochs(),
            tolerance: 1e-4,
            positive_weight: 1.0,
        }
    }
}

impl SvmOptions {
    fn validate(&self) {
        assert!(self.cost > 0.0, "cost must be positive");
        assert!(self.max_epochs > 0, "need at least one epoch");
        assert!(
            self.incremental_epochs > 0,
            "need at least one incremental epoch"
        );
        assert!(self.tolerance > 0.0, "tolerance must be positive");
        assert!(
            self.positive_weight > 0.0,
            "positive weight must be positive"
        );
    }
}

/// A trained linear decision function `f(x) = w·x + b`, retaining its
/// dual variables for warm-started incremental training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    alphas: Vec<f64>,
}

impl LinearSvm {
    /// Trains on feature vectors `xs` with labels `ys` (`true` = positive
    /// class = failure).
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths differ, rows have inconsistent
    /// dimensions, or the options are invalid.
    pub fn train<R: Rng + ?Sized>(
        rng: &mut R,
        xs: &[Vec<f64>],
        ys: &[bool],
        options: &SvmOptions,
    ) -> Self {
        assert!(!xs.is_empty(), "empty training set");
        let dim = xs[0].len();
        let mut svm = Self {
            weights: vec![0.0; dim],
            bias: 0.0,
            alphas: Vec::new(),
        };
        svm.continue_training(rng, xs, ys, options);
        svm
    }

    /// Warm-started dual coordinate descent over the *full* current
    /// training bank. `xs`/`ys` must contain every sample from previous
    /// calls, in the same order, followed by any new ones (new samples
    /// start at `α = 0`) — exactly how
    /// [`crate::classifier::SvmClassifier`] maintains its label bank.
    ///
    /// # Panics
    ///
    /// Panics if the bank shrank, lengths differ, dimensions are
    /// inconsistent, or the options are invalid.
    pub fn continue_training<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        xs: &[Vec<f64>],
        ys: &[bool],
        options: &SvmOptions,
    ) {
        options.validate();
        assert!(!xs.is_empty(), "empty training set");
        assert_eq!(xs.len(), ys.len(), "label count mismatch");
        assert!(
            self.alphas.len() <= xs.len(),
            "training bank shrank between calls"
        );
        let dim = self.weights.len();
        // A cold fit gets the full epoch budget; a warm-started update
        // (retained dual variables) only needs a short correction pass.
        let epochs = if self.alphas.is_empty() {
            options.max_epochs
        } else {
            options.incremental_epochs
        };
        self.alphas.resize(xs.len(), 0.0);

        // Per-sample upper bound and diagonal of the Gram matrix
        // (augmented with the bias feature).
        let caps: Vec<f64> = ys
            .iter()
            .map(|y| {
                if *y {
                    options.cost * options.positive_weight
                } else {
                    options.cost
                }
            })
            .collect();
        let qdiag: Vec<f64> = xs
            .iter()
            .map(|x| {
                assert_eq!(x.len(), dim, "feature dimension mismatch");
                x.iter().map(|v| v * v).sum::<f64>() + 1.0
            })
            .collect();

        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut max_violation = 0.0_f64;
            for &i in &order {
                let y = if ys[i] { 1.0 } else { -1.0 };
                let decision = self
                    .weights
                    .iter()
                    .zip(&xs[i])
                    .map(|(w, v)| w * v)
                    .sum::<f64>()
                    + self.bias;
                let grad = y * decision - 1.0;
                let alpha = self.alphas[i];
                // Projected gradient.
                let pg = if alpha <= 0.0 {
                    grad.min(0.0)
                } else if alpha >= caps[i] {
                    grad.max(0.0)
                } else {
                    grad
                };
                if pg.abs() < 1e-14 {
                    continue;
                }
                max_violation = max_violation.max(pg.abs());
                let new_alpha = (alpha - grad / qdiag[i]).clamp(0.0, caps[i]);
                let delta = (new_alpha - alpha) * y;
                if delta != 0.0 {
                    for (w, v) in self.weights.iter_mut().zip(&xs[i]) {
                        *w += delta * v;
                    }
                    self.bias += delta;
                    self.alphas[i] = new_alpha;
                }
            }
            if max_violation < options.tolerance {
                break;
            }
        }
    }

    /// The raw decision value `w·x + b`; its sign is the predicted class.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        self.weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f64>()
            + self.bias
    }

    /// Predicted class: `true` = positive (failure).
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision_value(x) >= 0.0
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of support vectors (samples with `α > 0`).
    pub fn n_support_vectors(&self) -> usize {
        self.alphas.iter().filter(|a| **a > 0.0).count()
    }

    /// Decision value normalised by `‖w‖` — the geometric margin used for
    /// the uncertainty band (scale-free, so one threshold works across
    /// retraining rounds).
    pub fn geometric_margin(&self, x: &[f64]) -> f64 {
        let norm: f64 = self.weights.iter().map(|w| w * w).sum::<f64>().sqrt();
        if norm < 1e-300 {
            0.0
        } else {
            self.decision_value(x) / norm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linearly_separable(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        // True boundary: x₀ + 2x₁ − 0.5 = 0 with margin 0.2.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        while xs.len() < n {
            let x = vec![rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)];
            let v: f64 = x[0] + 2.0 * x[1] - 0.5;
            if v.abs() < 0.2 {
                continue;
            }
            ys.push(v > 0.0);
            xs.push(x);
        }
        (xs, ys)
    }

    #[test]
    fn separates_linearly_separable_data() {
        let (xs, ys) = linearly_separable(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let svm = LinearSvm::train(&mut rng, &xs, &ys, &SvmOptions::default());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| svm.predict(x) == **y)
            .count();
        assert_eq!(correct, 400, "separable data must be fit exactly");
    }

    #[test]
    fn generalises_to_held_out_points() {
        let (xs, ys) = linearly_separable(400, 3);
        let (tx, ty) = linearly_separable(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let svm = LinearSvm::train(&mut rng, &xs, &ys, &SvmOptions::default());
        let correct = tx
            .iter()
            .zip(&ty)
            .filter(|(x, y)| svm.predict(x) == **y)
            .count();
        assert!(correct >= 195, "held-out accuracy {}/200", correct);
    }

    #[test]
    fn dual_variables_stay_in_box() {
        let (xs, ys) = linearly_separable(200, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let opts = SvmOptions::default();
        let svm = LinearSvm::train(&mut rng, &xs, &ys, &opts);
        for (a, y) in svm.alphas.iter().zip(&ys) {
            let cap = if *y {
                opts.cost * opts.positive_weight
            } else {
                opts.cost
            };
            assert!(*a >= 0.0 && *a <= cap + 1e-12);
        }
        // KKT: w must be representable from the support vectors.
        assert!(svm.n_support_vectors() > 0);
        let mut w_rec = [0.0; 2];
        for ((a, y), x) in svm.alphas.iter().zip(&ys).zip(&xs) {
            let s = if *y { *a } else { -*a };
            for (wr, xi) in w_rec.iter_mut().zip(x) {
                *wr += s * xi;
            }
        }
        for (wr, w) in w_rec.iter().zip(svm.weights()) {
            assert!((wr - w).abs() < 1e-9, "w {} vs Σαyx {}", w, wr);
        }
    }

    #[test]
    fn incremental_training_improves_on_new_region() {
        // Start with data from one half-plane only, then add the rest.
        let (xs, ys) = linearly_separable(500, 6);
        let first: Vec<usize> = (0..xs.len()).filter(|&i| xs[i][0] > 0.0).collect();
        let rest: Vec<usize> = (0..xs.len()).filter(|&i| xs[i][0] <= 0.0).collect();
        let mut bank_x: Vec<Vec<f64>> = first.iter().map(|&i| xs[i].clone()).collect();
        let mut bank_y: Vec<bool> = first.iter().map(|&i| ys[i]).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let opts = SvmOptions::default();
        let mut svm = LinearSvm::train(&mut rng, &bank_x, &bank_y, &opts);
        let acc_before = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| svm.predict(x) == **y)
            .count();
        bank_x.extend(rest.iter().map(|&i| xs[i].clone()));
        bank_y.extend(rest.iter().map(|&i| ys[i]));
        svm.continue_training(&mut rng, &bank_x, &bank_y, &opts);
        let acc_after = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| svm.predict(x) == **y)
            .count();
        assert!(
            acc_after >= acc_before,
            "incremental training regressed: {acc_before} → {acc_after}"
        );
        assert_eq!(acc_after, 500, "separable data must end up fit exactly");
    }

    #[test]
    fn positive_weight_biases_recall() {
        // Imbalanced overlapping classes: higher positive cost should
        // trade precision for recall.
        let mut rng = StdRng::seed_from_u64(8);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        use rand::Rng as _;
        for _ in 0..1000 {
            let pos = rng.gen::<f64>() < 0.05;
            let centre = if pos { 1.0 } else { -0.2 };
            xs.push(vec![centre + rng.gen_range(-1.0..1.0)]);
            ys.push(pos);
        }
        let recall = |svm: &LinearSvm| {
            let tp = xs
                .iter()
                .zip(&ys)
                .filter(|(x, y)| **y && svm.predict(x))
                .count();
            let p = ys.iter().filter(|y| **y).count();
            tp as f64 / p as f64
        };
        let mut rng1 = StdRng::seed_from_u64(9);
        let plain = LinearSvm::train(&mut rng1, &xs, &ys, &SvmOptions::default());
        let mut rng2 = StdRng::seed_from_u64(9);
        let weighted = LinearSvm::train(
            &mut rng2,
            &xs,
            &ys,
            &SvmOptions {
                positive_weight: 20.0,
                ..SvmOptions::default()
            },
        );
        assert!(
            recall(&weighted) > recall(&plain),
            "weighted recall {} should beat plain {}",
            recall(&weighted),
            recall(&plain)
        );
    }

    #[test]
    fn geometric_margin_sign_matches_decision() {
        let (xs, ys) = linearly_separable(200, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let svm = LinearSvm::train(&mut rng, &xs, &ys, &SvmOptions::default());
        for x in xs.iter().take(20) {
            let gm = svm.geometric_margin(x);
            let dv = svm.decision_value(x);
            assert_eq!(gm > 0.0, dv > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = LinearSvm::train(&mut rng, &[], &[], &SvmOptions::default());
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn rejects_mismatched_labels() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = LinearSvm::train(
            &mut rng,
            &[vec![1.0]],
            &[true, false],
            &SvmOptions::default(),
        );
    }

    #[test]
    #[should_panic(expected = "training bank shrank")]
    fn rejects_shrinking_bank() {
        let (xs, ys) = linearly_separable(50, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut svm = LinearSvm::train(&mut rng, &xs, &ys, &SvmOptions::default());
        svm.continue_training(&mut rng, &xs[..10], &ys[..10], &SvmOptions::default());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// After training on any labelled data, the dual variables stay
        /// in their box and the primal weights equal Σ αᵢ yᵢ xᵢ.
        #[test]
        fn prop_kkt_box_and_representation(
            raw in proptest::collection::vec(
                (proptest::collection::vec(-3.0f64..3.0, 3), proptest::bool::ANY),
                8..40,
            ),
            seed in 0u64..1000,
        ) {
            let xs: Vec<Vec<f64>> = raw.iter().map(|(x, _)| x.clone()).collect();
            let ys: Vec<bool> = raw.iter().map(|(_, y)| *y).collect();
            let opts = SvmOptions { max_epochs: 40, ..SvmOptions::default() };
            let mut rng = StdRng::seed_from_u64(seed);
            let svm = LinearSvm::train(&mut rng, &xs, &ys, &opts);
            let mut w = [0.0; 3];
            let mut b = 0.0;
            for ((a, y), x) in svm.alphas.iter().zip(&ys).zip(&xs) {
                let cap = if *y { opts.cost * opts.positive_weight } else { opts.cost };
                prop_assert!(*a >= -1e-12 && *a <= cap + 1e-9);
                let s = if *y { *a } else { -*a };
                for (wi, xi) in w.iter_mut().zip(x) {
                    *wi += s * xi;
                }
                b += s;
            }
            for (wi, wv) in w.iter().zip(svm.weights()) {
                prop_assert!((wi - wv).abs() < 1e-6);
            }
            prop_assert!((b - svm.bias()).abs() < 1e-6);
        }
    }
}
