//! The simulation-skipping classifier of the ECRIPSE flow.
//!
//! The paper (Sec. II-C, III-B) uses a *linear* support vector machine
//! over a degree-4 polynomial transform of the variability vector to
//! predict pass/fail without running the transistor-level simulator.
//! This crate implements that classifier from scratch:
//!
//! * [`features`] — the explicit multi-index polynomial feature map
//!   (`[1, x₁, x₂, x₁x₂, x₁², …]` up to total degree `D_poly`);
//! * [`scale`] — feature standardisation fitted on the first training
//!   batch (polynomial features of ±4σ inputs span orders of magnitude,
//!   which stochastic subgradient descent does not enjoy);
//! * [`linear`] — a Pegasos-style linear SVM with hinge loss;
//! * [`classifier`] — [`classifier::SvmClassifier`], the assembled
//!   pipeline with incremental retraining and the margin-based
//!   uncertainty band that routes borderline samples back to the
//!   simulator in the second Monte Carlo stage;
//! * [`metrics`] — confusion-matrix based evaluation used by the tests
//!   and the ablation benches.
//!
//! # Example
//!
//! ```
//! use ecripse_svm::classifier::{SvmClassifier, SvmConfig};
//!
//! // Learn the unit circle (quadratically separable).
//! let xs: Vec<Vec<f64>> = (0..200)
//!     .map(|i| {
//!         let t = i as f64 / 200.0 * std::f64::consts::TAU;
//!         let r = if i % 2 == 0 { 0.5 } else { 1.5 };
//!         vec![r * t.cos(), r * t.sin()]
//!     })
//!     .collect();
//! let ys: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
//! let mut clf = SvmClassifier::fit(&SvmConfig { degree: 2, ..SvmConfig::default() }, &xs, &ys)?;
//! let correct = xs.iter().zip(&ys).filter(|(x, y)| clf.predict(x) == **y).count();
//! assert!(correct >= 190);
//! # Ok::<(), ecripse_svm::classifier::TrainError>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod classifier;
pub mod features;
pub mod linear;
pub mod metrics;
pub mod scale;

pub use classifier::{SvmClassifier, SvmConfig};
pub use features::PolynomialFeatures;
pub use linear::LinearSvm;
pub use metrics::ConfusionMatrix;
pub use scale::StandardScaler;
