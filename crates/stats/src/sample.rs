//! Random samplers built on any [`rand::Rng`].
//!
//! The approved offline dependency set includes `rand` but not
//! `rand_distr`, so the two distributions the ECRIPSE flow needs — the
//! standard normal (for process variability, proposal kernels and the
//! alternative distribution) and the Poisson (for the RTN defect-occupancy
//! count of Eq. 10) — are implemented here and validated by moment tests.

use rand::Rng;

/// Draws one standard normal variate using Marsaglia's polar method.
///
/// The polar method discards the second variate of each accepted pair; use
/// [`NormalSampler`] in hot loops to keep it.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let z = ecripse_stats::sample_standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A standard-normal sampler that caches the spare variate from the polar
/// method, halving the number of rejections in tight Monte Carlo loops.
#[derive(Debug, Clone, Default)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with no cached variate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fills `out` with independent standard normal variates.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }

    /// Draws a vector of `dim` independent standard normal variates.
    pub fn sample_vec<R: Rng + ?Sized>(&mut self, rng: &mut R, dim: usize) -> Vec<f64> {
        let mut v = vec![0.0; dim];
        self.fill(rng, &mut v);
        v
    }
}

/// Draws one Poisson variate with the given mean.
///
/// Small means (`< 30`) use Knuth's multiplication method; larger means use
/// the PTRS transformed-rejection algorithm of Hörmann (1993), which has a
/// bounded expected number of iterations for any mean.
///
/// A mean of exactly zero returns 0 (the paper's RTN model yields a zero
/// rate when a device has no traps). Negative or non-finite means panic.
///
/// # Panics
///
/// Panics if `mean` is negative, NaN or infinite.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "Poisson mean must be finite and non-negative, got {mean}"
    );
    if mean == 0.0 {
        0
    } else if mean < 30.0 {
        poisson_knuth(rng, mean)
    } else {
        poisson_ptrs(rng, mean)
    }
}

/// Knuth's method: multiply uniforms until the product drops below e^{−λ}.
fn poisson_knuth<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    let limit = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// PTRS transformed rejection (Hörmann 1993), valid for mean ≥ 10.
fn poisson_ptrs<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    let b = 0.931 + 2.53 * mean.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let v: f64 = rng.gen::<f64>();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + mean + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        let accept = (v * inv_alpha / (a / (us * us) + b)).ln()
            <= -mean + k * mean.ln() - ln_factorial(k as u64);
        if accept {
            return k as u64;
        }
    }
}

/// `ln(k!)` via Stirling/Lanczos-free Gosper-style series for large `k`,
/// exact table for small `k`.
pub fn ln_factorial(k: u64) -> f64 {
    const TABLE: [f64; 16] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
    ];
    if (k as usize) < TABLE.len() {
        return TABLE[k as usize];
    }
    let x = (k + 1) as f64;
    // Stirling series with three correction terms — error < 1e-10 for k ≥ 16.
    (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let mut sum3 = 0.0;
        for _ in 0..n {
            let z = s.sample(&mut rng);
            sum += z;
            sum2 += z * z;
            sum3 += z * z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let skew = sum3 / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.05, "3rd moment {skew}");
    }

    #[test]
    fn free_function_agrees_with_sampler_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let within_1sigma = (0..n)
            .filter(|_| sample_standard_normal(&mut rng).abs() < 1.0)
            .count() as f64
            / n as f64;
        assert!((within_1sigma - 0.6827).abs() < 0.01);
    }

    #[test]
    fn poisson_small_mean_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let lam = 1.92; // the paper's average defects in the smallest device
        let n = 200_000;
        let mut sum = 0u64;
        let mut sum2 = 0u64;
        for _ in 0..n {
            let k = sample_poisson(&mut rng, lam);
            sum += k;
            sum2 += k * k;
        }
        let mean = sum as f64 / n as f64;
        let var = sum2 as f64 / n as f64 - mean * mean;
        assert!((mean - lam).abs() < 0.02, "mean {mean}");
        assert!((var - lam).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_large_mean_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let lam = 120.0;
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let k = sample_poisson(&mut rng, lam) as f64;
            sum += k;
            sum2 += k * k;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - lam).abs() / lam < 0.01, "mean {mean}");
        assert!((var - lam).abs() / lam < 0.03, "var {var}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn poisson_zero_probability_mass_matches() {
        // P(N=0) = e^{−λ}.
        let mut rng = StdRng::seed_from_u64(9);
        let lam = 0.174; // typical RTN occupancy rate at α = 0.5
        let n = 300_000;
        let zeros = (0..n)
            .filter(|_| sample_poisson(&mut rng, lam) == 0)
            .count() as f64
            / n as f64;
        assert!((zeros - (-lam).exp()).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "Poisson mean must be finite")]
    fn poisson_rejects_negative_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_poisson(&mut rng, -1.0);
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        for k in 0..30u64 {
            let direct: f64 = (1..=k).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_factorial(k) - direct).abs() < 1e-8,
                "ln({k}!) = {}, want {direct}",
                ln_factorial(k)
            );
        }
    }

    #[test]
    fn sample_vec_has_requested_dimension() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = NormalSampler::new();
        assert_eq!(s.sample_vec(&mut rng, 6).len(), 6);
        assert!(s.sample_vec(&mut rng, 0).is_empty());
    }
}
