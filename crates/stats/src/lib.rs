//! Statistical substrate for the ECRIPSE reproduction.
//!
//! This crate collects the numerical building blocks that the failure
//! probability machinery in `ecripse-core` relies on:
//!
//! * [`special`] — error function, standard normal CDF `Φ`, its inverse
//!   `Φ⁻¹`, and log-space helpers, all implemented from scratch and tested
//!   against tabulated values.
//! * [`sample`] — standard-normal (Marsaglia polar) and Poisson (Knuth /
//!   PTRS) samplers built on top of any [`rand::Rng`].
//! * [`mvn`] — diagonal multivariate Gaussians and equal-or-weighted
//!   Gaussian mixtures with numerically stable log-density evaluation.
//!   These represent both the process-variability PDF `P(x)` (Eq. 14 of the
//!   paper) and the particle-based alternative distribution `Q̂(x)`
//!   (Eq. 18).
//! * [`whiten`] — Cholesky factorisation and the whitening transform the
//!   paper invokes to justify treating the variability space as an
//!   independent standard normal.
//! * [`estimate`] — streaming mean/variance accumulators, binomial and
//!   CLT-based 95 % confidence intervals, and the weighted importance
//!   sampling estimator of Eq. 19 together with its relative error (the
//!   quantity plotted in Fig. 6(b)).
//! * [`resample`] — multinomial and systematic resampling plus effective
//!   sample size, used by the particle filter's resampling step.
//!
//! # Example
//!
//! ```
//! use ecripse_stats::special::normal_cdf;
//!
//! // P(Z < -3.65) is about the RDF-only SRAM failure level of the paper.
//! let p = normal_cdf(-3.65);
//! assert!(p > 1.0e-4 && p < 2.0e-4);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod estimate;
pub mod mvn;
pub mod resample;
pub mod sample;
pub mod special;
pub mod whiten;

pub use estimate::{RunningStats, WeightedIsEstimator, WilsonInterval};
pub use mvn::{DiagGaussian, GaussianMixture};
pub use resample::{effective_sample_size, multinomial_resample, systematic_resample};
pub use sample::{sample_poisson, sample_standard_normal, NormalSampler};
pub use special::{erf, erfc, log_normal_pdf, normal_cdf, normal_pdf, normal_quantile};
pub use whiten::{cholesky, Whitener};

/// Numerically stable `log(Σ exp(xᵢ))`.
///
/// Returns negative infinity for an empty slice.
///
/// ```
/// let x = [0.0_f64, (2.0_f64).ln()];
/// assert!((ecripse_stats::log_sum_exp(&x) - (3.0_f64).ln()).abs() < 1e-12);
/// ```
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = xs.iter().map(|x| (x - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_direct_sum() {
        let xs = [-1.0_f64, 0.5, 2.0, -3.0];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>();
        assert!((log_sum_exp(&xs) - direct.ln()).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_large_magnitudes() {
        // Direct exponentiation would overflow; the stable version must not.
        let xs = [1000.0, 1000.0];
        let got = log_sum_exp(&xs);
        assert!((got - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_single_element_identity() {
        assert!((log_sum_exp(&[-7.25]) - (-7.25)).abs() < 1e-15);
    }
}
