//! Diagonal multivariate Gaussians and Gaussian mixtures.
//!
//! Two distributions drive the whole ECRIPSE flow:
//!
//! * the process-variability PDF `P_RDF(x) = N(x | 0, I)` (Eq. 14), a
//!   special case of [`DiagGaussian`];
//! * the particle-based alternative distribution `Q̂(x) = (1/N) Σᵢ
//!   N(x | xᵢ, σ)` (Eq. 18) and the prediction proposal (Eq. 15), both
//!   equal-weight [`GaussianMixture`]s.
//!
//! All densities are evaluated in log space: importance weights
//! `P(x)/Q̂(x)` involve densities around e^{-40} at the failure boundary of
//! a 6-σ problem, far below what naive multiplication keeps accurate.

use crate::sample::NormalSampler;
use rand::Rng;

/// A multivariate Gaussian with diagonal covariance.
///
/// The normalisation constant and the per-axis inverse deviations are
/// precomputed at construction: `log_pdf` sits on the hottest loop of
/// stage 2 (once per mixture component per importance sample), where
/// re-deriving `ln σ` per call dominated the whole estimator's
/// simulation-free floor.
#[derive(Debug, Clone)]
pub struct DiagGaussian {
    mean: Vec<f64>,
    sigma: Vec<f64>,
    /// `1/σᵢ` per axis.
    inv_sigma: Vec<f64>,
    /// `−Σᵢ ln σᵢ − (d/2)·ln 2π` — the log normalisation constant.
    log_norm: f64,
}

impl PartialEq for DiagGaussian {
    fn eq(&self, other: &Self) -> bool {
        // The derived fields are functions of `sigma`.
        self.mean == other.mean && self.sigma == other.sigma
    }
}

impl DiagGaussian {
    /// Creates a Gaussian with the given mean vector and per-axis standard
    /// deviations.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths, are empty, or any
    /// sigma is not strictly positive and finite.
    pub fn new(mean: Vec<f64>, sigma: Vec<f64>) -> Self {
        assert_eq!(mean.len(), sigma.len(), "mean/sigma dimension mismatch");
        assert!(!mean.is_empty(), "zero-dimensional Gaussian");
        assert!(
            sigma.iter().all(|s| s.is_finite() && *s > 0.0),
            "sigmas must be positive and finite: {sigma:?}"
        );
        let inv_sigma: Vec<f64> = sigma.iter().map(|s| 1.0 / s).collect();
        let log_norm = -sigma.iter().map(|s| s.ln()).sum::<f64>()
            - 0.5 * mean.len() as f64 * (2.0 * std::f64::consts::PI).ln();
        Self {
            mean,
            sigma,
            inv_sigma,
            log_norm,
        }
    }

    /// The standard multivariate normal `N(0, I)` in `dim` dimensions —
    /// the paper's `P_RDF` (Eq. 14).
    pub fn standard(dim: usize) -> Self {
        Self::new(vec![0.0; dim], vec![1.0; dim])
    }

    /// An isotropic Gaussian centred at `mean` with common deviation
    /// `sigma` — the proposal kernel of Eq. 15.
    pub fn isotropic(mean: Vec<f64>, sigma: f64) -> Self {
        let d = mean.len();
        Self::new(mean, vec![sigma; d])
    }

    /// Dimensionality of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The per-axis standard deviations.
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// Log density at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "log_pdf dimension mismatch");
        let q: f64 = x
            .iter()
            .zip(&self.mean)
            .zip(&self.inv_sigma)
            .map(|((xi, mi), inv)| {
                let z = (xi - mi) * inv;
                z * z
            })
            .sum();
        self.log_norm - 0.5 * q
    }

    /// Density at `x`. May underflow to zero far from the mean; prefer
    /// [`Self::log_pdf`] for weight ratios.
    pub fn pdf(&self, x: &[f64]) -> f64 {
        self.log_pdf(x).exp()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, normals: &mut NormalSampler) -> Vec<f64> {
        self.mean
            .iter()
            .zip(&self.sigma)
            .map(|(m, s)| m + s * normals.sample(rng))
            .collect()
    }
}

/// An equal-or-weighted mixture of diagonal Gaussians.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    components: Vec<DiagGaussian>,
    log_weights: Vec<f64>,
    /// `exp(log_weights)`, precomputed for the sampling scan.
    weights: Vec<f64>,
    /// Component means in dimension-major order (`[d][c]`), so the
    /// density loop streams contiguously across components.
    means_t: Vec<f64>,
    /// Component inverse deviations, dimension-major like `means_t`.
    inv_sigma_t: Vec<f64>,
    /// Per-component log normalisation constants.
    log_norms: Vec<f64>,
}

impl GaussianMixture {
    /// Creates an equal-weight mixture, the form used by Eqs. 15 and 18.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or dimensions disagree.
    pub fn equal_weight(components: Vec<DiagGaussian>) -> Self {
        assert!(!components.is_empty(), "empty mixture");
        let n = components.len();
        Self::weighted(components, &vec![1.0 / n as f64; n])
    }

    /// Creates a mixture with explicit (normalised internally) weights.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree, any weight is negative/non-finite, all
    /// weights are zero, or component dimensions disagree.
    pub fn weighted(components: Vec<DiagGaussian>, weights: &[f64]) -> Self {
        assert!(!components.is_empty(), "empty mixture");
        assert_eq!(components.len(), weights.len(), "weight count mismatch");
        let dim = components[0].dim();
        assert!(
            components.iter().all(|c| c.dim() == dim),
            "mixture components must share a dimension"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "all mixture weights are zero");
        let log_weights: Vec<f64> = weights.iter().map(|w| (w / total).ln()).collect();
        let weights = log_weights.iter().map(|lw| lw.exp()).collect();
        let n = components.len();
        let mut means_t = vec![0.0; n * dim];
        let mut inv_sigma_t = vec![0.0; n * dim];
        for (c, comp) in components.iter().enumerate() {
            for d in 0..dim {
                means_t[d * n + c] = comp.mean[d];
                inv_sigma_t[d * n + c] = comp.inv_sigma[d];
            }
        }
        let log_norms = components.iter().map(|c| c.log_norm).collect();
        Self {
            components,
            log_weights,
            weights,
            means_t,
            inv_sigma_t,
            log_norms,
        }
    }

    /// Builds the particle-cloud alternative distribution of Eq. 18: an
    /// equal-weight mixture of isotropic kernels centred at each particle.
    ///
    /// # Panics
    ///
    /// Panics if `particles` is empty or `sigma` is not positive.
    pub fn from_particles(particles: &[Vec<f64>], sigma: f64) -> Self {
        assert!(!particles.is_empty(), "no particles to build mixture from");
        Self::equal_weight(
            particles
                .iter()
                .map(|p| DiagGaussian::isotropic(p.clone(), sigma))
                .collect(),
        )
    }

    /// Number of mixture components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Dimensionality of the mixture.
    pub fn dim(&self) -> usize {
        self.components[0].dim()
    }

    /// The mixture components.
    pub fn components(&self) -> &[DiagGaussian] {
        &self.components
    }

    /// Log density at `x`, computed with log-sum-exp stability.
    ///
    /// Evaluated dimension-major over the transposed component arrays:
    /// one importance-sampling run calls this once per sample with
    /// hundreds of components, and the contiguous inner loop is several
    /// times faster than per-component evaluation while producing
    /// bit-identical terms (the per-component accumulation order over
    /// dimensions is unchanged).
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "log_pdf dimension mismatch");
        let n = self.components.len();
        let mut q = vec![0.0f64; n];
        for (d, xd) in x.iter().enumerate() {
            let means = &self.means_t[d * n..(d + 1) * n];
            let invs = &self.inv_sigma_t[d * n..(d + 1) * n];
            for ((qc, mc), ic) in q.iter_mut().zip(means).zip(invs) {
                let z = (xd - mc) * ic;
                *qc += z * z;
            }
        }
        // terms[c] = log_weight + component log_pdf, exactly as the
        // per-component path computes them; then the same fold/sum order
        // as `log_sum_exp`.
        let mut m = f64::NEG_INFINITY;
        for ((qc, lw), ln) in q.iter_mut().zip(&self.log_weights).zip(&self.log_norms) {
            let term = lw + (ln - 0.5 * *qc);
            *qc = term;
            m = m.max(term);
        }
        if !m.is_finite() {
            return m;
        }
        let s: f64 = q.iter().map(|t| (t - m).exp()).sum();
        m + s.ln()
    }

    /// Density at `x`; see [`Self::log_pdf`] for the numerically safe form.
    pub fn pdf(&self, x: &[f64]) -> f64 {
        self.log_pdf(x).exp()
    }

    /// Draws one sample: picks a component by weight, then samples it.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, normals: &mut NormalSampler) -> Vec<f64> {
        let u: f64 = rng.gen::<f64>();
        let mut acc = 0.0;
        for (c, w) in self.components.iter().zip(&self.weights) {
            acc += w;
            if u <= acc {
                return c.sample(rng, normals);
            }
        }
        // Floating-point slack: fall back to the last component.
        self.components
            .last()
            .expect("mixture is non-empty")
            .sample(rng, normals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::log_normal_pdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_gaussian_log_pdf_at_origin() {
        let g = DiagGaussian::standard(6);
        let want = -0.5 * 6.0 * (2.0 * std::f64::consts::PI).ln();
        assert!((g.log_pdf(&[0.0; 6]) - want).abs() < 1e-12);
    }

    #[test]
    fn diag_gaussian_factorises() {
        let g = DiagGaussian::new(vec![1.0, -2.0], vec![0.5, 3.0]);
        let x = [1.3, 0.4];
        let manual = log_normal_pdf((1.3 - 1.0) / 0.5) - 0.5_f64.ln()
            + log_normal_pdf((0.4 + 2.0) / 3.0)
            - 3.0_f64.ln();
        assert!((g.log_pdf(&x) - manual).abs() < 1e-12);
    }

    #[test]
    fn gaussian_sample_moments() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ns = NormalSampler::new();
        let g = DiagGaussian::new(vec![2.0, -1.0], vec![0.5, 2.0]);
        let n = 100_000;
        let mut mean = [0.0; 2];
        let mut m2 = [0.0; 2];
        for _ in 0..n {
            let s = g.sample(&mut rng, &mut ns);
            for d in 0..2 {
                mean[d] += s[d];
                m2[d] += s[d] * s[d];
            }
        }
        for d in 0..2 {
            mean[d] /= n as f64;
            m2[d] = m2[d] / n as f64 - mean[d] * mean[d];
        }
        assert!((mean[0] - 2.0).abs() < 0.01);
        assert!((mean[1] + 1.0).abs() < 0.03);
        assert!((m2[0] - 0.25).abs() < 0.01);
        assert!((m2[1] - 4.0).abs() < 0.1);
    }

    #[test]
    fn single_component_mixture_equals_component() {
        let c = DiagGaussian::isotropic(vec![0.3, -0.7, 1.1], 0.4);
        let m = GaussianMixture::equal_weight(vec![c.clone()]);
        for x in [[0.0, 0.0, 0.0], [0.5, -1.0, 2.0]] {
            assert!((m.log_pdf(&x) - c.log_pdf(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn mixture_density_is_weighted_average() {
        let a = DiagGaussian::isotropic(vec![-2.0], 1.0);
        let b = DiagGaussian::isotropic(vec![2.0], 1.0);
        let m = GaussianMixture::weighted(vec![a.clone(), b.clone()], &[0.25, 0.75]);
        let x = [0.5];
        let want = 0.25 * a.pdf(&x) + 0.75 * b.pdf(&x);
        assert!(((m.pdf(&x) - want) / want).abs() < 1e-10);
    }

    #[test]
    fn mixture_density_integrates_to_one_by_mc() {
        // Importance-sample the mixture against a wide reference Gaussian.
        let mut rng = StdRng::seed_from_u64(23);
        let mut ns = NormalSampler::new();
        let m = GaussianMixture::equal_weight(vec![
            DiagGaussian::isotropic(vec![-1.5, 0.0], 0.4),
            DiagGaussian::isotropic(vec![1.5, 0.5], 0.8),
        ]);
        let reference = DiagGaussian::new(vec![0.0, 0.0], vec![4.0, 4.0]);
        let n = 200_000;
        let mut acc = 0.0;
        for _ in 0..n {
            let x = reference.sample(&mut rng, &mut ns);
            acc += (m.log_pdf(&x) - reference.log_pdf(&x)).exp();
        }
        let integral = acc / n as f64;
        assert!((integral - 1.0).abs() < 0.02, "∫mixture = {integral}");
    }

    #[test]
    fn from_particles_centres_kernels_on_particles() {
        let particles = vec![vec![1.0, 2.0], vec![-3.0, 0.5]];
        let m = GaussianMixture::from_particles(&particles, 0.3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.components()[0].mean(), &[1.0, 2.0]);
        assert_eq!(m.components()[1].sigma(), &[0.3, 0.3]);
    }

    #[test]
    fn mixture_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut ns = NormalSampler::new();
        let m = GaussianMixture::weighted(
            vec![
                DiagGaussian::isotropic(vec![-10.0], 0.1),
                DiagGaussian::isotropic(vec![10.0], 0.1),
            ],
            &[0.2, 0.8],
        );
        let n = 50_000;
        let right = (0..n)
            .filter(|_| m.sample(&mut rng, &mut ns)[0] > 0.0)
            .count() as f64
            / n as f64;
        assert!((right - 0.8).abs() < 0.01, "right fraction {right}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn gaussian_rejects_mismatched_dims() {
        let _ = DiagGaussian::new(vec![0.0, 1.0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "sigmas must be positive")]
    fn gaussian_rejects_zero_sigma() {
        let _ = DiagGaussian::new(vec![0.0], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "empty mixture")]
    fn mixture_rejects_empty() {
        let _ = GaussianMixture::equal_weight(vec![]);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn mixture_rejects_dim_mismatch() {
        let _ = GaussianMixture::equal_weight(vec![
            DiagGaussian::standard(2),
            DiagGaussian::standard(3),
        ]);
    }
}
