//! Special functions: `erf`, `erfc`, the standard normal CDF/PDF and the
//! normal quantile function.
//!
//! All implementations are self-contained (no `libm` beyond `std`), chosen
//! for accuracy adequate to rare-event estimation: `erfc` is good to better
//! than 1e-12 relative error over the range used here, and the quantile
//! function applies one Halley refinement step on top of Acklam's rational
//! approximation, giving ~1e-14 absolute error.

use std::f64::consts::{PI, SQRT_2};

/// `1/sqrt(2π)`, the normalisation constant of the standard normal PDF.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// ```
/// assert!((ecripse_stats::erf(0.0)).abs() < 1e-15);
/// assert!((ecripse_stats::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses the continued-fraction/Chebyshev fit from Numerical Recipes
/// (`erfccheb`) with an extended coefficient set, accurate to ~1e-13
/// relative over `|x| ≤ 10` and monotone in the tails.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        erfc_positive(x)
    } else {
        2.0 - erfc_positive(-x)
    }
}

/// Chebyshev-fit `erfc` for non-negative arguments.
fn erfc_positive(x: f64) -> f64 {
    debug_assert!(x >= 0.0);
    // Coefficients for the Chebyshev fit of erfc (Numerical Recipes 3rd ed.,
    // "erfcore"), valid for z >= 0.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let t = 2.0 / (2.0 + x);
    let ty = 4.0 * t - 2.0;
    let mut d = 0.0_f64;
    let mut dd = 0.0_f64;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    t * (-x * x + 0.5 * (COF[0] + ty * d) - dd).exp()
}

/// Standard normal probability density `φ(x) = e^{−x²/2}/√(2π)`.
///
/// ```
/// let phi0 = ecripse_stats::normal_pdf(0.0);
/// assert!((phi0 - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn normal_pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Natural log of the standard normal density, `−x²/2 − ln√(2π)`.
///
/// Preferred over `normal_pdf(x).ln()` for large `|x|` where the density
/// underflows.
pub fn log_normal_pdf(x: f64) -> f64 {
    -0.5 * x * x - 0.5 * (2.0 * PI).ln()
}

/// Standard normal cumulative distribution `Φ(x) = P(Z ≤ x)`.
///
/// Computed via `erfc` so that deep lower-tail values (`x ≈ −8`, probability
/// ~1e-16) retain full relative accuracy — essential when scoring rare
/// failure events.
///
/// ```
/// assert!((ecripse_stats::normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((ecripse_stats::normal_cdf(1.96) - 0.9750021048517795).abs() < 1e-10);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Upper tail of the standard normal, `P(Z > x) = Φ(−x)`, with full
/// relative accuracy for large positive `x`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / SQRT_2)
}

/// Inverse of [`normal_cdf`]: returns `x` such that `Φ(x) = p`.
///
/// Implementation: Acklam's rational approximation, refined by one Halley
/// step using the exact CDF above. Accurate to ~1e-14 over `p ∈ (1e-300,
/// 1 − 1e-16)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement using the accurate CDF/PDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from standard tables / mpmath at 1e-13.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
    ];

    #[test]
    fn erf_matches_tabulated_values() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-12, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erf_is_odd() {
        for x in [0.3, 0.9, 1.7, 2.5] {
            assert!((erf(-x) + erf(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn erfc_deep_tail_relative_accuracy() {
        // erfc(5) = 1.5374597944280349e-12
        let got = erfc(5.0);
        let want = 1.537_459_794_428_035e-12;
        assert!(
            ((got - want) / want).abs() < 1e-9,
            "erfc(5) = {got:e}, want {want:e}"
        );
        // erfc(8) = 1.1224297172982928e-29
        let got = erfc(8.0);
        let want = 1.1224297172982928e-29;
        assert!(((got - want) / want).abs() < 1e-8);
    }

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-12);
        assert!((normal_cdf(-1.0) - 0.15865525393145705).abs() < 1e-12);
        assert!((normal_cdf(2.0) - 0.9772498680518208).abs() < 1e-12);
        // Deep tail (relative accuracy matters here).
        let p = normal_cdf(-6.0);
        let want = 9.865876450376946e-10;
        assert!(((p - want) / want).abs() < 1e-8, "Φ(-6) = {p:e}");
    }

    #[test]
    fn normal_sf_is_symmetric_tail() {
        for x in [0.5, 2.0, 4.5, 7.0] {
            let sf = normal_sf(x);
            let cdf = normal_cdf(-x);
            assert!(((sf - cdf) / cdf).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for &p in &[1e-12, 1e-8, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.975, 1.0 - 1e-9] {
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!(
                ((back - p) / p).abs() < 1e-9,
                "round trip p={p:e}: x={x}, Φ(x)={back:e}"
            );
        }
    }

    #[test]
    fn quantile_known_points() {
        assert!(normal_quantile(0.5).abs() < 1e-13);
        assert!((normal_quantile(0.975) - 1.959963984540054).abs() < 1e-10);
        assert!((normal_quantile(0.9999966) - 4.499854470022365).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "normal_quantile requires p in (0,1)")]
    fn quantile_rejects_out_of_range() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn log_pdf_matches_pdf_in_normal_range() {
        for x in [-3.0, -1.0, 0.0, 0.5, 2.5] {
            assert!((log_normal_pdf(x) - normal_pdf(x).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn log_pdf_finite_where_pdf_underflows() {
        let x = 40.0;
        assert_eq!(normal_pdf(x), 0.0); // underflow
        assert!(log_normal_pdf(x).is_finite());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Φ is monotone increasing and bounded in (0, 1).
        #[test]
        fn prop_cdf_monotone(a in -8.0f64..8.0, d in 0.0001f64..2.0) {
            prop_assert!(normal_cdf(a) < normal_cdf(a + d));
            prop_assert!(normal_cdf(a) > 0.0 && normal_cdf(a) < 1.0);
        }

        /// Φ(x) + Φ(−x) = 1.
        #[test]
        fn prop_cdf_symmetry(x in -8.0f64..8.0) {
            prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }

        /// Quantile inverts the CDF over the practical range.
        #[test]
        fn prop_quantile_round_trip(x in -6.0f64..6.0) {
            let p = normal_cdf(x);
            let back = normal_quantile(p);
            prop_assert!((back - x).abs() < 1e-8, "x={x}, back={back}");
        }

        /// erf is odd and bounded.
        #[test]
        fn prop_erf_odd(x in -5.0f64..5.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
            prop_assert!(erf(x).abs() <= 1.0);
        }
    }
}
