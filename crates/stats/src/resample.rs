//! Particle resampling schemes.
//!
//! The resampling step of the particle filter (Algorithm 1, step 4) draws a
//! new particle population with probabilities proportional to the weights.
//! Two classic schemes are provided:
//!
//! * [`multinomial_resample`] — i.i.d. draws from the weight distribution
//!   (what the paper describes literally);
//! * [`systematic_resample`] — a single stratified sweep with strictly
//!   lower variance; this is the default in `ecripse-core` because it
//!   measurably slows particle degeneracy, the failure mode the paper
//!   counters with multiple filters.
//!
//! [`effective_sample_size`] quantifies that degeneracy.

use rand::Rng;

/// Normalises weights in place; returns `false` (leaving the slice
/// untouched) if they cannot be normalised (all zero / non-finite).
fn normalise(weights: &mut [f64]) -> bool {
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return false;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return false;
    }
    for w in weights {
        *w /= total;
    }
    true
}

/// Multinomial resampling: draws `n` indices i.i.d. with probability
/// proportional to `weights`.
///
/// Returns `None` if the weights are all zero, negative, or non-finite.
pub fn multinomial_resample<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
) -> Option<Vec<usize>> {
    let mut w = weights.to_vec();
    if !normalise(&mut w) {
        return None;
    }
    // Cumulative distribution, then binary search per draw.
    let mut cdf = w;
    for i in 1..cdf.len() {
        cdf[i] += cdf[i - 1];
    }
    if let Some(last) = cdf.last_mut() {
        *last = 1.0; // guard against rounding
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let idx = cdf.partition_point(|c| *c < u).min(cdf.len() - 1);
        out.push(idx);
    }
    Some(out)
}

/// Systematic resampling: one uniform offset, `n` evenly spaced pointers
/// through the cumulative weight distribution.
///
/// Returns `None` if the weights are all zero, negative, or non-finite.
pub fn systematic_resample<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    n: usize,
) -> Option<Vec<usize>> {
    let mut w = weights.to_vec();
    if !normalise(&mut w) {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }
    let step = 1.0 / n as f64;
    let mut u = rng.gen::<f64>() * step;
    let mut out = Vec::with_capacity(n);
    let mut acc = 0.0;
    let mut i = 0usize;
    for _ in 0..n {
        while acc + w[i] < u && i + 1 < w.len() {
            acc += w[i];
            i += 1;
        }
        out.push(i);
        u += step;
    }
    Some(out)
}

/// Effective sample size of a weight vector, `(Σw)² / Σw²`.
///
/// Ranges from 1 (complete degeneracy: one particle carries everything) to
/// `weights.len()` (uniform weights). Returns 0 for empty or all-zero
/// weights.
///
/// ```
/// let ess = ecripse_stats::effective_sample_size(&[1.0, 1.0, 1.0, 1.0]);
/// assert!((ess - 4.0).abs() < 1e-12);
/// ```
pub fn effective_sample_size(weights: &[f64]) -> f64 {
    let s: f64 = weights.iter().sum();
    let s2: f64 = weights.iter().map(|w| w * w).sum();
    if s2 == 0.0 {
        0.0
    } else {
        s * s / s2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequency(indices: &[usize], len: usize) -> Vec<f64> {
        let mut f = vec![0.0; len];
        for &i in indices {
            f[i] += 1.0;
        }
        let n = indices.len() as f64;
        for x in &mut f {
            *x /= n;
        }
        f
    }

    #[test]
    fn multinomial_frequencies_match_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = [0.1, 0.4, 0.2, 0.3];
        let idx = multinomial_resample(&mut rng, &w, 100_000).expect("valid weights");
        let f = frequency(&idx, w.len());
        for (fi, wi) in f.iter().zip(&w) {
            assert!((fi - wi).abs() < 0.01, "freq {fi} vs weight {wi}");
        }
    }

    #[test]
    fn systematic_frequencies_match_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = [0.05, 0.55, 0.25, 0.15];
        let idx = systematic_resample(&mut rng, &w, 100_000).expect("valid weights");
        let f = frequency(&idx, w.len());
        for (fi, wi) in f.iter().zip(&w) {
            assert!((fi - wi).abs() < 0.01);
        }
    }

    #[test]
    fn systematic_is_exact_for_uniform_weights() {
        // With uniform weights, systematic resampling copies each index the
        // same number of times (up to ±1).
        let mut rng = StdRng::seed_from_u64(3);
        let w = [1.0; 8];
        let idx = systematic_resample(&mut rng, &w, 64).expect("valid");
        let mut counts = [0usize; 8];
        for i in idx {
            counts[i] += 1;
        }
        for c in counts {
            assert_eq!(c, 8);
        }
    }

    #[test]
    fn systematic_has_lower_variance_than_multinomial() {
        // Replication-count variance of a mid-weight particle over many
        // resampling rounds.
        let w = [0.3, 0.3, 0.2, 0.2];
        let rounds = 2_000;
        let n = 40;
        let mut var = [0.0_f64; 2];
        for (scheme, v) in var.iter_mut().enumerate() {
            let mut rng = StdRng::seed_from_u64(99);
            let mut s = 0.0;
            let mut s2 = 0.0;
            for _ in 0..rounds {
                let idx = if scheme == 0 {
                    systematic_resample(&mut rng, &w, n).expect("valid")
                } else {
                    multinomial_resample(&mut rng, &w, n).expect("valid")
                };
                let c = idx.iter().filter(|&&i| i == 0).count() as f64;
                s += c;
                s2 += c * c;
            }
            let mean = s / rounds as f64;
            *v = s2 / rounds as f64 - mean * mean;
        }
        assert!(
            var[0] < var[1] * 0.5,
            "systematic var {} should beat multinomial var {}",
            var[0],
            var[1]
        );
    }

    #[test]
    fn zero_weight_particle_never_selected() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = [0.5, 0.0, 0.5];
        for _ in 0..100 {
            let idx = systematic_resample(&mut rng, &w, 10).expect("valid");
            assert!(idx.iter().all(|&i| i != 1));
            let idx = multinomial_resample(&mut rng, &w, 10).expect("valid");
            assert!(idx.iter().all(|&i| i != 1));
        }
    }

    #[test]
    fn invalid_weights_return_none() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(systematic_resample(&mut rng, &[0.0, 0.0], 4).is_none());
        assert!(multinomial_resample(&mut rng, &[0.0, 0.0], 4).is_none());
        assert!(systematic_resample(&mut rng, &[1.0, f64::NAN], 4).is_none());
        assert!(multinomial_resample(&mut rng, &[-1.0, 2.0], 4).is_none());
    }

    #[test]
    fn resample_zero_requested_gives_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(systematic_resample(&mut rng, &[1.0], 0)
            .expect("valid")
            .is_empty());
        assert!(multinomial_resample(&mut rng, &[1.0], 0)
            .expect("valid")
            .is_empty());
    }

    #[test]
    fn ess_bounds() {
        assert!((effective_sample_size(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((effective_sample_size(&[5.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(effective_sample_size(&[]), 0.0);
        assert_eq!(effective_sample_size(&[0.0, 0.0]), 0.0);
    }
}
