//! Whitening of correlated Gaussian variability.
//!
//! The paper assumes "the random variables are mutually independent since
//! any set of random variables can be uncorrelated using a transformation
//! called whitening" (Sec. II-A). This module provides that transformation:
//! given a covariance matrix `Σ = L·Lᵀ` (Cholesky), correlated samples
//! `y ~ N(μ, Σ)` map to whitened coordinates `x = L⁻¹(y − μ) ~ N(0, I)`
//! and back. The ECRIPSE algorithms always operate in whitened space.

/// Computes the lower-triangular Cholesky factor `L` of a symmetric
/// positive-definite matrix given in row-major order.
///
/// Returns `None` if the matrix is not positive definite (a non-positive
/// pivot is encountered).
///
/// # Panics
///
/// Panics if `a.len() != dim * dim`.
pub fn cholesky(a: &[f64], dim: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), dim * dim, "matrix size mismatch");
    let mut l = vec![0.0; dim * dim];
    for i in 0..dim {
        for j in 0..=i {
            let mut sum = a[i * dim + j];
            for k in 0..j {
                sum -= l[i * dim + k] * l[j * dim + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * dim + j] = sum.sqrt();
            } else {
                l[i * dim + j] = sum / l[j * dim + j];
            }
        }
    }
    Some(l)
}

/// A whitening transform for a Gaussian with mean `μ` and covariance
/// `Σ = L·Lᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Whitener {
    mean: Vec<f64>,
    /// Lower-triangular Cholesky factor, row-major.
    chol: Vec<f64>,
    dim: usize,
}

impl Whitener {
    /// Builds a whitener from a mean vector and a row-major covariance
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns `None` if the covariance is not positive definite.
    ///
    /// # Panics
    ///
    /// Panics if `cov.len() != mean.len()²`.
    pub fn from_covariance(mean: Vec<f64>, cov: &[f64]) -> Option<Self> {
        let dim = mean.len();
        let chol = cholesky(cov, dim)?;
        Some(Self { mean, chol, dim })
    }

    /// Builds a whitener for independent (diagonal) variability with the
    /// given per-axis standard deviations — the common SRAM case where each
    /// transistor's ΔVth is independent with its own Pelgrom sigma.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is not strictly positive.
    pub fn from_sigmas(mean: Vec<f64>, sigmas: &[f64]) -> Self {
        assert_eq!(mean.len(), sigmas.len(), "mean/sigma length mismatch");
        assert!(
            sigmas.iter().all(|s| *s > 0.0 && s.is_finite()),
            "sigmas must be positive"
        );
        let dim = mean.len();
        let mut chol = vec![0.0; dim * dim];
        for (i, s) in sigmas.iter().enumerate() {
            chol[i * dim + i] = *s;
        }
        Self { mean, chol, dim }
    }

    /// Dimensionality of the transform.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maps a physical-space point `y` to whitened coordinates
    /// `x = L⁻¹(y − μ)` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim`.
    pub fn whiten(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.dim, "whiten dimension mismatch");
        let mut x = vec![0.0; self.dim];
        for i in 0..self.dim {
            let mut sum = y[i] - self.mean[i];
            for (k, xv) in x.iter().enumerate().take(i) {
                sum -= self.chol[i * self.dim + k] * xv;
            }
            x[i] = sum / self.chol[i * self.dim + i];
        }
        x
    }

    /// Maps whitened coordinates back to physical space, `y = μ + L·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim`.
    pub fn unwhiten(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "unwhiten dimension mismatch");
        let mut y = self.mean.clone();
        for (i, yi) in y.iter_mut().enumerate() {
            for (k, xv) in x.iter().enumerate().take(i + 1) {
                *yi += self.chol[i * self.dim + k] * xv;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::NormalSampler;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mat_mul_t(l: &[f64], dim: usize) -> Vec<f64> {
        let mut a = vec![0.0; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                for k in 0..dim {
                    a[i * dim + j] += l[i * dim + k] * l[j * dim + k];
                }
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = [4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0];
        let l = cholesky(&a, 3).expect("pd matrix");
        let back = mat_mul_t(&l, 3);
        for (x, y) in a.iter().zip(&back) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(cholesky(&a, 2).is_none());
    }

    #[test]
    fn whiten_round_trip() {
        let cov = [2.0, 0.5, 0.1, 0.5, 1.5, -0.2, 0.1, -0.2, 0.8];
        let w = Whitener::from_covariance(vec![1.0, -2.0, 0.3], &cov).expect("pd");
        let y = [0.7, 0.1, -1.4];
        let back = w.unwhiten(&w.whiten(&y));
        for (a, b) in y.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn whitened_samples_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(101);
        let mut ns = NormalSampler::new();
        let cov = [1.0, 0.8, 0.8, 1.0];
        let w = Whitener::from_covariance(vec![3.0, -1.0], &cov).expect("pd");
        // Generate correlated samples via unwhiten, then re-whiten and check
        // the empirical covariance is the identity.
        let n = 100_000;
        let mut s = [0.0; 2];
        let mut s2 = [0.0; 3]; // xx, yy, xy
        for _ in 0..n {
            let z = [ns.sample(&mut rng), ns.sample(&mut rng)];
            let y = w.unwhiten(&z);
            let x = w.whiten(&y);
            s[0] += x[0];
            s[1] += x[1];
            s2[0] += x[0] * x[0];
            s2[1] += x[1] * x[1];
            s2[2] += x[0] * x[1];
        }
        let n = n as f64;
        assert!((s[0] / n).abs() < 0.02);
        assert!((s[1] / n).abs() < 0.02);
        assert!((s2[0] / n - 1.0).abs() < 0.02);
        assert!((s2[1] / n - 1.0).abs() < 0.02);
        assert!((s2[2] / n).abs() < 0.02);
    }

    #[test]
    fn diagonal_whitener_scales_by_sigma() {
        let w = Whitener::from_sigmas(vec![0.0, 0.0], &[0.0228, 0.0161]);
        let x = w.whiten(&[0.0456, -0.0322]);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn property_round_trip_random_spd() {
        // Lightweight hand-rolled property test: random SPD = MᵀM + dI.
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let dim = rng.gen_range(1..6usize);
            let mut m = vec![0.0; dim * dim];
            for v in &mut m {
                *v = rng.gen_range(-1.0..1.0);
            }
            let mut a = vec![0.0; dim * dim];
            for i in 0..dim {
                for j in 0..dim {
                    for k in 0..dim {
                        a[i * dim + j] += m[k * dim + i] * m[k * dim + j];
                    }
                }
                a[i * dim + i] += 0.5;
            }
            let mean: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let w = Whitener::from_covariance(mean, &a).expect("spd by construction");
            let y: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let back = w.unwhiten(&w.whiten(&y));
            for (p, q) in y.iter().zip(&back) {
                assert!((p - q).abs() < 1e-10);
            }
        }
    }
}
