//! Estimators and confidence intervals.
//!
//! Three estimators appear in the paper's evaluation:
//!
//! * the naive Monte Carlo estimate of Eq. 2 (a binomial proportion —
//!   [`WilsonInterval`] gives its 95 % CI, the black bands of Fig. 7);
//! * the importance-sampling estimate of Eq. 19
//!   ([`WeightedIsEstimator`]), whose CI comes from the CLT on the weighted
//!   samples and whose *relative error* (CI half-width over the estimate)
//!   is the y-axis of Fig. 6(b);
//! * generic streaming moments ([`RunningStats`]) used throughout for
//!   diagnostics.

use serde::{Deserialize, Serialize};

/// Two-sided 95 % z-value.
pub const Z95: f64 = 1.959_963_984_540_054;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use ecripse_stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.variance() / self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95 % CLT confidence interval on the mean.
    pub fn ci95_half_width(&self) -> f64 {
        Z95 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Wilson score interval for a binomial proportion — the correct 95 % CI
/// for naive Monte Carlo pass/fail counting, and much better behaved than
/// the Wald interval when failures are rare.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilsonInterval {
    /// Point estimate `k/n`.
    pub estimate: f64,
    /// Lower bound of the 95 % interval.
    pub lo: f64,
    /// Upper bound of the 95 % interval.
    pub hi: f64,
}

impl WilsonInterval {
    /// Computes the interval for `k` successes in `n` trials.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k > n`.
    pub fn from_counts(k: u64, n: u64) -> Self {
        assert!(n > 0, "Wilson interval needs at least one trial");
        assert!(k <= n, "more successes than trials");
        let nf = n as f64;
        let p = k as f64 / nf;
        let z2 = Z95 * Z95;
        let denom = 1.0 + z2 / nf;
        let centre = (p + z2 / (2.0 * nf)) / denom;
        let half = Z95 * ((p * (1.0 - p) + z2 / (4.0 * nf)) / nf).sqrt() / denom;
        // Exact endpoints when the count is degenerate; the formula can
        // leave ±1e-19 rounding residue there.
        let lo = if k == 0 {
            0.0
        } else {
            (centre - half).max(0.0)
        };
        let hi = if k == n {
            1.0
        } else {
            (centre + half).min(1.0)
        };
        Self {
            estimate: p,
            lo,
            hi,
        }
    }

    /// Relative error: CI half-width divided by the point estimate
    /// (infinite when the estimate is zero).
    pub fn relative_error(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            0.5 * (self.hi - self.lo) / self.estimate
        }
    }
}

/// The importance-sampling estimator of Eq. 19.
///
/// Accumulates terms `yₖ = P̂_failᴿᵀᴺ(xₖ) · P(xₖ)/Q̂(xₖ)`; the estimate is
/// their mean, and the 95 % CI follows from the CLT on the `yₖ`. The
/// *relative error* reported matches the paper's definition: "the ratio of
/// the 95 % confidence interval to the estimated failure probability"
/// (Fig. 6(b)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedIsEstimator {
    stats: RunningStats,
    /// Running sum of weights, for diagnostics (weight degeneracy).
    weight_sum: f64,
    weight_sq_sum: f64,
}

impl WeightedIsEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one IS term: `indicator_value` ∈ [0, 1] (a probability when the
    /// inner RTN loop is used, 0/1 for a deterministic indicator) and the
    /// likelihood ratio `weight = P(x)/Q̂(x)`.
    ///
    /// # Panics
    ///
    /// Panics if the weight is negative or non-finite.
    pub fn push(&mut self, indicator_value: f64, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "IS weight must be non-negative and finite, got {weight}"
        );
        self.stats.push(indicator_value * weight);
        self.weight_sum += weight;
        self.weight_sq_sum += weight * weight;
    }

    /// Number of accumulated samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Current failure-probability estimate (Eq. 19).
    pub fn estimate(&self) -> f64 {
        self.stats.mean()
    }

    /// Half-width of the 95 % confidence interval.
    pub fn ci95_half_width(&self) -> f64 {
        self.stats.ci95_half_width()
    }

    /// The paper's relative error: 95 % CI half-width over the estimate.
    /// Infinite while the estimate is zero.
    pub fn relative_error(&self) -> f64 {
        let est = self.estimate();
        if est <= 0.0 {
            f64::INFINITY
        } else {
            self.ci95_half_width() / est
        }
    }

    /// Effective sample size implied by the weight spread,
    /// `(Σw)²/Σw²` — a degeneracy diagnostic for the alternative
    /// distribution.
    pub fn effective_sample_size(&self) -> f64 {
        if self.weight_sq_sum == 0.0 {
            0.0
        } else {
            self.weight_sum * self.weight_sum / self.weight_sq_sum
        }
    }

    /// Merges another estimator (parallel accumulation).
    pub fn merge(&mut self, other: &WeightedIsEstimator) {
        self.stats.merge(&other.stats);
        self.weight_sum += other.weight_sum;
        self.weight_sq_sum += other.weight_sq_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_matches_direct_formulas() {
        let xs = [0.2, -1.3, 4.5, 2.2, 0.0, -0.7];
        let s: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert!((s.std_error() - (var / n).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_equals_concatenation() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, -5.0, 0.5, 7.0];
        let mut sa: RunningStats = a.iter().copied().collect();
        let sb: RunningStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: RunningStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-12);
        assert!((sa.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_merge_with_empty_is_identity() {
        let mut s: RunningStats = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let w = WilsonInterval::from_counts(13, 10_000);
        assert!(w.lo < w.estimate && w.estimate < w.hi);
        assert!((w.estimate - 13.0 / 10_000.0).abs() < 1e-15);
    }

    #[test]
    fn wilson_interval_zero_successes_has_positive_upper_bound() {
        let w = WilsonInterval::from_counts(0, 1_000);
        assert_eq!(w.estimate, 0.0);
        assert_eq!(w.lo, 0.0);
        assert!(w.hi > 0.0 && w.hi < 0.01);
        assert!(w.relative_error().is_infinite());
    }

    #[test]
    fn wilson_interval_narrows_with_more_trials() {
        let small = WilsonInterval::from_counts(10, 1_000);
        let large = WilsonInterval::from_counts(1_000, 100_000);
        assert!(large.relative_error() < small.relative_error());
    }

    #[test]
    fn wilson_interval_known_value() {
        // k = 50, n = 100: Wilson centre = 0.5, half ≈ 0.0958 (z = 1.96).
        let w = WilsonInterval::from_counts(50, 100);
        assert!((w.lo - 0.404).abs() < 0.005, "lo = {}", w.lo);
        assert!((w.hi - 0.596).abs() < 0.005, "hi = {}", w.hi);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_rejects_zero_trials() {
        let _ = WilsonInterval::from_counts(0, 0);
    }

    #[test]
    fn is_estimator_equal_weights_reduces_to_plain_mean() {
        let mut e = WeightedIsEstimator::new();
        let vals = [1.0, 0.0, 0.0, 1.0, 0.0];
        for v in vals {
            e.push(v, 1.0);
        }
        assert!((e.estimate() - 0.4).abs() < 1e-12);
        assert!((e.effective_sample_size() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn is_estimator_relative_error_shrinks_as_sqrt_n() {
        // Alternate deterministic values; rel. err ∝ 1/√n.
        let mut small = WeightedIsEstimator::new();
        let mut large = WeightedIsEstimator::new();
        for i in 0..100 {
            small.push((i % 2) as f64, 1.0);
        }
        for i in 0..10_000 {
            large.push((i % 2) as f64, 1.0);
        }
        let ratio = small.relative_error() / large.relative_error();
        assert!((ratio - 10.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn is_estimator_merge_equals_sequential() {
        let mut a = WeightedIsEstimator::new();
        let mut b = WeightedIsEstimator::new();
        let mut all = WeightedIsEstimator::new();
        let data = [(1.0, 0.2), (0.0, 3.0), (1.0, 1.5), (0.5, 0.9)];
        for (i, &(v, w)) in data.iter().enumerate() {
            if i % 2 == 0 {
                a.push(v, w);
            } else {
                b.push(v, w);
            }
            all.push(v, w);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.estimate() - all.estimate()).abs() < 1e-12);
        assert!((a.effective_sample_size() - all.effective_sample_size()).abs() < 1e-12);
    }

    #[test]
    fn is_estimator_degenerate_weights_reduce_ess() {
        let mut e = WeightedIsEstimator::new();
        e.push(1.0, 1000.0);
        for _ in 0..99 {
            e.push(1.0, 0.001);
        }
        assert!(e.effective_sample_size() < 1.1);
    }

    #[test]
    #[should_panic(expected = "IS weight must be non-negative")]
    fn is_estimator_rejects_negative_weight() {
        let mut e = WeightedIsEstimator::new();
        e.push(1.0, -0.5);
    }
}
