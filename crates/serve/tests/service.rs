//! End-to-end tests driving a real server on an ephemeral loopback
//! port: the bit-identity contract (a served job equals the direct
//! library call), backpressure (429 + `Retry-After`), the job
//! lifecycle, and graceful shutdown (drain + persisted sweep
//! checkpoints that resume bit-identically).

use ecripse_core::bench::{LinearBench, Testbench};
use ecripse_core::ecripse::{Ecripse, EcripseConfig};
use ecripse_core::importance::ImportanceConfig;
use ecripse_core::initial::InitialSearchConfig;
use ecripse_core::rtn_source::SramRtn;
use ecripse_core::scenario::Scenario;
use ecripse_core::sweep::{DutySweep, SweepBench, SweepOptions};
use ecripse_serve::protocol::{JobSpec, JobState, SubmitRequest, PROTOCOL_VERSION};
use ecripse_serve::{http, BackoffPolicy, Client, ClientError, ServeConfig, Server};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn tiny_config(seed: u64) -> EcripseConfig {
    EcripseConfig {
        initial: InitialSearchConfig {
            count: 12,
            max_attempts: 2000,
            ..InitialSearchConfig::default()
        },
        iterations: 3,
        importance: ImportanceConfig {
            n_samples: 250,
            m_rtn: 4,
            trace_every: 0,
        },
        m_rtn_stage1: 2,
        seed,
        ..EcripseConfig::default()
    }
}

fn linear_bench() -> LinearBench {
    LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.5)
}

/// A bench whose evaluations block until the gate opens — the handle
/// the backpressure and shutdown tests use to keep a job in flight.
#[derive(Clone)]
struct GateBench {
    inner: LinearBench,
    gate: Arc<AtomicBool>,
}

impl GateBench {
    fn new(gate: Arc<AtomicBool>) -> Self {
        Self {
            inner: linear_bench(),
            gate,
        }
    }
}

impl Testbench for GateBench {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn fails(&self, z: &[f64]) -> bool {
        while !self.gate.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.fails(z)
    }
}

impl SweepBench for GateBench {
    fn sigmas(&self) -> [f64; 6] {
        SweepBench::sigmas(&self.inner)
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecripse-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn wait_until_running(client: &Client, id: u64) {
    for _ in 0..2000 {
        let status = client.status(id).expect("status while waiting");
        if status.state == JobState::Running {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("job {id} never started running");
}

#[test]
fn served_jobs_are_bit_identical_to_direct_runs() {
    let server = Server::bind_with("127.0.0.1:0", ServeConfig::default(), |_scenario, _vdd| {
        linear_bench()
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());
    client.handshake().expect("protocol handshake");

    // RDF-only estimate, served twice: the second run hits the warm
    // process-wide cache yet must return the exact same report.
    let request = SubmitRequest::new(tiny_config(42), JobSpec::rdf_only(1.0));
    let (direct_result, mut direct_report) = Ecripse::new(tiny_config(42), linear_bench())
        .estimate_report()
        .expect("direct estimate");
    direct_report.strip_timings();
    for round in 0..2 {
        let submitted = client.submit(&request).expect("submit");
        let report = client
            .wait_for_report(submitted.id, WAIT)
            .expect("served report");
        assert_eq!(report.state, JobState::Completed);
        let outcome = report.estimate.expect("estimate outcome");
        assert_eq!(outcome.p_fail, direct_result.p_fail, "round {round}");
        assert_eq!(outcome.ci95_half_width, direct_result.ci95_half_width);
        assert_eq!(outcome.simulations, direct_result.simulations);
        assert_eq!(outcome.is_samples, direct_result.is_samples);
        let mut served_report = outcome.report;
        served_report.strip_timings();
        assert_eq!(
            served_report, direct_report,
            "served run must be bit-identical to the direct library call (round {round})"
        );
    }
    assert!(
        server.cache().hits() > 0,
        "the second served run must hit the shared verdict cache"
    );

    // RTN-aware estimate at one duty ratio.
    let request = SubmitRequest::new(tiny_config(7), JobSpec::estimate(1.0, 0.3));
    let submitted = client.submit(&request).expect("submit rtn job");
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("served rtn report");
    let outcome = report.estimate.expect("rtn outcome");
    let rtn = SramRtn::paper_model(0.3, SweepBench::sigmas(&linear_bench()));
    let direct = Ecripse::with_rtn(tiny_config(7), linear_bench(), rtn)
        .estimate()
        .expect("direct rtn estimate");
    assert_eq!(outcome.p_fail, direct.p_fail);
    assert_eq!(outcome.simulations, direct.simulations);

    // Sweep job against the direct sweep driver.
    let alphas = vec![0.0, 0.5, 1.0];
    let request = SubmitRequest::new(tiny_config(9), JobSpec::sweep(1.0, alphas.clone()));
    let submitted = client.submit(&request).expect("submit sweep");
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("served sweep report");
    let outcome = report.sweep.expect("sweep outcome");
    let direct = DutySweep::new(tiny_config(9), linear_bench(), alphas)
        .run()
        .expect("direct sweep");
    assert_eq!(outcome.points, direct.points);
    assert_eq!(outcome.p_fail_rdf_only, direct.p_fail_rdf_only);
    assert_eq!(outcome.total_simulations, direct.total_simulations);

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.completed, 4);
    assert_eq!(metrics.failed, 0);
    assert!(metrics.cache_hits > 0);
    assert!(metrics.oracle.simulated > 0);
    server.shutdown();
}

#[test]
fn full_queue_yields_429_with_retry_after() {
    let gate = Arc::new(AtomicBool::new(false));
    let factory_gate = Arc::clone(&gate);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, move |_scenario, _vdd| {
        GateBench::new(Arc::clone(&factory_gate))
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());

    let request = SubmitRequest::new(tiny_config(1), JobSpec::rdf_only(1.0));
    let first = client.submit(&request).expect("first job accepted");
    wait_until_running(&client, first.id);
    let second = client.submit(&request).expect("second job queued");
    assert_eq!(second.queue_position, Some(0));

    // Queue full: the typed client surfaces Busy with the server hint…
    match client.submit(&request) {
        Err(ClientError::Busy {
            retry_after_seconds,
        }) => assert!(retry_after_seconds >= 1),
        other => panic!("expected Busy, got {other:?}"),
    }
    // …and on the raw wire it is a 429 with a Retry-After header.
    let body = serde_json::to_string(&request).expect("serialise");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect for raw 429 check");
    http::write_request(&mut stream, "POST", "/v1/jobs", Some(&body)).expect("write");
    let (status, headers, _) = http::read_response(&mut stream).expect("read");
    assert_eq!(status, 429);
    let retry_after = headers
        .iter()
        .find(|(name, _)| name == "retry-after")
        .map(|(_, value)| value.parse::<u64>().expect("numeric Retry-After"))
        .expect("429 must carry a Retry-After header");
    assert!(retry_after >= 1);

    // Open the gate: the backlog drains and new submissions are
    // accepted again.
    gate.store(true, Ordering::SeqCst);
    client.wait(first.id, WAIT).expect("first job finishes");
    client.wait(second.id, WAIT).expect("second job finishes");
    let third = client.submit(&request).expect("queue has space again");
    client.wait(third.id, WAIT).expect("third job finishes");

    let metrics = client.metrics().expect("metrics");
    assert!(metrics.rejected >= 2);
    assert_eq!(metrics.completed, 3);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_and_persists_queued_sweeps() {
    let spool = scratch_dir("spool");
    let gate = Arc::new(AtomicBool::new(false));
    let factory_gate = Arc::clone(&gate);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 8,
        spool: Some(spool.clone()),
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, move |_scenario, _vdd| {
        GateBench::new(Arc::clone(&factory_gate))
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());

    // Job 1 runs (blocked on the gate), job 2 is a queued sweep, job 3
    // a queued estimate.
    let estimate = SubmitRequest::new(tiny_config(5), JobSpec::rdf_only(1.0));
    let alphas = vec![0.0, 0.5, 1.0];
    let sweep = SubmitRequest::new(tiny_config(6), JobSpec::sweep(1.0, alphas.clone()));
    let running = client.submit(&estimate).expect("submit running job");
    wait_until_running(&client, running.id);
    let queued_sweep = client.submit(&sweep).expect("submit queued sweep");
    let queued_estimate = client.submit(&estimate).expect("submit queued estimate");

    // Open the gate shortly after the drain starts, then shut down.
    let opener = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            gate.store(true, Ordering::SeqCst);
        })
    };
    let summary = server.shutdown();
    opener.join().expect("gate opener");
    assert_eq!(summary.drained, 1, "the in-flight job must be drained");
    assert_eq!(summary.persisted, 1, "the queued sweep must be persisted");
    assert_eq!(summary.cancelled, 1, "the queued estimate is cancelled");
    let _ = queued_estimate;

    // The persisted checkpoint resumes bit-identically through the
    // ordinary core sweep driver (the served config, the same grid).
    let checkpoint = spool.join(format!("job-{}.json", queued_sweep.id));
    assert!(checkpoint.exists(), "persisted sweep checkpoint missing");
    let resumed = DutySweep::new(tiny_config(6), linear_bench(), alphas.clone())
        .run_resumable(&SweepOptions {
            checkpoint: Some(checkpoint),
            resume: true,
            keep_going: false,
        })
        .expect("resume persisted sweep");
    let (resumed_result, _) = resumed.into_parts().expect("resumed parts");
    let baseline = DutySweep::new(tiny_config(6), linear_bench(), alphas)
        .run()
        .expect("baseline sweep");
    assert_eq!(
        resumed_result, baseline,
        "resuming the persisted checkpoint must be bit-identical"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn job_lifecycle_cancel_and_errors() {
    let gate = Arc::new(AtomicBool::new(false));
    let factory_gate = Arc::clone(&gate);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, move |_scenario, _vdd| {
        GateBench::new(Arc::clone(&factory_gate))
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());
    let request = SubmitRequest::new(tiny_config(3), JobSpec::rdf_only(1.0));

    let running = client.submit(&request).expect("running job");
    wait_until_running(&client, running.id);
    let queued = client.submit(&request).expect("queued job");

    // A queued job cancels cleanly; a second cancel conflicts.
    let cancelled = client.cancel(queued.id).expect("cancel queued job");
    assert_eq!(cancelled.state, JobState::Cancelled);
    // Cancelled is terminal: the report endpoint serves it (without a
    // payload) instead of claiming the job is still pending.
    let report = client.report(queued.id).expect("cancelled job's report");
    assert_eq!(report.state, JobState::Cancelled);
    assert!(report.estimate.is_none() && report.sweep.is_none());
    match client.cancel(queued.id) {
        Err(ClientError::Api {
            status: 409, code, ..
        }) => assert_eq!(code, "conflict"),
        other => panic!("expected conflict on double cancel, got {other:?}"),
    }
    // A running job's report is not ready yet.
    match client.report(running.id) {
        Err(ClientError::Api {
            status: 409, code, ..
        }) => assert_eq!(code, "not_ready"),
        other => panic!("expected 409 for a running job's report, got {other:?}"),
    }
    // Unknown ids are 404s.
    match client.status(999) {
        Err(ClientError::Api {
            status: 404, code, ..
        }) => assert_eq!(code, "unknown_job"),
        other => panic!("expected 404, got {other:?}"),
    }
    match client.report(999) {
        Err(ClientError::Api { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }

    // Cancelling a running job is cooperative: acknowledged while still
    // running, drained to `cancelled` once the pipeline hits its next
    // interruption point (the gate is holding it inside an evaluation).
    let acknowledged = client.cancel(running.id).expect("cancel running job");
    assert_eq!(acknowledged.state, JobState::Running);
    gate.store(true, Ordering::SeqCst);
    match client.wait(running.id, WAIT) {
        Err(ClientError::Cancelled { id }) => assert_eq!(id, running.id),
        other => panic!("expected the cancelled error, got {other:?}"),
    }
    let done = client.status(running.id).expect("drained status");
    assert_eq!(done.state, JobState::Cancelled);
    assert_eq!(done.error.as_deref(), Some("cancelled while running"));
    match client.cancel(running.id) {
        Err(ClientError::Api { status: 409, .. }) => {}
        other => panic!("expected conflict cancelling a drained job, got {other:?}"),
    }

    // A fresh job (gate now open) completes; cancelling it conflicts.
    let finished = client.submit(&request).expect("third job");
    let done = client.wait(finished.id, WAIT).expect("job finishes");
    assert_eq!(done.state, JobState::Completed);
    match client.cancel(finished.id) {
        Err(ClientError::Api { status: 409, .. }) => {}
        other => panic!("expected conflict cancelling a completed job, got {other:?}"),
    }
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.cancelled, 2);
    assert_eq!(metrics.cancelled_queued, 1);
    assert_eq!(metrics.cancelled_running, 1);
    assert_eq!(metrics.completed, 1);
    server.shutdown();
}

#[test]
fn restarted_server_serves_from_the_persistent_store() {
    let dir = scratch_dir("store");
    let store = dir.join("verdicts.json");
    let request = SubmitRequest::new(tiny_config(42), JobSpec::rdf_only(1.0));
    let config = || ServeConfig {
        cache_store: Some(store.clone()),
        ..ServeConfig::default()
    };

    // First process: run a job cold, persist the verdicts on shutdown.
    let first =
        Server::bind_with("127.0.0.1:0", config(), |_scenario, _vdd| linear_bench()).expect("bind");
    let client = Client::new(first.local_addr().to_string());
    assert_eq!(first.metrics().cache_loaded_entries, 0, "no store yet");
    let submitted = client.submit(&request).expect("submit cold job");
    let cold = client
        .wait_for_report(submitted.id, WAIT)
        .expect("cold report");
    let entries = first.cache().len();
    assert!(entries > 0, "the cold run must populate the cache");
    first.shutdown();
    assert!(store.exists(), "shutdown must write the verdict store");

    // Second process: starts warm from the store and serves the same
    // job bit-identically with every verdict answered from the cache.
    let second =
        Server::bind_with("127.0.0.1:0", config(), |_scenario, _vdd| linear_bench()).expect("bind");
    let client = Client::new(second.local_addr().to_string());
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.cache_loaded_entries, entries as u64);
    assert_eq!(metrics.cache_entries, entries as u64);
    let submitted = client.submit(&request).expect("submit warm job");
    let warm = client
        .wait_for_report(submitted.id, WAIT)
        .expect("warm report");
    let cold_outcome = cold.estimate.expect("cold outcome");
    let warm_outcome = warm.estimate.expect("warm outcome");
    assert_eq!(warm_outcome.p_fail, cold_outcome.p_fail);
    assert_eq!(warm_outcome.simulations, cold_outcome.simulations);
    assert_eq!(
        second.cache().misses(),
        0,
        "a restored store must answer every repeat verdict"
    );
    second.shutdown();

    // Third process: a corrupted store is ignored, the server starts
    // cold instead of serving garbage.
    std::fs::write(&store, b"{ not a snapshot").expect("corrupt the store");
    let third =
        Server::bind_with("127.0.0.1:0", config(), |_scenario, _vdd| linear_bench()).expect("bind");
    assert_eq!(third.metrics().cache_loaded_entries, 0);
    assert!(third.cache().is_empty());
    third.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenarios_never_share_verdicts_across_a_restart() {
    let dir = scratch_dir("scenario-store");
    let store = dir.join("verdicts.json");
    let config = || ServeConfig {
        cache_store: Some(store.clone()),
        ..ServeConfig::default()
    };
    // A scenario-aware factory: the hold-snm bench fails at a lower
    // threshold, so misapplied read-snm verdicts would visibly corrupt
    // the estimate.
    let factory = |scenario: Scenario, _vdd: f64| {
        let threshold = match scenario {
            Scenario::HoldSnm => 2.5,
            _ => 3.5,
        };
        LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], threshold)
    };
    let read_request = SubmitRequest::new(tiny_config(42), JobSpec::rdf_only(1.0));
    let hold_request =
        SubmitRequest::with_scenario(Scenario::HoldSnm, tiny_config(42), JobSpec::rdf_only(1.0));

    // First process: a read-snm job populates and persists the cache.
    let first = Server::bind_with("127.0.0.1:0", config(), factory).expect("bind");
    let client = Client::new(first.local_addr().to_string());
    let submitted = client.submit(&read_request).expect("submit read-snm");
    assert_eq!(submitted.scenario, Scenario::ReadSnm);
    let read_cold = client
        .wait_for_report(submitted.id, WAIT)
        .expect("read-snm report");
    assert_eq!(read_cold.scenario, Scenario::ReadSnm);
    let entries = first.cache().len();
    assert!(entries > 0, "the read-snm run must populate the cache");
    first.shutdown();

    // Second process: the restored read-snm verdicts must NOT answer a
    // hold-snm job — its keys carry a different scenario salt, so the
    // job runs cold and reaches its own (different) estimate.
    let second = Server::bind_with("127.0.0.1:0", config(), factory).expect("bind");
    let client = Client::new(second.local_addr().to_string());
    assert_eq!(
        client.metrics().expect("metrics").cache_loaded_entries,
        entries as u64
    );
    let submitted = client.submit(&hold_request).expect("submit hold-snm");
    assert_eq!(submitted.scenario, Scenario::HoldSnm);
    let hold = client
        .wait_for_report(submitted.id, WAIT)
        .expect("hold-snm report");
    assert_eq!(hold.scenario, Scenario::HoldSnm);
    assert!(
        second.cache().misses() > 0,
        "a hold-snm job must not be answered by restored read-snm verdicts"
    );
    let read_p = read_cold.estimate.as_ref().expect("read outcome").p_fail;
    let hold_p = hold.estimate.as_ref().expect("hold outcome").p_fail;
    assert_ne!(
        hold_p, read_p,
        "the lower hold-snm threshold must change the estimate"
    );

    // The same store still serves read-snm warm and bit-identically.
    let misses_before = second.cache().misses();
    let submitted = client.submit(&read_request).expect("resubmit read-snm");
    let read_warm = client
        .wait_for_report(submitted.id, WAIT)
        .expect("warm read-snm report");
    assert_eq!(
        read_warm.estimate.as_ref().expect("warm outcome").p_fail,
        read_p
    );
    assert_eq!(
        second.cache().misses(),
        misses_before,
        "the warm read-snm rerun must be answered entirely from the store"
    );
    let metrics = client.metrics().expect("metrics");
    for entry in &metrics.scenario_jobs {
        let expected = match entry.scenario.as_str() {
            "read-snm" | "hold-snm" => 1,
            _ => 0,
        };
        assert_eq!(
            entry.completed, expected,
            "scenario_jobs miscounts {}",
            entry.scenario
        );
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_and_routing_errors() {
    let server = Server::bind_with("127.0.0.1:0", ServeConfig::default(), |_scenario, _vdd| {
        linear_bench()
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());

    // Wrong protocol version.
    let mut request = SubmitRequest::new(tiny_config(1), JobSpec::rdf_only(1.0));
    request.protocol = PROTOCOL_VERSION + 1;
    match client.submit(&request) {
        Err(ClientError::Api {
            status: 400, code, ..
        }) => assert_eq!(code, "protocol_mismatch"),
        other => panic!("expected protocol_mismatch, got {other:?}"),
    }

    // Inconsistent job spec.
    let request = SubmitRequest::new(tiny_config(1), JobSpec::estimate(1.0, 2.0));
    match client.submit(&request) {
        Err(ClientError::Api {
            status: 400, code, ..
        }) => assert_eq!(code, "invalid_job"),
        other => panic!("expected invalid_job, got {other:?}"),
    }

    // Raw wire-level failures: garbage JSON, bad method, bad path.
    let addr = server.local_addr();
    let raw = |method: &str, path: &str, body: Option<&str>| -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        http::write_request(&mut stream, method, path, body).expect("write");
        let (status, _, body) = http::read_response(&mut stream).expect("read");
        (status, body)
    };
    let (status, body) = raw("POST", "/v1/jobs", Some("{ not json"));
    assert_eq!(status, 400);
    assert!(body.contains("bad_request"));
    let (status, _) = raw("PUT", "/v1/jobs", None);
    assert_eq!(status, 405);
    let (status, _) = raw("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = raw("GET", "/v1/jobs/not-a-number", None);
    assert_eq!(status, 400);

    let health = client.health().expect("healthz");
    assert_eq!(health.status, "ok");
    assert_eq!(health.protocol, PROTOCOL_VERSION);
    server.shutdown();
}

#[test]
fn deadlines_expire_queued_and_running_jobs() {
    let gate = Arc::new(AtomicBool::new(false));
    let factory_gate = Arc::clone(&gate);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, move |_scenario, _vdd| {
        GateBench::new(Arc::clone(&factory_gate))
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());

    // A zero deadline is rejected outright.
    let request = SubmitRequest::new(tiny_config(11), JobSpec::rdf_only(1.0));
    match client.submit(&request.clone().with_deadline_ms(0)) {
        Err(ClientError::Api {
            status: 400, code, ..
        }) => assert_eq!(code, "invalid_deadline"),
        other => panic!("expected invalid_deadline, got {other:?}"),
    }

    // The worker is held by a gated job with a deadline of its own; a
    // second job's tiny budget runs out while it is still queued.
    let running = client
        .submit(&request.clone().with_deadline_ms(60_000))
        .expect("running job");
    wait_until_running(&client, running.id);
    let queued = client
        .submit(&request.clone().with_deadline_ms(50))
        .expect("queued job");
    match client.wait(queued.id, WAIT) {
        Err(ClientError::DeadlineExceeded { id, error }) => {
            assert_eq!(id, queued.id);
            assert!(
                error.as_deref().unwrap_or("").contains("queued"),
                "expiry cause should say the job never started: {error:?}"
            );
        }
        other => panic!("expected the deadline-exceeded error, got {other:?}"),
    }
    // DeadlineExceeded is terminal: the report endpoint serves it.
    let report = client.report(queued.id).expect("expired job's report");
    assert_eq!(report.state, JobState::DeadlineExceeded);

    // Shrink the running job's remaining budget by resubmitting the
    // cheap way: cancel is already covered elsewhere, so instead submit
    // a fresh short-deadline job, let it start, and hold it at the gate
    // past its budget — the watchdog raises the stop flag and the
    // pipeline drains it to deadline-exceeded once the gate opens.
    gate.store(true, Ordering::SeqCst);
    client.wait(running.id, WAIT).expect("first job completes");
    gate.store(false, Ordering::SeqCst);
    let held = client
        .submit(&request.clone().with_deadline_ms(150))
        .expect("short-deadline job");
    wait_until_running(&client, held.id);
    std::thread::sleep(Duration::from_millis(250));
    gate.store(true, Ordering::SeqCst);
    match client.wait(held.id, WAIT) {
        Err(ClientError::DeadlineExceeded { id, error }) => {
            assert_eq!(id, held.id);
            assert!(
                error.as_deref().unwrap_or("").contains("running"),
                "expiry cause should say the job was running: {error:?}"
            );
        }
        other => panic!("expected the deadline-exceeded error, got {other:?}"),
    }

    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.deadline_exceeded, 2);
    assert_eq!(metrics.completed, 1);
    server.shutdown();
}

#[test]
fn journal_recovery_resumes_persisted_sweeps_bit_identically() {
    let dir = scratch_dir("journal-recovery");
    let spool = dir.join("spool");
    std::fs::create_dir_all(&spool).expect("spool dir");
    let journal = dir.join("journal.jsonl");
    let config = || ServeConfig {
        workers: 1,
        queue_capacity: 8,
        spool: Some(spool.clone()),
        journal: Some(journal.clone()),
        ..ServeConfig::default()
    };
    let alphas = vec![0.0, 0.5, 1.0];
    let estimate = SubmitRequest::new(tiny_config(5), JobSpec::rdf_only(1.0));
    let sweep = SubmitRequest::new(tiny_config(6), JobSpec::sweep(1.0, alphas.clone()));

    // First process: one estimate drains, one sweep is persisted.
    let gate = Arc::new(AtomicBool::new(false));
    let factory_gate = Arc::clone(&gate);
    let first = Server::bind_with("127.0.0.1:0", config(), move |_scenario, _vdd| {
        GateBench::new(Arc::clone(&factory_gate))
    })
    .expect("bind first");
    let client = Client::new(first.local_addr().to_string());
    let running = client.submit(&estimate).expect("running job");
    wait_until_running(&client, running.id);
    let queued_sweep = client.submit(&sweep).expect("queued sweep");
    let opener = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            gate.store(true, Ordering::SeqCst);
        })
    };
    let summary = first.shutdown();
    opener.join().expect("gate opener");
    assert_eq!(summary.persisted, 1, "the queued sweep must be persisted");

    // Second process, same journal + spool: the sweep comes back under
    // its original id, resumes from its checkpoint, and completes with
    // a result bit-identical to an uninterrupted direct run.
    let second = Server::bind_with("127.0.0.1:0", config(), |_scenario, _vdd| {
        GateBench::new(Arc::new(AtomicBool::new(true)))
    })
    .expect("bind second");
    let client = Client::new(second.local_addr().to_string());
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.recovered, 1, "exactly the sweep is re-enqueued");
    let report = client
        .wait_for_report(queued_sweep.id, WAIT)
        .expect("recovered sweep report");
    assert_eq!(report.id, queued_sweep.id, "original id survives recovery");
    assert_eq!(report.state, JobState::Completed);
    let outcome = report.sweep.expect("sweep outcome");
    let direct = DutySweep::new(tiny_config(6), linear_bench(), alphas)
        .run()
        .expect("direct sweep");
    assert_eq!(outcome.points, direct.points);
    assert_eq!(outcome.p_fail_rdf_only, direct.p_fail_rdf_only);
    assert_eq!(outcome.total_simulations, direct.total_simulations);

    // The drained estimate finished keyless in the first process, so
    // compaction dropped it: the second process never heard of it.
    match client.status(running.id) {
        Err(ClientError::Api { status: 404, .. }) => {}
        other => panic!("expected 404 for the compacted-away job, got {other:?}"),
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idempotency_keys_dedup_within_and_across_restarts() {
    let dir = scratch_dir("idempotency");
    let journal = dir.join("journal.jsonl");
    let config = || ServeConfig {
        journal: Some(journal.clone()),
        ..ServeConfig::default()
    };
    let request = SubmitRequest::new(tiny_config(12), JobSpec::rdf_only(1.0))
        .with_idempotency_key("sweep-2026-08/row-17");

    let first =
        Server::bind_with("127.0.0.1:0", config(), |_scenario, _vdd| linear_bench()).expect("bind");
    let client = Client::new(first.local_addr().to_string());
    // An empty key is rejected, not silently deduplicated-by-nothing.
    match client.submit(&request.clone().with_idempotency_key("")) {
        Err(ClientError::Api {
            status: 400, code, ..
        }) => assert_eq!(code, "invalid_idempotency_key"),
        other => panic!("expected invalid_idempotency_key, got {other:?}"),
    }
    let original = client.submit(&request).expect("first submission");
    let retried = client.submit(&request).expect("retried submission");
    assert_eq!(retried.id, original.id, "same key, same job");
    client.wait(original.id, WAIT).expect("job completes");
    let after_completion = client.submit(&request).expect("post-completion retry");
    assert_eq!(after_completion.id, original.id);
    assert_eq!(after_completion.state, JobState::Completed);
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.submitted, 1, "retries never enqueue duplicates");
    assert_eq!(metrics.idempotent_hits, 2);
    first.shutdown();

    // The key rides in the journal: a retry against the restarted
    // process still answers with the original job id.
    let second =
        Server::bind_with("127.0.0.1:0", config(), |_scenario, _vdd| linear_bench()).expect("bind");
    let client = Client::new(second.local_addr().to_string());
    let across_restart = client.submit(&request).expect("retry after restart");
    assert_eq!(across_restart.id, original.id);
    assert_eq!(across_restart.state, JobState::Completed);
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.submitted, 0);
    assert_eq!(metrics.idempotent_hits, 1);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readyz_reflects_queue_saturation() {
    let gate = Arc::new(AtomicBool::new(false));
    let factory_gate = Arc::clone(&gate);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, move |_scenario, _vdd| {
        GateBench::new(Arc::clone(&factory_gate))
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());

    let readiness = client.readiness().expect("initial readiness");
    assert!(readiness.ready);
    assert_eq!(readiness.status, "ready");
    assert_eq!(readiness.protocol, PROTOCOL_VERSION);

    // Fill the worker and the queue: liveness stays green (the process
    // is fine) while readiness flips to saturated.
    let request = SubmitRequest::new(tiny_config(13), JobSpec::rdf_only(1.0));
    let running = client.submit(&request).expect("running job");
    wait_until_running(&client, running.id);
    let queued = client.submit(&request).expect("queued job");
    let readiness = client.readiness().expect("saturated readiness");
    assert!(!readiness.ready);
    assert_eq!(readiness.status, "saturated");
    assert_eq!(client.health().expect("healthz").status, "ok");

    gate.store(true, Ordering::SeqCst);
    client.wait(running.id, WAIT).expect("first finishes");
    client.wait(queued.id, WAIT).expect("second finishes");
    let readiness = client.readiness().expect("readiness after drain");
    assert!(readiness.ready);
    server.shutdown();
}

#[test]
fn half_written_requests_are_bounded_by_the_connection_lifetime() {
    use std::io::{Read as _, Write as _};

    let config = ServeConfig {
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(200),
        connection_lifetime: Duration::from_millis(400),
        ..ServeConfig::default()
    };
    let server =
        Server::bind_with("127.0.0.1:0", config, |_scenario, _vdd| linear_bench()).expect("bind");
    let addr = server.local_addr();

    // A slow-loris client: declares a body it never sends. The read
    // timeout must cut it loose instead of pinning a handler thread.
    let started = std::time::Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 4096\r\n\r\n{\"proto")
        .expect("half-write");
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink); // 400 or a plain close — either is fine
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "server held a half-written connection too long: {:?}",
        started.elapsed()
    );

    // The server is unharmed and still answering.
    let client = Client::new(addr.to_string());
    assert_eq!(client.health().expect("healthz").status, "ok");
    server.shutdown();
}

#[test]
fn retrying_client_rides_out_backpressure_and_reports_total_wait() {
    let gate = Arc::new(AtomicBool::new(false));
    let factory_gate = Arc::clone(&gate);
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, move |_scenario, _vdd| {
        GateBench::new(Arc::clone(&factory_gate))
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let plain = Client::new(addr.clone());
    let retrying = Client::new(addr.clone()).with_retry(BackoffPolicy {
        max_attempts: 60,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(100),
    });

    let request = SubmitRequest::new(tiny_config(14), JobSpec::rdf_only(1.0));
    let running = plain.submit(&request).expect("running job");
    wait_until_running(&plain, running.id);
    let queued = plain.submit(&request).expect("queued job");
    // Queue full: the plain client bounces immediately…
    match plain.submit(&request) {
        Err(ClientError::Busy { .. }) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    // …while the retrying client keeps knocking (429s honoured up to
    // its cap) until the backlog drains and the slot frees.
    let opener = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            gate.store(true, Ordering::SeqCst);
        })
    };
    let third = retrying
        .submit(&request)
        .expect("retrying client lands the job");
    opener.join().expect("gate opener");
    plain.wait(running.id, WAIT).expect("first finishes");
    plain.wait(queued.id, WAIT).expect("second finishes");
    plain.wait(third.id, WAIT).expect("third finishes");

    // Timeout now reports how long the caller actually waited.
    match plain.wait(running.id, Duration::from_millis(0)) {
        Ok(status) => assert!(status.state.is_terminal()),
        Err(ClientError::Timeout { id, waited }) => {
            assert_eq!(id, running.id);
            let _ = waited;
        }
        other => panic!("unexpected wait outcome: {other:?}"),
    }

    // Connect errors are retryable too: a client pointed at a dead
    // port fails with Io only after its attempts are spent.
    let dead = Client::new("127.0.0.1:1".to_string()).with_retry(BackoffPolicy {
        max_attempts: 2,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(10),
    });
    match dead.health() {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected Io from a dead port, got {other:?}"),
    }
    server.shutdown();
}
