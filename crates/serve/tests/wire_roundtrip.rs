//! Property tests: every wire type survives a JSON round-trip exactly.
//!
//! The vendored `serde_json` prints `f64`s in shortest-roundtrip form,
//! so finite floats compare **bit-exactly** after
//! serialise → parse → deserialise — the same guarantee the service
//! relies on for its bit-identity contract.

use ecripse_core::ecripse::EcripseConfig;
use ecripse_core::observe::{RunReport, Stage, StageReport};
use ecripse_core::oracle::OracleStats;
use ecripse_core::scenario::Scenario;
use ecripse_core::sweep::{SweepPoint, SweepReports};
use ecripse_core::telemetry::{fmt_hex_id, SpanRecord, TraceContext};
use ecripse_serve::protocol::{
    ApiError, EstimateOutcome, Health, JobProgress, JobReport, JobSpec, JobState, JobStatus,
    JobTrace, Metrics, ScenarioJobCount, SubmitRequest, SweepOutcome,
};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

fn roundtrip<T: Serialize + Deserialize>(value: &T) -> T {
    let json = serde_json::to_string(value).expect("serialise");
    serde_json::from_str(&json).expect("deserialise")
}

fn job_state(pick: u32) -> JobState {
    match pick % 6 {
        0 => JobState::Queued,
        1 => JobState::Running,
        2 => JobState::Completed,
        3 => JobState::Failed,
        4 => JobState::Cancelled,
        _ => JobState::Persisted,
    }
}

fn scenario(pick: u32) -> Scenario {
    Scenario::ALL[pick as usize % Scenario::ALL.len()]
}

fn oracle_stats(counts: &[u64]) -> OracleStats {
    OracleStats {
        classified: counts[0],
        simulated: counts[1],
        uncertain_simulated: counts[2],
        retrains: counts[3],
        cache_hits: counts[4],
        cache_misses: counts[5],
        retries: counts[6],
        quarantined: counts[7],
        // Stay under 2^53: wire numbers are f64-backed JSON.
        newton_iters: counts[0] / 2,
        factorisations: counts[1] / 3,
        warm_start_seeds: counts[2] / 2,
    }
}

fn run_report(seed: u64, p_fail: f64, wall: f64, sims: u64, counts: &[u64]) -> RunReport {
    RunReport {
        seed,
        threads: (seed % 9) as usize,
        stages: vec![
            StageReport {
                stage: Stage::BoundarySearch,
                wall_seconds: wall,
                simulations: sims,
            },
            StageReport {
                stage: Stage::ParticleFilter,
                wall_seconds: wall * 3.0,
                simulations: sims.saturating_mul(2),
            },
            StageReport {
                stage: Stage::ImportanceSampling,
                wall_seconds: wall / 7.0,
                simulations: sims / 2,
            },
        ],
        p_fail,
        ci95_half_width: p_fail / 10.0,
        simulations: sims,
        is_samples: sims.saturating_mul(3),
        effective_sample_size: p_fail * 100.0,
        oracle: oracle_stats(counts),
        ..RunReport::default()
    }
}

proptest! {
    #[test]
    fn prop_job_spec_roundtrips(
        is_sweep in proptest::bool::ANY,
        vdd in 0.1f64..2.0,
        has_alpha in proptest::bool::ANY,
        alpha in 0.0f64..1.0,
        alphas in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        let spec = if is_sweep {
            JobSpec::sweep(vdd, alphas)
        } else if has_alpha {
            JobSpec::estimate(vdd, alpha)
        } else {
            JobSpec::rdf_only(vdd)
        };
        prop_assert_eq!(roundtrip(&spec), spec);
    }

    #[test]
    fn prop_submit_request_roundtrips(
        seed in 0u64..(1 << 53),
        n_samples in 1usize..100_000,
        iterations in 1usize..20,
        alpha in 0.0f64..1.0,
        scenario_pick in 0u32..4,
    ) {
        let mut config = EcripseConfig {
            seed,
            iterations,
            ..EcripseConfig::default()
        };
        config.importance.n_samples = n_samples;
        let request = SubmitRequest::with_scenario(
            scenario(scenario_pick),
            config,
            JobSpec::estimate(1.0, alpha),
        );
        prop_assert_eq!(request.scenario, scenario(scenario_pick));
        prop_assert_eq!(request.config.scenario, scenario(scenario_pick));
        prop_assert_eq!(roundtrip(&request), request);
    }

    #[test]
    fn prop_old_wire_submit_request_defaults_to_read_snm(
        seed in 0u64..(1 << 53),
        alpha in 0.0f64..1.0,
    ) {
        // A PR-6-era client sends a SubmitRequest with no `scenario`
        // field at all (and an EcripseConfig without one either). Both
        // must parse and land on the paper's read-snm indicator.
        let config = EcripseConfig { seed, ..EcripseConfig::default() };
        let modern = SubmitRequest::new(config, JobSpec::estimate(1.0, alpha));
        let mut json = serde_json::to_string(&modern).expect("serialise");
        // Strip both scenario fields to reconstruct the old wire shape.
        json = json.replace("\"scenario\":\"read-snm\",", "");
        prop_assert!(!json.contains("scenario"), "fixture must predate the field: {json}");
        let parsed: SubmitRequest = serde_json::from_str(&json).expect("old wire form parses");
        prop_assert_eq!(parsed.scenario, Scenario::ReadSnm);
        prop_assert_eq!(parsed.config.scenario, Scenario::ReadSnm);
        prop_assert_eq!(parsed, modern);
    }

    #[test]
    fn prop_job_status_roundtrips(
        id in 0u64..(1 << 53),
        pick in 0u32..6,
        has_position in proptest::bool::ANY,
        position in 0u64..10_000,
        has_error in proptest::bool::ANY,
        has_progress in proptest::bool::ANY,
        iterations in 0u64..(1 << 50),
        simulations in 0u64..(1 << 50),
        estimate in 1e-12f64..1.0,
        stage_pick in 0u32..4,
    ) {
        let status = JobStatus {
            id,
            scenario: scenario(pick),
            state: job_state(pick),
            queue_position: if has_position { Some(position) } else { None },
            error: if has_error { Some(format!("boom #{id}")) } else { None },
            progress: if has_progress {
                Some(JobProgress {
                    stage: match stage_pick {
                        0 => None,
                        1 => Some("boundary_search".to_string()),
                        2 => Some("particle_filter".to_string()),
                        _ => Some("importance_sampling".to_string()),
                    },
                    iterations,
                    simulations,
                    is_samples: simulations / 2,
                    estimate: if stage_pick > 1 { Some(estimate) } else { None },
                })
            } else {
                None
            },
            trace_id: if has_position { Some(fmt_hex_id(id | 1)) } else { None },
        };
        prop_assert_eq!(roundtrip(&status), status);
    }

    #[test]
    fn prop_old_wire_job_status_still_parses(
        id in 0u64..(1 << 53),
        pick in 0u32..6,
    ) {
        // A protocol-1 peer that predates the `progress` field sends
        // documents without it; `Option::from_missing` keeps them valid.
        let old = format!(
            "{{\"id\":{id},\"state\":\"{}\",\"queue_position\":null,\"error\":null}}",
            job_state(pick)
        );
        let parsed: JobStatus = serde_json::from_str(&old).expect("old wire form parses");
        prop_assert_eq!(parsed.id, id);
        prop_assert_eq!(parsed.progress, None);
        // Documents that predate the scenario field mean read-snm.
        prop_assert_eq!(parsed.scenario, Scenario::ReadSnm);
    }

    #[test]
    fn prop_estimate_report_roundtrips(
        id in 0u64..(1 << 53),
        seed in 0u64..(1 << 53),
        p_fail in 1e-12f64..1.0,
        wall in 0.0f64..100.0,
        sims in 0u64..(1 << 50),
        counts in proptest::collection::vec(0u64..(1 << 50), 8),
    ) {
        let report = run_report(seed, p_fail, wall, sims, &counts);
        let outcome = EstimateOutcome {
            p_fail,
            ci95_half_width: p_fail / 3.0,
            simulations: sims,
            is_samples: sims * 2,
            report,
        };
        let document = JobReport {
            id,
            scenario: scenario(id as u32),
            state: JobState::Completed,
            error: None,
            estimate: Some(outcome),
            sweep: None,
            trace_id: Some(fmt_hex_id(seed | 1)),
        };
        prop_assert_eq!(roundtrip(&document), document);
    }

    #[test]
    fn prop_sweep_report_roundtrips(
        id in 0u64..(1 << 53),
        seed in 0u64..(1 << 53),
        alphas in proptest::collection::vec(0.0f64..1.0, 3),
        p_fails in proptest::collection::vec(1e-12f64..1.0, 4),
        sims in 0u64..(1 << 50),
        counts in proptest::collection::vec(0u64..(1 << 50), 8),
    ) {
        let points: Vec<SweepPoint> = alphas
            .iter()
            .zip(&p_fails)
            .map(|(&alpha, &p_fail)| SweepPoint {
                alpha,
                p_fail,
                ci95_half_width: p_fail / 5.0,
                simulations: sims,
            })
            .collect();
        let outcome = SweepOutcome {
            p_fail_rdf_only: p_fails[3],
            rdf_only_ci95: p_fails[3] / 4.0,
            init_simulations: sims / 3,
            total_simulations: sims,
            points,
            reports: SweepReports {
                rdf_only: run_report(seed, p_fails[3], 0.5, sims, &counts),
                points: p_fails[..3]
                    .iter()
                    .map(|&p| run_report(seed ^ 1, p, 0.25, sims / 2, &counts))
                    .collect(),
            },
        };
        let document = JobReport {
            id,
            scenario: scenario(id as u32),
            state: JobState::Completed,
            error: None,
            estimate: None,
            sweep: Some(outcome),
            trace_id: Some(fmt_hex_id(seed | 1)),
        };
        prop_assert_eq!(roundtrip(&document), document);
    }

    #[test]
    fn prop_api_error_roundtrips(
        code_pick in 0u32..4,
        retry_pick in 0u32..3,
        retry in 1u64..600,
    ) {
        let code = ["queue_full", "unknown_job", "conflict", "not_ready"][code_pick as usize];
        let mut error = ApiError::new(code, format!("{code} happened"));
        if retry_pick == 1 {
            error.retry_after_seconds = Some(retry);
        }
        prop_assert_eq!(roundtrip(&error), error);
    }

    #[test]
    fn prop_health_and_metrics_roundtrip(
        protocol in 0u32..100,
        draining in proptest::bool::ANY,
        counts in proptest::collection::vec(0u64..(1 << 50), 8),
        depth in 0u64..1000,
        hits in 0u64..(1 << 50),
        misses in 0u64..(1 << 50),
    ) {
        let health = Health {
            status: if draining { "draining" } else { "ok" }.to_string(),
            protocol,
        };
        prop_assert_eq!(roundtrip(&health), health);

        let total = hits + misses;
        let metrics = Metrics {
            queue_depth: depth,
            queue_capacity: depth + 1,
            in_flight: depth / 2,
            workers: 4,
            submitted: counts[0],
            completed: counts[1],
            failed: counts[2],
            cancelled: counts[3],
            cancelled_queued: counts[3] / 2,
            cancelled_running: counts[3] - counts[3] / 2,
            deadline_exceeded: counts[5] / 3,
            recovered: counts[0] / 4,
            idempotent_hits: counts[7] / 5,
            persisted: counts[4],
            rejected: counts[5],
            cache_entries: counts[6],
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if total > 0 {
                Some(hits as f64 / total as f64)
            } else {
                None
            },
            cache_loaded_entries: counts[6] / 2,
            journal_compactions_total: counts[2] / 3,
            journal_frames_replayed_total: counts[4] / 2,
            journal_bytes: counts[7],
            journal_replay_duration_seconds: depth as f64 * 0.0625,
            uptime_seconds: depth as f64 * 0.125,
            jobs_in_terminal_state: counts[1] + counts[2] + counts[3] + counts[4],
            scenario_jobs: Scenario::ALL
                .iter()
                .enumerate()
                .map(|(index, s)| ScenarioJobCount {
                    scenario: s.id().to_string(),
                    completed: counts[index % counts.len()],
                })
                .collect(),
            oracle: oracle_stats(&counts),
        };
        prop_assert_eq!(roundtrip(&metrics), metrics);
    }

    #[test]
    fn prop_non_finite_floats_survive_the_wire(
        id in 0u64..(1 << 53),
        positive in proptest::bool::ANY,
    ) {
        // The vendored serde writes non-finite floats as string
        // sentinels instead of the `null` stock serde_json emits, so an
        // infinite relative error (zero estimate) survives a round trip.
        // NaN cannot be asserted with equality, so the proptest covers
        // the infinities and a unit test covers NaN field-by-field.
        let inf = if positive { f64::INFINITY } else { f64::NEG_INFINITY };
        let status = JobStatus {
            id,
            scenario: Scenario::ReadSnm,
            state: JobState::Running,
            queue_position: None,
            error: None,
            progress: Some(JobProgress {
                stage: Some("importance_sampling".to_string()),
                iterations: 1,
                simulations: 2,
                is_samples: 3,
                estimate: Some(inf),
            }),
            trace_id: None,
        };
        let json = serde_json::to_string(&status).expect("serialise");
        let sentinel = if positive { "\"estimate\":\"Infinity\"" } else { "\"estimate\":\"-Infinity\"" };
        prop_assert!(json.contains(sentinel), "expected the string sentinel in {json}");
        prop_assert_eq!(roundtrip(&status), status);
    }

    #[test]
    fn prop_trace_context_roundtrips(
        trace_id in 1u64..u64::MAX,
        parent in 0u64..u64::MAX,
    ) {
        // Ids cross the wire as 16-hex-digit strings, so the FULL u64
        // range must survive — no f64 precision cliff at 2^53.
        let context = TraceContext { trace_id, parent_span_id: parent };
        prop_assert_eq!(roundtrip(&context), context);
        // The same context drives the traceparent header, which must
        // parse back exactly.
        prop_assert_eq!(TraceContext::parse_traceparent(&context.traceparent()), Some(context));
    }

    #[test]
    fn prop_merged_trace_documents_roundtrip(
        job_id in 0u64..(1 << 53),
        ids in proptest::collection::vec(1u64..u64::MAX, 4),
        start in 1.0e9f64..2.0e9,
        durations in proptest::collection::vec(0.0f64..100.0, 3),
    ) {
        // A merged waterfall: a coordinator root span plus shard and
        // worker spans, as `GET /v1/jobs/{id}/trace` would return it.
        let spans: Vec<SpanRecord> = durations
            .iter()
            .enumerate()
            .map(|(k, &duration)| SpanRecord {
                trace_id: fmt_hex_id(ids[0]),
                span_id: fmt_hex_id(ids[k + 1]),
                parent_span_id: if k == 0 { fmt_hex_id(0) } else { fmt_hex_id(ids[1]) },
                name: if k == 0 { "job".to_string() } else { format!("shard-{k}") },
                node: if k == 2 { "worker-a".to_string() } else { "coordinator".to_string() },
                start_ts: start + k as f64 * 0.25,
                duration_s: duration,
            })
            .collect();
        let document = JobTrace {
            job_id,
            trace_id: fmt_hex_id(ids[0]),
            spans,
        };
        prop_assert_eq!(roundtrip(&document), document);
    }

    #[test]
    fn prop_pre_trace_wire_documents_still_parse(
        id in 0u64..(1 << 53),
        pick in 0u32..6,
    ) {
        // PR-9-era peers send JobStatus/JobReport documents without
        // `trace_id`; the serde default keeps them valid.
        let status = JobStatus {
            id,
            scenario: scenario(pick),
            state: job_state(pick),
            queue_position: None,
            error: None,
            progress: None,
            trace_id: Some(fmt_hex_id(id | 1)),
        };
        let stripped = {
            let json = serde_json::to_string(&status).expect("serialise");
            let mut value: serde::json::Value = serde_json::from_str(&json).expect("parse");
            if let serde::json::Value::Object(entries) = &mut value {
                entries.retain(|(key, _)| key != "trace_id");
            }
            serde_json::to_string(&value).expect("re-serialise")
        };
        let parsed: JobStatus = serde_json::from_str(&stripped).expect("old wire form parses");
        prop_assert_eq!(parsed.trace_id, None);
        prop_assert_eq!(parsed.id, status.id);

        let report = JobReport {
            id,
            scenario: scenario(pick),
            state: JobState::Completed,
            error: None,
            estimate: None,
            sweep: None,
            trace_id: Some(fmt_hex_id(id | 1)),
        };
        let stripped = {
            let json = serde_json::to_string(&report).expect("serialise");
            let mut value: serde::json::Value = serde_json::from_str(&json).expect("parse");
            if let serde::json::Value::Object(entries) = &mut value {
                entries.retain(|(key, _)| key != "trace_id");
            }
            serde_json::to_string(&value).expect("re-serialise")
        };
        let parsed: JobReport = serde_json::from_str(&stripped).expect("old wire form parses");
        prop_assert_eq!(parsed.trace_id, None);
        prop_assert_eq!(parsed.id, report.id);
    }
}
