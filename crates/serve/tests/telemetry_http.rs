//! Telemetry over the wire: Prometheus exposition on `GET /metrics`
//! (content negotiation, format validity, agreement with the JSON
//! document) and live job progress while a sweep is running.

use ecripse_core::bench::{LinearBench, Testbench};
use ecripse_core::ecripse::EcripseConfig;
use ecripse_core::importance::ImportanceConfig;
use ecripse_core::initial::InitialSearchConfig;
use ecripse_core::sweep::SweepBench;
use ecripse_serve::protocol::{JobSpec, JobState, SubmitRequest};
use ecripse_serve::{http, Client, ServeConfig, Server};
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn tiny_config(seed: u64) -> EcripseConfig {
    EcripseConfig {
        initial: InitialSearchConfig {
            count: 12,
            max_attempts: 2000,
            ..InitialSearchConfig::default()
        },
        iterations: 3,
        importance: ImportanceConfig {
            n_samples: 250,
            m_rtn: 4,
            trace_every: 0,
        },
        m_rtn_stage1: 2,
        seed,
        ..EcripseConfig::default()
    }
}

fn linear_bench() -> LinearBench {
    LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.5)
}

/// A bench that sleeps on every evaluation, keeping a job running long
/// enough for the status endpoint to be polled mid-flight.
#[derive(Clone)]
struct SlowBench {
    inner: LinearBench,
}

impl Testbench for SlowBench {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn fails(&self, z: &[f64]) -> bool {
        std::thread::sleep(Duration::from_micros(300));
        self.inner.fails(z)
    }
}

impl SweepBench for SlowBench {
    fn sigmas(&self) -> [f64; 6] {
        SweepBench::sigmas(&self.inner)
    }
}

/// Parses Prometheus text exposition, panicking on any malformed line.
/// Returns the value of every *unlabelled* sample plus the set of
/// sample names seen (labelled `_bucket` series included).
fn validate_exposition(text: &str) -> (HashMap<String, f64>, Vec<String>) {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut scalars = HashMap::new();
    let mut names = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a metric name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown metric kind {kind:?} in {line:?}"
            );
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "unexpected comment form in exposition: {line:?}"
        );
        // Sample line: `name[{labels}] value`.
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without a value: {line:?}"));
        let parsed: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .unwrap_or_else(|_| panic!("bad sample value in {line:?}")),
        };
        let name = series.split('{').next().expect("split never empty");
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(
            types.contains_key(base),
            "sample {name:?} has no preceding # TYPE header"
        );
        names.push(name.to_string());
        if !series.contains('{') {
            scalars.insert(name.to_string(), parsed);
        }
    }
    (scalars, names)
}

#[test]
fn prometheus_exposition_parses_and_agrees_with_json() {
    // A journal (on an empty scratch directory) so boot performs a
    // replay and the replay-duration histogram gains its sample.
    let dir = std::env::temp_dir().join(format!(
        "ecripse-serve-telemetry-http-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let config = ServeConfig {
        journal: Some(dir.join("journal.jsonl")),
        ..ServeConfig::default()
    };
    let server =
        Server::bind_with("127.0.0.1:0", config, |_scenario, _vdd| linear_bench()).expect("bind");
    let client = Client::new(server.local_addr().to_string());

    // Complete one job so the job-duration histogram has a sample.
    let request = SubmitRequest::new(tiny_config(42), JobSpec::rdf_only(1.0));
    let submitted = client.submit(&request).expect("submit");
    let report = client.wait_for_report(submitted.id, WAIT).expect("report");
    assert_eq!(report.state, JobState::Completed);

    // Content negotiation on the raw wire: text/plain selects the
    // exposition, the default stays JSON.
    let raw = |accept: Option<&str>| -> (Vec<(String, String)>, String) {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        match accept {
            Some(a) => http::write_request_accepting(&mut stream, "GET", "/metrics", None, a)
                .expect("write"),
            None => http::write_request(&mut stream, "GET", "/metrics", None).expect("write"),
        }
        let (status, headers, body) = http::read_response(&mut stream).expect("read");
        assert_eq!(status, 200);
        (headers, body)
    };
    let (headers, json_body) = raw(None);
    let content_type = |headers: &[(String, String)]| {
        headers
            .iter()
            .find(|(n, _)| n == "content-type")
            .map(|(_, v)| v.clone())
            .expect("content-type header")
    };
    assert!(content_type(&headers).contains("application/json"));
    assert!(json_body.trim_start().starts_with('{'));
    let (headers, text_body) = raw(Some("text/plain"));
    assert!(content_type(&headers).contains("text/plain"));
    // The raw scrape is itself a valid exposition (a later scrape will
    // differ in uptime and HTTP-latency samples, so no byte equality).
    validate_exposition(&text_body);

    let metrics = client.metrics().expect("json metrics");
    let exposition = client.metrics_prometheus().expect("prometheus metrics");
    let (scalars, names) = validate_exposition(&exposition);

    // The scalar series agree with the JSON document they were
    // synthesised from.
    assert_eq!(
        scalars["ecripse_serve_submitted_total"],
        metrics.submitted as f64
    );
    assert_eq!(
        scalars["ecripse_serve_completed_total"],
        metrics.completed as f64
    );
    assert_eq!(scalars["ecripse_serve_workers"], metrics.workers as f64);
    assert_eq!(
        scalars["ecripse_serve_jobs_in_terminal_state"],
        metrics.jobs_in_terminal_state as f64
    );
    assert_eq!(metrics.jobs_in_terminal_state, 1);
    assert!(scalars["ecripse_serve_uptime_seconds"] > 0.0);
    assert!(metrics.uptime_seconds > 0.0);
    assert_eq!(
        scalars["ecripse_serve_oracle_simulated_total"],
        metrics.oracle.simulated as f64
    );

    // The job-duration histogram is present with the full triple, its
    // +Inf bucket equals its count, and one job was recorded.
    for suffix in ["_bucket", "_sum", "_count"] {
        assert!(
            names
                .iter()
                .any(|n| n == &format!("ecripse_serve_job_seconds{suffix}")),
            "missing ecripse_serve_job_seconds{suffix} in exposition"
        );
    }
    assert_eq!(scalars["ecripse_serve_job_seconds_count"], 1.0);
    assert!(scalars["ecripse_serve_job_seconds_sum"] > 0.0);
    let inf_bucket = exposition
        .lines()
        .find(|l| l.starts_with("ecripse_serve_job_seconds_bucket{le=\"+Inf\"}"))
        .expect("+Inf bucket line");
    assert!(inf_bucket.ends_with(" 1"));

    // Bucket counts are cumulative (non-decreasing in le order).
    let mut last = 0.0;
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("ecripse_serve_http_request_seconds_bucket"))
    {
        let value: f64 = line
            .rsplit(' ')
            .next()
            .expect("value")
            .parse()
            .expect("count");
        assert!(value >= last, "bucket counts must be cumulative: {line}");
        last = value;
    }
    assert!(
        last > 0.0,
        "http requests were made, histogram must be non-empty"
    );

    // The core observer bridge surfaced pipeline metrics too.
    assert!(scalars["ecripse_simulations_total"] > 0.0);

    // The queue-depth gauge is registered and idle (the one job has
    // already drained), and it agrees with the JSON document.
    assert_eq!(scalars["ecripse_serve_queue_depth"], 0.0);
    assert_eq!(
        scalars["ecripse_serve_queue_depth"],
        metrics.queue_depth as f64
    );

    // The journal-replay histogram is present with the full triple.
    // This server started from an empty directory, so exactly one
    // (near-instant) replay was observed at bind time.
    for suffix in ["_bucket", "_sum", "_count"] {
        assert!(
            names
                .iter()
                .any(|n| n == &format!("ecripse_serve_journal_replay_duration_seconds{suffix}")),
            "missing ecripse_serve_journal_replay_duration_seconds{suffix} in exposition"
        );
    }
    assert_eq!(
        scalars["ecripse_serve_journal_replay_duration_seconds_count"],
        1.0
    );
    assert!(scalars["ecripse_serve_journal_replay_duration_seconds_sum"] >= 0.0);
    assert_eq!(
        scalars["ecripse_serve_journal_replay_duration_seconds_sum"],
        metrics.journal_replay_duration_seconds
    );
    server.shutdown();
}

#[test]
fn running_sweep_status_shows_advancing_progress() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, |_scenario, _vdd| SlowBench {
        inner: linear_bench(),
    })
    .expect("bind");
    let client = Client::new(server.local_addr().to_string());

    let request = SubmitRequest::new(tiny_config(11), JobSpec::sweep(1.0, vec![0.2, 0.8]));
    let submitted = client.submit(&request).expect("submit sweep");
    assert!(
        submitted.progress.is_none(),
        "a queued job reports no progress"
    );

    // Poll while the job runs, collecting progress snapshots.
    let mut snapshots = Vec::new();
    for _ in 0..20_000 {
        let status = client.status(submitted.id).expect("status");
        if status.state.is_terminal() {
            break;
        }
        if status.state == JobState::Running {
            let progress = status.progress.expect("running job reports progress");
            snapshots.push(progress);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let final_status = client.wait(submitted.id, WAIT).expect("terminal state");
    assert_eq!(final_status.state, JobState::Completed);
    assert!(
        final_status.progress.is_none(),
        "a terminal job reports no progress"
    );

    assert!(
        snapshots.len() >= 2,
        "expected to observe the sweep mid-flight at least twice, saw {}",
        snapshots.len()
    );
    // Counters are monotone snapshot-to-snapshot, and simulations
    // actually advanced while we watched.
    for pair in snapshots.windows(2) {
        assert!(pair[1].simulations >= pair[0].simulations);
        assert!(pair[1].iterations >= pair[0].iterations);
        assert!(pair[1].is_samples >= pair[0].is_samples);
    }
    let first = snapshots.first().expect("non-empty");
    let last = snapshots.last().expect("non-empty");
    assert!(
        last.simulations > first.simulations,
        "simulations must advance while the sweep runs ({} -> {})",
        first.simulations,
        last.simulations
    );
    assert!(
        snapshots.iter().any(|p| p.stage.is_some()),
        "at least one snapshot names the running stage"
    );
    server.shutdown();
}
