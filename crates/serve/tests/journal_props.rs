//! Property tests for the write-ahead journal's corruption tolerance:
//! ANY truncation of the file and ANY single-byte flip in its tail
//! frame must be caught by the framing/checksum checks, recovery must
//! keep every fully-framed prior entry byte-identical, and the decoder
//! must never panic on arbitrary bytes.

use ecripse_core::ecripse::EcripseConfig;
use ecripse_serve::journal::{decode, encode_frame, recover, JournalRecord};
use ecripse_serve::protocol::{JobSpec, JobState, SubmitRequest};
use proptest::prelude::*;

fn request(seed: u64) -> SubmitRequest {
    let config = EcripseConfig {
        seed,
        ..EcripseConfig::default()
    };
    let mut request = SubmitRequest::new(config, JobSpec::rdf_only(1.0));
    if seed.is_multiple_of(3) {
        request = request.with_idempotency_key(format!("key-{seed}"));
    }
    if seed.is_multiple_of(2) {
        request = request.with_deadline_ms(1 + seed);
    }
    request
}

/// A journal image of `n` alternating submission/terminal frames (job
/// `k` submits in frame `2k-2` and completes in frame `2k-1`), plus the
/// byte offset where each frame starts.
fn journal_image(n: usize) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut starts = Vec::new();
    for i in 0..n {
        let id = (i / 2 + 1) as u64;
        let record = if i % 2 == 0 {
            JournalRecord::submitted(id, request(id))
        } else {
            JournalRecord::terminal(id, JobState::Completed, None)
        };
        starts.push(bytes.len());
        bytes.extend_from_slice(&encode_frame(&record).expect("encode"));
    }
    (bytes, starts)
}

/// How many frames end at or before byte `len`.
fn frames_within(starts: &[usize], total: usize, len: usize) -> usize {
    (0..starts.len())
        .take_while(|&i| starts.get(i + 1).copied().unwrap_or(total) <= len)
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the image anywhere keeps exactly the fully-framed
    /// prefix: no prior entry is lost, nothing partial leaks through,
    /// and the dropped-byte count points at the torn frame's start.
    #[test]
    fn any_truncation_keeps_every_prior_frame(
        frames in 1usize..7,
        cut_fraction in 0.0f64..1.0,
    ) {
        let (bytes, starts) = journal_image(frames);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let replay = decode(&bytes[..cut]);
        let expected = frames_within(&starts, bytes.len(), cut);
        prop_assert_eq!(replay.records.len(), expected, "cut at {} of {} bytes", cut, bytes.len());
        let clean = decode(&bytes);
        prop_assert_eq!(&replay.records[..], &clean.records[..expected], "a surviving frame was altered");
        let torn_start = starts.get(expected).copied().unwrap_or(cut);
        prop_assert_eq!(replay.dropped_bytes as usize, cut - torn_start);
        // Each submission frame that survives recovers its job; later
        // frames past the cut change nothing about the prefix.
        let jobs = recover(&replay.records);
        prop_assert_eq!(jobs.len(), expected.div_ceil(2));
    }

    /// Flipping any single bit of any byte of the *tail frame* is
    /// detected: the tail frame drops, every prior frame survives
    /// byte-identical. (Magic, separators and the trailing newline are
    /// checked positionally; the length field guards the newline
    /// position; the FNV-1a checksum guards the payload.)
    #[test]
    fn any_tail_byte_flip_is_caught(
        frames in 1usize..6,
        offset_fraction in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let (mut bytes, starts) = journal_image(frames);
        let tail_start = *starts.last().expect("at least one frame");
        let tail_len = bytes.len() - tail_start;
        let target = tail_start + ((tail_len as f64 * offset_fraction) as usize).min(tail_len - 1);
        bytes[target] ^= 1u8 << bit;

        let replay = decode(&bytes);
        prop_assert_eq!(
            replay.records.len(),
            frames - 1,
            "flip of bit {} at byte {} (frame byte {}) was not rejected",
            bit,
            target,
            target - tail_start
        );
        prop_assert_eq!(replay.dropped_bytes as usize, tail_len);
        let clean = decode(&bytes[..tail_start]);
        prop_assert_eq!(&replay.records[..], &clean.records[..], "a surviving frame was altered");
    }

    /// Arbitrary garbage never panics the decoder, never yields more
    /// records than could physically be framed, and always feeds
    /// `recover` without incident.
    #[test]
    fn arbitrary_bytes_never_panic(words in proptest::collection::vec(0u32..256, 0..512)) {
        let bytes: Vec<u8> = words.into_iter().map(|w| w as u8).collect();
        let replay = decode(&bytes);
        // The smallest possible frame is a 30-byte header + '\n'.
        prop_assert!(replay.records.len() <= bytes.len() / 31);
        prop_assert!(replay.dropped_bytes as usize <= bytes.len());
        let _ = recover(&replay.records);
    }
}
