//! A deliberately minimal HTTP/1.1 layer over `std::net`.
//!
//! The service speaks exactly the subset the protocol needs — one
//! request per connection (`Connection: close`), JSON bodies sized by
//! `Content-Length`, no chunked encoding, no keep-alive, no TLS. Both
//! the server and the blocking [`client`](crate::client) are built on
//! the readers/writers here, so the two ends cannot drift apart.

use std::io::{Read, Write};
use std::net::TcpStream;

/// A raw client-side response: status code, headers (names
/// lower-cased) and body text.
pub type RawResponse = (u16, Vec<(String, String)>, String);

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Largest accepted message body.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Request path, e.g. `/v1/jobs/3/report` (query strings are kept
    /// verbatim; the protocol does not use them).
    pub path: String,
    /// Header name/value pairs in wire order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw message body.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` of the body.
    pub content_type: String,
    /// Message body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "application/json".to_string(),
            body,
        }
    }

    /// A plain-text response with the given status (used for Prometheus
    /// exposition, which scrapers expect as `text/plain`).
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "text/plain; version=0.0.4".to_string(),
            body,
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }
}

/// Why reading a message failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Socket-level failure.
    Io(String),
    /// The bytes on the wire are not the HTTP subset we speak.
    Malformed(String),
    /// The head or body exceeds the configured limits.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http i/o error: {e}"),
            HttpError::Malformed(e) => write!(f, "malformed http message: {e}"),
            HttpError::TooLarge => write!(f, "http message exceeds size limits"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads bytes until the `\r\n\r\n` head terminator, returning
/// `(head, leftover-body-bytes)`.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = find_head_end(&buf) {
            let head = String::from_utf8(buf[..pos].to_vec())
                .map_err(|_| HttpError::Malformed("head is not utf-8".into()))?;
            let rest = buf[pos + 4..].to_vec();
            return Ok((head, rest));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_headers(lines: std::str::Lines<'_>) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    let Some((_, v)) = headers.iter().find(|(n, _)| n == "content-length") else {
        return Ok(0);
    };
    let n: usize = v
        .parse()
        .map_err(|_| HttpError::Malformed(format!("bad content-length: {v:?}")))?;
    if n > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    Ok(n)
}

fn read_body(
    stream: &mut TcpStream,
    mut body: Vec<u8>,
    expected: usize,
) -> Result<Vec<u8>, HttpError> {
    body.truncate(body.len().min(expected));
    let already = body.len();
    body.resize(expected, 0);
    if expected > already {
        stream.read_exact(&mut body[already..])?;
    }
    Ok(body)
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// [`HttpError`] on socket failure, malformed framing or a message that
/// exceeds [`MAX_HEAD_BYTES`]/[`MAX_BODY_BYTES`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let (head, leftover) = read_head(stream)?;
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let headers = parse_headers(lines)?;
    let expected = content_length(&headers)?;
    let body = read_body(stream, leftover, expected)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes a response and flushes. The connection is always marked
/// `Connection: close`; the caller drops the stream afterwards.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Writes a client request (JSON body optional) and flushes.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<()> {
    write_request_accepting(stream, method, path, body, "application/json")
}

/// Writes a client request with an explicit `Accept` header and
/// flushes. The server's `GET /metrics` route negotiates its body on
/// this header: `text/plain` selects Prometheus exposition.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_request_accepting(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    accept: &str,
) -> std::io::Result<()> {
    write_request_with_headers(stream, method, path, body, accept, &[])
}

/// Writes a client request with an explicit `Accept` header plus extra
/// headers (e.g. `traceparent`) and flushes.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_request_with_headers(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    accept: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: ecripse-serve\r\ncontent-type: application/json\r\naccept: {accept}\r\ncontent-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads a response from the server side of the wire: status, headers
/// (names lower-cased) and body.
///
/// # Errors
///
/// [`HttpError`] on socket failure or malformed framing.
pub fn read_response(stream: &mut TcpStream) -> Result<RawResponse, HttpError> {
    let (head, leftover) = read_head(stream)?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let headers = parse_headers(lines)?;
    let expected = content_length(&headers)?;
    let body = read_body(stream, leftover, expected)?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not utf-8".into()))?;
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn header_parsing_is_case_insensitive() {
        let headers =
            parse_headers("Content-Length: 12\r\nX-Thing: a:b".lines()).expect("valid headers");
        assert_eq!(content_length(&headers).expect("length"), 12);
        assert_eq!(headers[1], ("x-thing".into(), "a:b".into()));
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let headers = vec![("content-length".to_string(), "999999999999".to_string())];
        assert_eq!(content_length(&headers), Err(HttpError::TooLarge));
    }
}
