//! The write-ahead job journal: crash durability for accepted jobs.
//!
//! Every accepted submission is appended — framed, checksummed and
//! fsync'd — *before* the server acknowledges it with a `202`, and every
//! terminal transition is appended the same way. After a hard crash
//! (SIGKILL, OOM, power loss) the next boot replays the journal,
//! re-enqueues every job that was accepted but never reached a terminal
//! state under its **original id**, and sweeps resume bit-identically
//! from their spool checkpoints.
//!
//! # Frame format
//!
//! One record per line:
//!
//! ```text
//! EJ1 <len:08x> <fnv1a:016x> <payload>\n
//! ```
//!
//! `len` is the payload's byte length, `fnv1a` the FNV-1a 64-bit digest
//! of the payload bytes, and the payload one JSON-encoded
//! [`JournalRecord`] (serde_json never emits raw newlines, so the frame
//! boundary is unambiguous). A torn tail — truncation or a flipped bit
//! anywhere in the last partially-written frame — fails the length or
//! checksum test and replay stops there, keeping every fully-framed
//! prior entry; [`Journal::open`] then truncates the file back to the
//! last good frame so later appends never chain onto garbage.
//!
//! # Compaction
//!
//! Terminal records accumulate. [`live_records`] distils a replayed
//! history down to what the next boot actually needs — unfinished jobs,
//! plus submitted/terminal pairs for finished jobs that carried an
//! idempotency key (so a client retry after a restart still maps to the
//! original id) — and [`Journal::compact`] rewrites the file atomically
//! (tmp + fsync + rename). The server compacts at boot and every
//! [`COMPACT_EVERY`] terminal appends.

use crate::protocol::{JobState, SubmitRequest};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Frame magic: journal format version 1.
const MAGIC: &[u8] = b"EJ1 ";
/// `MAGIC + 8 hex len + ' ' + 16 hex checksum + ' '`.
const HEADER_LEN: usize = 4 + 8 + 1 + 16 + 1;
/// Terminal appends between automatic compactions.
pub const COMPACT_EVERY: u64 = 64;

/// What a journal line records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    /// A job was accepted into the queue.
    Submitted,
    /// A job reached a terminal state.
    Terminal,
}

impl JournalKind {
    /// The snake_case wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JournalKind::Submitted => "submitted",
            JournalKind::Terminal => "terminal",
        }
    }
}

impl Serialize for JournalKind {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::String(self.name().to_owned())
    }
}

impl Deserialize for JournalKind {
    fn from_value(value: &serde::json::Value) -> Option<Self> {
        match value.as_str()? {
            "submitted" => Some(JournalKind::Submitted),
            "terminal" => Some(JournalKind::Terminal),
            _ => None,
        }
    }
}

/// One journal entry: a submission (carrying the full wire request, so
/// replay can rebuild the job verbatim) or a terminal transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Submission or terminal transition.
    pub kind: JournalKind,
    /// The server-assigned job id the entry describes.
    pub id: u64,
    /// The accepted request, verbatim, for [`JournalKind::Submitted`].
    #[serde(default)]
    pub request: Option<SubmitRequest>,
    /// The terminal state reached, for [`JournalKind::Terminal`].
    #[serde(default)]
    pub state: Option<JobState>,
    /// The failure/cancellation description, when one exists.
    #[serde(default)]
    pub error: Option<String>,
}

impl JournalRecord {
    /// A submission entry.
    pub fn submitted(id: u64, request: SubmitRequest) -> Self {
        Self {
            kind: JournalKind::Submitted,
            id,
            request: Some(request),
            state: None,
            error: None,
        }
    }

    /// A terminal-transition entry.
    pub fn terminal(id: u64, state: JobState, error: Option<String>) -> Self {
        Self {
            kind: JournalKind::Terminal,
            id,
            request: None,
            state: Some(state),
            error,
        }
    }
}

/// What replaying an existing journal found.
#[derive(Debug)]
pub struct Replay {
    /// Every fully-framed, checksum-valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes discarded from a torn or corrupt tail (0 for a clean file).
    pub dropped_bytes: u64,
}

/// One recovered job: its original id, the request as accepted, and the
/// last terminal state it reached (`None` = unfinished, re-enqueue it).
///
/// A [`JobState::Persisted`] terminal is reported as *unfinished*: a
/// persisted sweep is by definition a resumable checkpoint waiting for a
/// worker, and a durable boot is exactly when it should resume.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredJob {
    /// The id the job was accepted under (and recovers under).
    pub id: u64,
    /// The submission, verbatim.
    pub request: SubmitRequest,
    /// Last terminal state + error, `None` when the job never finished.
    pub state: Option<(JobState, Option<String>)>,
}

/// Folds a replayed record sequence into per-job outcomes, in
/// submission order, resolving duplicate terminals last-wins. Terminal
/// records without a matching submission (their submission was
/// compacted away or lost to a torn tail) are dropped — there is
/// nothing to re-enqueue or report for them.
pub fn recover(records: &[JournalRecord]) -> Vec<RecoveredJob> {
    let mut order: Vec<u64> = Vec::new();
    let mut jobs: std::collections::HashMap<u64, RecoveredJob> = std::collections::HashMap::new();
    for record in records {
        match record.kind {
            JournalKind::Submitted => {
                if let Some(request) = &record.request {
                    if !jobs.contains_key(&record.id) {
                        order.push(record.id);
                    }
                    jobs.insert(
                        record.id,
                        RecoveredJob {
                            id: record.id,
                            request: request.clone(),
                            state: None,
                        },
                    );
                }
            }
            JournalKind::Terminal => {
                if let (Some(job), Some(state)) = (jobs.get_mut(&record.id), record.state) {
                    // Persisted = "resumable checkpoint exists"; treat
                    // it as unfinished so the boot path re-enqueues it.
                    job.state = if state == JobState::Persisted {
                        None
                    } else {
                        Some((state, record.error.clone()))
                    };
                }
            }
        }
    }
    order
        .into_iter()
        .filter_map(|id| jobs.remove(&id))
        .collect()
}

/// The minimal record set a fresh journal needs to describe `jobs`:
/// a submission per unfinished job, and submission + terminal pairs for
/// finished jobs that carried an idempotency key (their ids must stay
/// answerable across restarts; keyless finished jobs are dropped).
pub fn live_records(jobs: &[RecoveredJob]) -> Vec<JournalRecord> {
    let mut out = Vec::new();
    for job in jobs {
        match &job.state {
            None => out.push(JournalRecord::submitted(job.id, job.request.clone())),
            Some((state, error)) => {
                if job.request.idempotency_key.is_some() {
                    out.push(JournalRecord::submitted(job.id, job.request.clone()));
                    out.push(JournalRecord::terminal(job.id, *state, error.clone()));
                }
            }
        }
    }
    out
}

/// FNV-1a 64-bit over raw bytes (the frame checksum).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one record as a framed line (exposed for the corruption
/// tests, which build journals byte-by-byte).
///
/// # Errors
///
/// Serialisation failures surface as `io::ErrorKind::InvalidData`.
pub fn encode_frame(record: &JournalRecord) -> std::io::Result<Vec<u8>> {
    let payload = serde_json::to_string(record).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("encode record: {e}"),
        )
    })?;
    let payload = payload.into_bytes();
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + 1);
    frame.extend_from_slice(
        format!("EJ1 {:08x} {:016x} ", payload.len(), fnv1a_bytes(&payload)).as_bytes(),
    );
    frame.extend_from_slice(&payload);
    frame.push(b'\n');
    Ok(frame)
}

/// Parses a hex field of fixed width. Only canonical lowercase hex is
/// accepted — the writer emits lowercase, so an uppercase digit can only
/// mean a flipped case bit, and treating it as an alternate spelling
/// would let that corruption through undetected.
fn parse_hex(bytes: &[u8]) -> Option<u64> {
    if !bytes
        .iter()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(b))
    {
        return None;
    }
    let s = std::str::from_utf8(bytes).ok()?;
    u64::from_str_radix(s, 16).ok()
}

/// Decodes a journal byte image into its valid prefix: every
/// fully-framed, checksum-valid record plus how many tail bytes were
/// discarded. Pure — the proptests drive it directly with truncated and
/// bit-flipped images.
pub fn decode(bytes: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break;
        }
        let Some(frame_len) = decode_frame(rest, &mut records) else {
            break;
        };
        offset += frame_len;
    }
    Replay {
        records,
        dropped_bytes: (bytes.len() - offset) as u64,
    }
}

/// Decodes one frame at the start of `rest`, appending the record on
/// success and returning the frame's total byte length. `None` = torn
/// or corrupt here; the caller stops.
fn decode_frame(rest: &[u8], records: &mut Vec<JournalRecord>) -> Option<usize> {
    if rest.len() < HEADER_LEN || &rest[..4] != MAGIC {
        return None;
    }
    if rest[12] != b' ' || rest[29] != b' ' {
        return None;
    }
    let len = parse_hex(&rest[4..12])? as usize;
    let checksum = parse_hex(&rest[13..29])?;
    let end = HEADER_LEN.checked_add(len)?;
    if rest.len() < end + 1 || rest[end] != b'\n' {
        return None;
    }
    let payload = &rest[HEADER_LEN..end];
    if fnv1a_bytes(payload) != checksum {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let record: JournalRecord = serde_json::from_str(text).ok()?;
    records.push(record);
    Some(end + 1)
}

/// An open, append-only journal. All appends are fsync'd before they
/// return — the durability guarantee the `202` acknowledgement rests on.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    terminal_appends: AtomicU64,
    /// Current on-disk size (bytes of valid frames); kept in step with
    /// every append and compaction so `/metrics` never has to stat.
    bytes: AtomicU64,
    /// Compactions completed since this handle was opened.
    compactions: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Opens (creating if missing) the journal at `path`, replays every
    /// valid record, and truncates any torn tail so subsequent appends
    /// start on a clean frame boundary.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; corrupt *content* is never an error
    /// (the valid prefix wins and the rest is dropped).
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Self, Replay)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = decode(&bytes);
        let good_len = bytes.len() as u64 - replay.dropped_bytes;
        if replay.dropped_bytes > 0 {
            file.set_len(good_len)?;
            file.sync_data()?;
        }
        file.seek(std::io::SeekFrom::Start(good_len))?;
        Ok((
            Self {
                path,
                file: Mutex::new(file),
                terminal_appends: AtomicU64::new(0),
                bytes: AtomicU64::new(good_len),
                compactions: AtomicU64::new(0),
            },
            replay,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs before returning. Only after this
    /// succeeds may the server acknowledge the event it records.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures — the caller must then *not*
    /// acknowledge the event.
    pub fn append(&self, record: &JournalRecord) -> std::io::Result<()> {
        let frame = encode_frame(record)?;
        let mut file = self.file.lock();
        file.write_all(&frame)?;
        file.sync_data()?;
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Current on-disk size of the journal in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Compactions completed since this journal handle was opened.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Whether enough terminal records have accumulated since the last
    /// compaction to warrant another one. Calling this consumes the
    /// trigger (resets the counter) when it fires.
    pub fn should_compact(&self) -> bool {
        if self.terminal_appends.fetch_add(1, Ordering::Relaxed) + 1 >= COMPACT_EVERY {
            self.terminal_appends.store(0, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Atomically rewrites the journal to exactly `records`: frames are
    /// written to a sibling tmp file, fsync'd, and renamed over the
    /// journal, then the append handle is reopened on the new file. A
    /// crash at any point leaves either the old journal or the new one —
    /// never a mix.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; the old journal stays in place on
    /// failure.
    pub fn compact(&self, records: &[JournalRecord]) -> std::io::Result<()> {
        let mut file = self.file.lock();
        let tmp = self.path.with_extension("tmp");
        {
            let mut out = File::create(&tmp)?;
            for record in records {
                out.write_all(&encode_frame(record)?)?;
            }
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut reopened = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let end = reopened.seek(std::io::SeekFrom::End(0))?;
        *file = reopened;
        self.bytes.store(end, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobSpec;
    use ecripse_core::ecripse::EcripseConfig;

    fn request(seed: u64) -> SubmitRequest {
        let config = EcripseConfig {
            seed,
            ..EcripseConfig::default()
        };
        SubmitRequest::new(config, JobSpec::rdf_only(1.0))
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ecripse-journal-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = scratch("roundtrip");
        let path = dir.join("journal.jsonl");
        let (journal, replay) = Journal::open(&path).expect("open");
        assert!(replay.records.is_empty());
        journal
            .append(&JournalRecord::submitted(1, request(7)))
            .expect("append");
        journal
            .append(&JournalRecord::submitted(2, request(8)))
            .expect("append");
        journal
            .append(&JournalRecord::terminal(1, JobState::Completed, None))
            .expect("append");
        drop(journal);

        let (_journal, replay) = Journal::open(&path).expect("reopen");
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.dropped_bytes, 0);
        let jobs = recover(&replay.records);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 1);
        assert_eq!(jobs[0].state, Some((JobState::Completed, None)));
        assert_eq!(jobs[1].id, 2);
        assert_eq!(jobs[1].state, None, "job 2 never finished");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = scratch("torn");
        let path = dir.join("journal.jsonl");
        let (journal, _) = Journal::open(&path).expect("open");
        journal
            .append(&JournalRecord::submitted(1, request(1)))
            .expect("append");
        journal
            .append(&JournalRecord::submitted(2, request(2)))
            .expect("append");
        drop(journal);
        // Tear the tail mid-frame (a crash between write and sync).
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 10]).expect("tear");

        let (journal, replay) = Journal::open(&path).expect("reopen");
        assert_eq!(replay.records.len(), 1, "only the intact frame survives");
        assert!(replay.dropped_bytes > 0);
        journal
            .append(&JournalRecord::submitted(3, request(3)))
            .expect("append after truncation");
        drop(journal);
        let (_j, replay) = Journal::open(&path).expect("third open");
        assert_eq!(replay.dropped_bytes, 0, "truncation left a clean file");
        let ids: Vec<u64> = replay.records.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_payload_is_caught_by_checksum() {
        let dir = scratch("flip");
        let path = dir.join("journal.jsonl");
        let (journal, _) = Journal::open(&path).expect("open");
        journal
            .append(&JournalRecord::submitted(1, request(1)))
            .expect("append");
        journal
            .append(&JournalRecord::submitted(2, request(2)))
            .expect("append");
        drop(journal);
        let mut bytes = std::fs::read(&path).expect("read");
        let target = bytes.len() - 20; // inside the second payload
        bytes[target] ^= 0x08;
        std::fs::write(&path, &bytes).expect("flip");

        let replay = decode(&std::fs::read(&path).expect("read"));
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].id, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persisted_terminal_recovers_as_unfinished() {
        let records = vec![
            JournalRecord::submitted(4, request(4)),
            JournalRecord::terminal(4, JobState::Persisted, None),
        ];
        let jobs = recover(&records);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, None, "persisted sweeps resume on boot");
    }

    #[test]
    fn compaction_keeps_unfinished_and_keyed_terminal_jobs() {
        let mut keyed = request(5);
        keyed.idempotency_key = Some("retry-me".into());
        let records = vec![
            JournalRecord::submitted(1, request(1)),
            JournalRecord::submitted(2, keyed),
            JournalRecord::submitted(3, request(3)),
            JournalRecord::terminal(1, JobState::Completed, None),
            JournalRecord::terminal(2, JobState::Failed, Some("boom".into())),
        ];
        let live = live_records(&recover(&records));
        // Job 1 finished keyless → dropped. Job 2 finished with a key →
        // pair kept. Job 3 unfinished → submission kept.
        let ids: Vec<(JournalKind, u64)> = live.iter().map(|r| (r.kind, r.id)).collect();
        assert_eq!(
            ids,
            vec![
                (JournalKind::Submitted, 2),
                (JournalKind::Terminal, 2),
                (JournalKind::Submitted, 3),
            ]
        );

        let dir = scratch("compact");
        let path = dir.join("journal.jsonl");
        let (journal, _) = Journal::open(&path).expect("open");
        for record in &records {
            journal.append(record).expect("append");
        }
        journal.compact(&live).expect("compact");
        // The handle stays usable after the rename swap.
        journal
            .append(&JournalRecord::terminal(3, JobState::Completed, None))
            .expect("append after compact");
        drop(journal);
        let (_j, replay) = Journal::open(&path).expect("reopen");
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.dropped_bytes, 0);
        let jobs = recover(&replay.records);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 2);
        assert_eq!(jobs[1].id, 3);
        assert_eq!(jobs[1].state, Some((JobState::Completed, None)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_and_compaction_counters_track_the_file() {
        let dir = scratch("counters");
        let path = dir.join("journal.jsonl");
        let (journal, _) = Journal::open(&path).expect("open");
        assert_eq!(journal.bytes(), 0);
        assert_eq!(journal.compactions(), 0);
        journal
            .append(&JournalRecord::submitted(1, request(1)))
            .expect("append");
        journal
            .append(&JournalRecord::terminal(1, JobState::Completed, None))
            .expect("append");
        let on_disk = std::fs::metadata(&path).expect("stat").len();
        assert_eq!(journal.bytes(), on_disk, "append keeps the size in step");

        // Compacting an unkeyed finished job empties the journal.
        journal.compact(&[]).expect("compact");
        assert_eq!(journal.compactions(), 1);
        assert_eq!(journal.bytes(), 0);
        assert_eq!(std::fs::metadata(&path).expect("stat").len(), 0);

        // A reopened handle starts from the on-disk size again.
        journal
            .append(&JournalRecord::submitted(2, request(2)))
            .expect("append");
        let size = journal.bytes();
        drop(journal);
        let (journal, _) = Journal::open(&path).expect("reopen");
        assert_eq!(journal.bytes(), size);
        assert_eq!(journal.compactions(), 0, "compactions count per handle");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_trigger_fires_every_n_terminals() {
        let dir = scratch("trigger");
        let (journal, _) = Journal::open(dir.join("j.jsonl")).expect("open");
        let mut fired = 0;
        for _ in 0..(2 * COMPACT_EVERY) {
            if journal.should_compact() {
                fired += 1;
            }
        }
        assert_eq!(fired, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
