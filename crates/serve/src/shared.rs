//! The process-wide verdict cache shared by every worker.
//!
//! The per-run memo-cache ([`MemoBench`](ecripse_core::cache::MemoBench))
//! dies with its run; a resident service wants repeated jobs against the
//! same cell to get cheaper over time. But a cache *inside* the per-run
//! pipeline would change the run's hit/miss/simulation counters and
//! break the service's bit-identity promise. The resolution is layering:
//! [`SharedBench`] wraps the **raw** bench, *below* every counting layer
//! ([`SimCounter`](ecripse_core::bench::SimCounter), retry ladder,
//! per-run memo-cache, oracle). Those layers observe exactly the query
//! stream of a direct run — same counters, same verdicts, same reports —
//! while a warm [`VerdictCache`] quietly answers repeats without
//! touching the circuit solver. Only wall-clock time changes.
//!
//! Keys are `(bench tag, evaluation mode, quantised query)`: the tag
//! separates cells/bias points (and duty ratios — `at_alpha` folds `α`
//! into the tag so fault-injection benches that specialise per point can
//! never be served another point's verdict), and the mode separates the
//! infallible, fallible and per-attempt evaluation paths, which the SRAM
//! benches implement with different grid resolutions. Errors are never
//! cached — a transient failure must stay retryable.

use ecripse_core::bench::{EvalError, SolveEffort, Testbench};
use ecripse_core::cache::MemoCacheConfig;
use ecripse_core::sweep::SweepBench;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Evaluation mode of the infallible [`Testbench::fails`] path.
const MODE_PLAIN: u16 = 0;
/// Evaluation mode of [`Testbench::try_fails`].
const MODE_TRY: u16 = 1;
/// Base mode of [`Testbench::try_fails_attempt`]; attempt `k` maps to
/// `MODE_ATTEMPT_BASE + k` (saturated), keeping escalated-effort
/// verdicts separate from first-try ones.
const MODE_ATTEMPT_BASE: u16 = 2;

type CacheKey = (u64, u16, Vec<i64>);

/// A sharded, process-lifetime verdict store.
#[derive(Debug)]
pub struct VerdictCache {
    quantum: f64,
    scope: String,
    shards: Vec<RwLock<HashMap<CacheKey, bool>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerdictCache {
    /// An empty, unscoped cache. The [`MemoCacheConfig`] is reused for
    /// its grid quantum and shard count; its `enabled` flag is handled
    /// by the [`SharedBench`] wrapper, not here.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is not positive or `shards` is zero.
    pub fn new(config: MemoCacheConfig) -> Self {
        Self::with_scope(config, "")
    }

    /// An empty cache whose snapshot fingerprint additionally binds to
    /// `scope` — an opaque key-space discriminator. The server passes
    /// the scenario-registry digest here, so a snapshot persisted under
    /// one registry (or one scenario semantics version) is *rejected*,
    /// not misapplied, by a process running another.
    ///
    /// # Panics
    ///
    /// See [`VerdictCache::new`].
    pub fn with_scope(config: MemoCacheConfig, scope: &str) -> Self {
        assert!(
            config.quantum > 0.0 && config.quantum.is_finite(),
            "cache quantum must be positive and finite"
        );
        assert!(config.shards > 0, "need at least one cache shard");
        Self {
            quantum: config.quantum,
            scope: scope.to_owned(),
            shards: (0..config.shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Queries answered without touching the underlying bench.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that reached the underlying bench.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Verdicts currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit fraction since startup, `None` before any traffic.
    pub fn hit_rate(&self) -> Option<f64> {
        let hits = self.hits();
        let total = hits + self.misses();
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Drops every verdict and zeroes the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn quantise(&self, z: &[f64]) -> Vec<i64> {
        z.iter()
            .map(|v| (v / self.quantum).round() as i64)
            .collect()
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = fnv1a_u64(0xcbf2_9ce4_8422_2325, key.0);
        h = fnv1a_u64(h, u64::from(key.1));
        for v in &key.2 {
            h = fnv1a_u64(h, *v as u64);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn lookup(&self, key: &CacheKey) -> Option<bool> {
        self.shards[self.shard_of(key)].read().get(key).copied()
    }

    fn insert(&self, key: CacheKey, verdict: bool) {
        self.shards[self.shard_of(&key)]
            .write()
            .insert(key, verdict);
    }

    /// Compatibility fingerprint of this cache's key space: any change
    /// to the snapshot schema, the quantisation grid or the scope (the
    /// server's scenario-registry digest) invalidates persisted verdicts
    /// (a verdict keyed on a different grid or computed by a different
    /// indicator set would be silently wrong, not just stale).
    pub fn fingerprint(&self) -> String {
        let mut hash = fnv1a_u64(0xcbf2_9ce4_8422_2325, u64::from(CACHE_SNAPSHOT_VERSION));
        hash = fnv1a_u64(hash, self.quantum.to_bits());
        for b in self.scope.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// Persists every resident verdict to `path` atomically (`.tmp`
    /// sibling + rename, the sweep-checkpoint discipline) and returns
    /// the number of entries written. Entries are sorted by key so the
    /// file is byte-identical for identical cache contents.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failures,
    /// [`SnapshotError::Malformed`] if serialisation fails.
    pub fn save_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let mut entries: Vec<SnapshotEntry> = Vec::new();
        for shard in &self.shards {
            for ((tag, mode, key), verdict) in shard.read().iter() {
                entries.push(SnapshotEntry {
                    // Full-range u64 tags would lose precision as JSON
                    // numbers; hex strings round-trip exactly.
                    tag: format!("{tag:016x}"),
                    mode: *mode,
                    key: key.clone(),
                    verdict: *verdict,
                });
            }
        }
        entries.sort_by(|a, b| (&a.tag, a.mode, &a.key).cmp(&(&b.tag, b.mode, &b.key)));
        let count = entries.len();
        let snapshot = CacheSnapshot {
            schema_version: CACHE_SNAPSHOT_VERSION,
            fingerprint: self.fingerprint(),
            entries,
        };
        let json = serde_json::to_string(&snapshot)
            .map_err(|e| SnapshotError::Malformed(format!("serialise snapshot: {e}")))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json.as_bytes()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Ok(count)
    }

    /// Loads a snapshot previously written by [`Self::save_snapshot`]
    /// into this cache and returns the number of entries restored. The
    /// schema version is validated first, then the fingerprint; a
    /// mismatch on either leaves the cache untouched — stale verdicts
    /// are worse than a cold start.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read (including a
    /// simple not-found on first boot), [`SnapshotError::Malformed`] on
    /// parse failures, [`SnapshotError::SchemaVersion`] /
    /// [`SnapshotError::Fingerprint`] on compatibility mismatches.
    pub fn load_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let snapshot: CacheSnapshot =
            serde_json::from_str(&text).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if snapshot.schema_version != CACHE_SNAPSHOT_VERSION {
            return Err(SnapshotError::SchemaVersion {
                found: snapshot.schema_version,
                expected: CACHE_SNAPSHOT_VERSION,
            });
        }
        let expected = self.fingerprint();
        if snapshot.fingerprint != expected {
            return Err(SnapshotError::Fingerprint {
                found: snapshot.fingerprint,
                expected,
            });
        }
        let mut count = 0usize;
        for entry in snapshot.entries {
            let tag = u64::from_str_radix(&entry.tag, 16)
                .map_err(|e| SnapshotError::Malformed(format!("tag {:?}: {e}", entry.tag)))?;
            self.insert((tag, entry.mode, entry.key), entry.verdict);
            count += 1;
        }
        Ok(count)
    }
}

/// Schema version of the on-disk verdict snapshot; bump on any change to
/// [`CacheSnapshot`]'s layout or key semantics.
///
/// Version history:
/// * 1 — initial snapshot format;
/// * 2 — scenario-aware key space: the fingerprint binds to the cache
///   scope (the scenario-registry digest) and operating-point tags are
///   salted with the job's scenario, so v1 snapshots — written when
///   every verdict implicitly meant `read-snm` — are retired rather
///   than misread.
pub const CACHE_SNAPSHOT_VERSION: u32 = 2;

/// One persisted verdict (the cache key with a hex-encoded tag).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotEntry {
    tag: String,
    mode: u16,
    key: Vec<i64>,
    verdict: bool,
}

/// The on-disk form of a [`VerdictCache`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    schema_version: u32,
    fingerprint: String,
    entries: Vec<SnapshotEntry>,
}

/// Why a snapshot could not be saved or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (including not-found on first boot).
    Io(String),
    /// The file is not a valid snapshot.
    Malformed(String),
    /// The snapshot was written by an incompatible schema.
    SchemaVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The snapshot's key space differs from this cache's (e.g. another
    /// quantisation grid).
    Fingerprint {
        /// Fingerprint found in the file.
        found: String,
        /// Fingerprint of this cache.
        expected: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot io: {e}"),
            Self::Malformed(e) => write!(f, "snapshot malformed: {e}"),
            Self::SchemaVersion { found, expected } => {
                write!(f, "snapshot schema v{found}, this build writes v{expected}")
            }
            Self::Fingerprint { found, expected } => {
                write!(
                    f,
                    "snapshot fingerprint {found} does not match cache {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a digest of a sequence of words — the service derives bench
/// tags from the supply voltage (and, via `at_alpha`, the duty ratio)
/// with this.
pub fn tag_for(parts: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        hash = fnv1a_u64(hash, *p);
    }
    hash
}

/// A bench wrapper backed by a [`VerdictCache`].
///
/// Layer it at the very *bottom* of the evaluation stack (it is the
/// bench handed to [`Ecripse::new`](ecripse_core::ecripse::Ecripse)),
/// never above the counting layers — see the module docs.
#[derive(Debug)]
pub struct SharedBench<B> {
    inner: B,
    tag: u64,
    cache: Arc<VerdictCache>,
    enabled: bool,
}

impl<B> SharedBench<B> {
    /// Wraps `inner`, keying its verdicts under `tag`. With `enabled`
    /// off the wrapper is a transparent pass-through.
    pub fn new(inner: B, tag: u64, cache: Arc<VerdictCache>, enabled: bool) -> Self {
        Self {
            inner,
            tag,
            cache,
            enabled,
        }
    }

    /// The wrapped bench.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Clone> Clone for SharedBench<B> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            tag: self.tag,
            cache: Arc::clone(&self.cache),
            enabled: self.enabled,
        }
    }
}

impl<B: Testbench> SharedBench<B> {
    fn key(&self, mode: u16, z: &[f64]) -> CacheKey {
        (self.tag, mode, self.cache.quantise(z))
    }

    fn attempt_mode(attempt: usize) -> u16 {
        MODE_ATTEMPT_BASE
            .saturating_add(attempt.min(usize::from(u16::MAX - MODE_ATTEMPT_BASE)) as u16)
    }

    fn cached_try(
        &self,
        mode: u16,
        z: &[f64],
        eval: impl FnOnce() -> Result<bool, EvalError>,
    ) -> Result<bool, EvalError> {
        if !self.enabled {
            return eval();
        }
        let key = self.key(mode, z);
        if let Some(verdict) = self.cache.lookup(&key) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(verdict);
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let verdict = eval()?;
        self.cache.insert(key, verdict);
        Ok(verdict)
    }
}

impl<B: Testbench> Testbench for SharedBench<B> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn fails(&self, z: &[f64]) -> bool {
        if !self.enabled {
            return self.inner.fails(z);
        }
        let key = self.key(MODE_PLAIN, z);
        if let Some(verdict) = self.cache.lookup(&key) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return verdict;
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let verdict = self.inner.fails(z);
        self.cache.insert(key, verdict);
        verdict
    }

    fn fails_batch(&self, zs: &[Vec<f64>]) -> Vec<bool> {
        if !self.enabled || zs.is_empty() {
            return self.inner.fails_batch(zs);
        }
        // Serial routing (the memo-cache idiom): resolve cached
        // verdicts, deduplicate the rest, evaluate each unique point
        // once through the (possibly parallel) inner batch.
        let keys: Vec<CacheKey> = zs.iter().map(|z| self.key(MODE_PLAIN, z)).collect();
        let mut first_seen: HashMap<&CacheKey, usize> = HashMap::new();
        let mut eval_points: Vec<Vec<f64>> = Vec::new();
        let mut routes: Vec<Result<bool, usize>> = Vec::with_capacity(zs.len());
        let mut hits = 0u64;
        for (z, key) in zs.iter().zip(&keys) {
            if let Some(verdict) = self.cache.lookup(key) {
                hits += 1;
                routes.push(Ok(verdict));
            } else if let Some(&slot) = first_seen.get(key) {
                hits += 1;
                routes.push(Err(slot));
            } else {
                let slot = eval_points.len();
                first_seen.insert(key, slot);
                eval_points.push(z.clone());
                routes.push(Err(slot));
            }
        }
        self.cache.hits.fetch_add(hits, Ordering::Relaxed);
        self.cache
            .misses
            .fetch_add(eval_points.len() as u64, Ordering::Relaxed);
        let fresh = self.inner.fails_batch(&eval_points);
        for (key, verdict) in keys
            .iter()
            .zip(&routes)
            .filter_map(|(key, route)| route.err().map(|slot| (key, fresh[slot])))
        {
            self.cache.insert(key.clone(), verdict);
        }
        routes
            .into_iter()
            .map(|route| route.unwrap_or_else(|slot| fresh[slot]))
            .collect()
    }

    fn try_fails(&self, z: &[f64]) -> Result<bool, EvalError> {
        self.cached_try(MODE_TRY, z, || self.inner.try_fails(z))
    }

    fn try_fails_attempt(&self, z: &[f64], attempt: usize) -> Result<bool, EvalError> {
        self.cached_try(Self::attempt_mode(attempt), z, || {
            self.inner.try_fails_attempt(z, attempt)
        })
    }

    fn try_fails_batch(&self, zs: &[Vec<f64>]) -> Vec<Result<bool, EvalError>> {
        if !self.enabled || zs.is_empty() {
            return self.inner.try_fails_batch(zs);
        }
        let keys: Vec<CacheKey> = zs.iter().map(|z| self.key(MODE_TRY, z)).collect();
        let mut first_seen: HashMap<&CacheKey, usize> = HashMap::new();
        let mut eval_points: Vec<Vec<f64>> = Vec::new();
        let mut routes: Vec<Result<bool, usize>> = Vec::with_capacity(zs.len());
        let mut hits = 0u64;
        for (z, key) in zs.iter().zip(&keys) {
            if let Some(verdict) = self.cache.lookup(key) {
                hits += 1;
                routes.push(Ok(verdict));
            } else if let Some(&slot) = first_seen.get(key) {
                hits += 1;
                routes.push(Err(slot));
            } else {
                let slot = eval_points.len();
                first_seen.insert(key, slot);
                eval_points.push(z.clone());
                routes.push(Err(slot));
            }
        }
        self.cache.hits.fetch_add(hits, Ordering::Relaxed);
        self.cache
            .misses
            .fetch_add(eval_points.len() as u64, Ordering::Relaxed);
        let fresh = self.inner.try_fails_batch(&eval_points);
        for (key, outcome) in keys
            .iter()
            .zip(&routes)
            .filter_map(|(key, route)| route.err().map(|slot| (key, &fresh[slot])))
        {
            if let Ok(verdict) = outcome {
                self.cache.insert(key.clone(), *verdict);
            }
        }
        routes
            .into_iter()
            .map(|route| match route {
                Ok(verdict) => Ok(verdict),
                Err(slot) => fresh[slot].clone(),
            })
            .collect()
    }

    fn solve_effort(&self) -> SolveEffort {
        self.inner.solve_effort()
    }
}

impl<B: SweepBench> SweepBench for SharedBench<B> {
    fn sigmas(&self) -> [f64; 6] {
        self.inner.sigmas()
    }

    fn at_alpha(&self, alpha: f64) -> Self {
        Self {
            inner: self.inner.at_alpha(alpha),
            // Fold α into the tag: benches may specialise per point.
            tag: tag_for(&[self.tag, alpha.to_bits()]),
            cache: Arc::clone(&self.cache),
            enabled: self.enabled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecripse_core::bench::LinearBench;

    fn bench() -> LinearBench {
        LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 2.0)
    }

    fn cache() -> Arc<VerdictCache> {
        Arc::new(VerdictCache::new(MemoCacheConfig::default()))
    }

    #[test]
    fn verdicts_are_cached_and_identical() {
        let cache = cache();
        let shared = SharedBench::new(bench(), 7, Arc::clone(&cache), true);
        let z = vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let first = shared.fails(&z);
        let second = shared.fails(&z);
        assert_eq!(first, second);
        assert_eq!(first, bench().fails(&z));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn batches_deduplicate_and_match_elementwise() {
        let cache = cache();
        let shared = SharedBench::new(bench(), 7, Arc::clone(&cache), true);
        let zs: Vec<Vec<f64>> = vec![
            vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ];
        let got = shared.fails_batch(&zs);
        assert_eq!(got, bench().fails_batch(&zs));
        // Two unique points evaluated, the repeat served from cache.
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
        let tried: Vec<bool> = shared
            .try_fails_batch(&zs)
            .into_iter()
            .map(|r| r.expect("linear bench is total"))
            .collect();
        assert_eq!(tried, got);
    }

    #[test]
    fn modes_and_tags_are_separate_namespaces() {
        let cache = cache();
        let a = SharedBench::new(bench(), 1, Arc::clone(&cache), true);
        let b = SharedBench::new(bench(), 2, Arc::clone(&cache), true);
        let z = vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let _ = a.fails(&z);
        let _ = b.fails(&z); // Different tag: no cross-talk.
        let _ = a.try_fails(&z); // Different mode: separate entry.
        let _ = a.try_fails_attempt(&z, 1); // Different attempt rung.
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn disabled_wrapper_is_a_pure_passthrough() {
        let cache = cache();
        let shared = SharedBench::new(bench(), 7, Arc::clone(&cache), false);
        let z = vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let _ = shared.fails(&z);
        let _ = shared.fails(&z);
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.hit_rate(), None);
    }

    #[test]
    fn at_alpha_changes_the_tag() {
        let cache = cache();
        let shared = SharedBench::new(bench(), 7, Arc::clone(&cache), true);
        let z = vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let _ = shared.fails(&z);
        let _ = shared.at_alpha(0.5).fails(&z);
        assert_eq!(cache.misses(), 2, "per-α verdicts are namespaced");
        assert_eq!(shared.at_alpha(0.5).sigmas(), shared.sigmas());
    }

    /// A bench that counts real evaluations, to prove restored verdicts
    /// are served without touching the inner model.
    struct CountingBench {
        inner: LinearBench,
        evals: AtomicU64,
    }

    impl Testbench for CountingBench {
        fn dim(&self) -> usize {
            self.inner.dim()
        }

        fn fails(&self, z: &[f64]) -> bool {
            self.evals.fetch_add(1, Ordering::Relaxed);
            self.inner.fails(z)
        }
    }

    fn snapshot_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ecripse-snapshot-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("verdicts.json")
    }

    #[test]
    fn snapshot_roundtrip_serves_verdicts_without_reevaluation() {
        let path = snapshot_path("roundtrip");
        let store = cache();
        let shared = SharedBench::new(bench(), 7, Arc::clone(&store), true);
        let hot = vec![3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let cold = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let expected_hot = shared.fails(&hot);
        let expected_cold = shared.try_fails(&cold).expect("linear bench is total");
        let saved = store.save_snapshot(&path).expect("save snapshot");
        assert_eq!(saved, 2);

        // A fresh process: new cache, counting inner bench.
        let restored = cache();
        let loaded = restored.load_snapshot(&path).expect("load snapshot");
        assert_eq!(loaded, saved);
        let counting = CountingBench {
            inner: bench(),
            evals: AtomicU64::new(0),
        };
        let warm = SharedBench::new(counting, 7, Arc::clone(&restored), true);
        assert_eq!(warm.fails(&hot), expected_hot);
        assert_eq!(
            warm.try_fails(&cold).expect("linear bench is total"),
            expected_cold
        );
        assert_eq!(
            warm.inner().evals.load(Ordering::Relaxed),
            0,
            "restored verdicts must be served from the store"
        );
        assert_eq!(restored.hits(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshots_are_deterministic_bytes() {
        let path_a = snapshot_path("bytes-a");
        let path_b = snapshot_path("bytes-b");
        let cache_a = cache();
        let cache_b = cache();
        // Populate in different orders; the sorted snapshot is identical.
        let zs: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![f64::from(i), 0.0, 0.0, 0.0, 0.0, 0.0])
            .collect();
        let shared_a = SharedBench::new(bench(), 7, Arc::clone(&cache_a), true);
        let shared_b = SharedBench::new(bench(), 7, Arc::clone(&cache_b), true);
        for z in &zs {
            let _ = shared_a.fails(z);
        }
        for z in zs.iter().rev() {
            let _ = shared_b.fails(z);
        }
        cache_a.save_snapshot(&path_a).expect("save a");
        cache_b.save_snapshot(&path_b).expect("save b");
        let bytes_a = std::fs::read(&path_a).expect("read a");
        let bytes_b = std::fs::read(&path_b).expect("read b");
        assert_eq!(bytes_a, bytes_b);
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn corrupted_snapshot_is_rejected_and_leaves_cache_empty() {
        let path = snapshot_path("corrupt");
        std::fs::write(&path, b"{ this is not json").expect("write corrupt file");
        let cache = cache();
        let err = cache.load_snapshot(&path).expect_err("corrupt must fail");
        assert!(matches!(err, SnapshotError::Malformed(_)), "got {err}");
        assert!(cache.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantum_mismatch_is_rejected_by_fingerprint() {
        let path = snapshot_path("quantum");
        let coarse = cache();
        let shared = SharedBench::new(bench(), 7, Arc::clone(&coarse), true);
        let _ = shared.fails(&[3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        coarse.save_snapshot(&path).expect("save snapshot");

        let mut other_grid = MemoCacheConfig::default();
        other_grid.quantum *= 10.0;
        let fine = Arc::new(VerdictCache::new(other_grid));
        let err = fine
            .load_snapshot(&path)
            .expect_err("grid mismatch must fail");
        assert!(
            matches!(err, SnapshotError::Fingerprint { .. }),
            "got {err}"
        );
        assert!(fine.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scope_mismatch_is_rejected_by_fingerprint() {
        let path = snapshot_path("scope");
        let read_scope = Arc::new(VerdictCache::with_scope(
            MemoCacheConfig::default(),
            "registry-v1",
        ));
        let shared = SharedBench::new(bench(), 7, Arc::clone(&read_scope), true);
        let _ = shared.fails(&[3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        read_scope.save_snapshot(&path).expect("save snapshot");

        let other_scope = Arc::new(VerdictCache::with_scope(
            MemoCacheConfig::default(),
            "registry-v2",
        ));
        let err = other_scope
            .load_snapshot(&path)
            .expect_err("scope mismatch must fail");
        assert!(
            matches!(err, SnapshotError::Fingerprint { .. }),
            "got {err}"
        );
        assert!(other_scope.is_empty(), "ignored, not misapplied");
        // The matching scope still restores.
        let same = Arc::new(VerdictCache::with_scope(
            MemoCacheConfig::default(),
            "registry-v1",
        ));
        assert_eq!(same.load_snapshot(&path).expect("same scope loads"), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let path = snapshot_path("version");
        let cache = cache();
        cache.save_snapshot(&path).expect("save snapshot");
        let text = std::fs::read_to_string(&path).expect("read snapshot");
        let bumped = text.replace(
            &format!("\"schema_version\":{CACHE_SNAPSHOT_VERSION}"),
            &format!("\"schema_version\":{}", CACHE_SNAPSHOT_VERSION + 1),
        );
        assert_ne!(text, bumped, "version field must be present to rewrite");
        std::fs::write(&path, bumped).expect("rewrite snapshot");
        let err = cache
            .load_snapshot(&path)
            .expect_err("future schema must fail");
        assert!(
            matches!(
                err,
                SnapshotError::SchemaVersion { found, expected }
                    if found == CACHE_SNAPSHOT_VERSION + 1 && expected == CACHE_SNAPSHOT_VERSION
            ),
            "got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_is_an_io_error() {
        let cache = cache();
        let err = cache
            .load_snapshot(Path::new("/nonexistent/ecripse-verdicts.json"))
            .expect_err("missing file must fail");
        assert!(matches!(err, SnapshotError::Io(_)), "got {err}");
    }
}
