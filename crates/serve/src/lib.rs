//! ECRIPSE estimation *service*: a job queue over HTTP.
//!
//! Every other entry point in the workspace is one-shot — a CLI
//! invocation or a library call pays the full warm-up cost (classifier
//! training, memo-cache population) on every run and then throws the
//! warm state away. Yield studies are not one-shot: they are thousands
//! of cell/corner/duty-ratio queries against one shared model. This
//! crate keeps a warm process resident and feeds it a stream of
//! estimation jobs:
//!
//! * [`protocol`] — the versioned JSON wire types ([`SubmitRequest`],
//!   [`JobStatus`], [`JobReport`] embedding the schema-v2
//!   [`RunReport`](ecripse_core::observe::RunReport), [`Metrics`], …);
//! * [`http`] — a deliberately minimal hand-rolled HTTP/1.1 layer over
//!   `std::net` (the build is hermetic: no third-party server stack);
//! * [`shared`] — the process-wide verdict cache every worker shares,
//!   layered *under* the per-run pipeline so served runs stay
//!   bit-identical to direct library calls;
//! * [`journal`] — the checksummed, fsync'd write-ahead job journal
//!   that makes accepted jobs survive a `kill -9`;
//! * [`server`] — the bounded job queue, fixed worker pool,
//!   backpressure (`429` + `Retry-After`), deadlines + cancellation,
//!   crash recovery and graceful drain;
//! * [`client`] — a small blocking client used by `ecripse-cli submit`
//!   and the integration tests, with optional retry/backoff.
//!
//! # Determinism contract
//!
//! A served job runs the *exact* pipeline of the equivalent direct call
//! — same config, same seed, same bench layering on top. The shared
//! cache sits *below* the per-run counting layers, so even the
//! simulation counters in the returned [`JobReport`] match a direct
//! run's report bit-for-bit (wall-clock timings aside); only the time
//! spent changes when the cache is warm.
//!
//! # Example
//!
//! ```no_run
//! use ecripse_serve::{Server, ServeConfig, Client};
//! use ecripse_serve::protocol::{JobSpec, SubmitRequest};
//! use ecripse_core::EcripseConfig;
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let client = Client::new(server.local_addr().to_string());
//! let req = SubmitRequest::new(EcripseConfig::default(), JobSpec::rdf_only(1.0));
//! let status = client.submit(&req)?;
//! let report = client.wait_for_report(status.id, std::time::Duration::from_secs(600))?;
//! println!("{:?}", report.estimate.map(|e| e.p_fail));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod http;
pub mod journal;
pub mod protocol;
pub mod server;
pub mod shared;

pub use client::{BackoffPolicy, Client, ClientError};
pub use journal::{Journal, JournalKind, JournalRecord};
pub use protocol::{
    ApiError, EstimateOutcome, Health, JobKind, JobProgress, JobReport, JobSpec, JobState,
    JobStatus, JobTrace, Metrics, Readiness, SubmitRequest, SweepOutcome, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ShutdownSummary};
pub use shared::{SharedBench, SnapshotError, VerdictCache, CACHE_SNAPSHOT_VERSION};
