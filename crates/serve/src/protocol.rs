//! The versioned JSON wire protocol.
//!
//! Every type here is a plain data carrier: flat structs of numbers,
//! strings, `Option`s and the existing report types from
//! `ecripse-core`. Enums cross the wire as snake_case strings (the
//! [`Stage`](ecripse_core::observe::Stage) idiom), so the JSON stays
//! self-describing and diffable. [`PROTOCOL_VERSION`] gates submissions:
//! a client speaking a different protocol gets a `400` with code
//! `protocol_mismatch` instead of a silently misinterpreted job.

use ecripse_core::ecripse::EcripseConfig;
use ecripse_core::observe::RunReport;
use ecripse_core::oracle::OracleStats;
use ecripse_core::scenario::Scenario;
use ecripse_core::sweep::{SweepPoint, SweepReports};
use ecripse_core::telemetry::{SpanRecord, TraceContext};
use serde::{Deserialize, Serialize};

/// Version of the wire protocol this build speaks. Bumped on any
/// incompatible change to the types in this module.
pub const PROTOCOL_VERSION: u32 = 1;

/// What kind of work a job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One failure-probability estimate (RDF-only or at one duty ratio).
    Estimate,
    /// A duty-ratio sweep sharing one initial particle set.
    Sweep,
}

impl JobKind {
    /// The snake_case wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Estimate => "estimate",
            JobKind::Sweep => "sweep",
        }
    }
}

impl Serialize for JobKind {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::String(self.name().to_owned())
    }
}

impl Deserialize for JobKind {
    fn from_value(value: &serde::json::Value) -> Option<Self> {
        match value.as_str()? {
            "estimate" => Some(JobKind::Estimate),
            "sweep" => Some(JobKind::Sweep),
            _ => None,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully; the report is available.
    Completed,
    /// Finished with an estimation error; see the status `error` field.
    Failed,
    /// Cancelled via `DELETE /v1/jobs/{id}` — removed from the queue, or
    /// stopped cooperatively while running (the worker drains in-flight
    /// work, so a cancelled sweep's checkpoint stays resumable).
    Cancelled,
    /// A queued sweep persisted to a resumable checkpoint during
    /// graceful shutdown instead of being executed.
    Persisted,
    /// The job's `deadline_ms` budget elapsed before it finished; the
    /// worker stopped it cooperatively (or it expired in the queue).
    DeadlineExceeded,
}

impl JobState {
    /// The wire name (snake_case, except the issue-tracker-style
    /// `deadline-exceeded`).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Persisted => "persisted",
            JobState::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed
                | JobState::Failed
                | JobState::Cancelled
                | JobState::Persisted
                | JobState::DeadlineExceeded
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for JobState {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::String(self.name().to_owned())
    }
}

impl Deserialize for JobState {
    fn from_value(value: &serde::json::Value) -> Option<Self> {
        match value.as_str()? {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            "persisted" => Some(JobState::Persisted),
            "deadline-exceeded" => Some(JobState::DeadlineExceeded),
            _ => None,
        }
    }
}

/// What to estimate: the bias point, the duty ratio(s), the kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Estimate or sweep.
    pub kind: JobKind,
    /// Supply voltage the bench factory receives.
    pub vdd: f64,
    /// Duty ratio for an RTN-aware estimate; `None` = RDF-only.
    /// Ignored for sweeps.
    pub alpha: Option<f64>,
    /// Duty-ratio grid for sweeps; required for [`JobKind::Sweep`],
    /// forbidden for [`JobKind::Estimate`].
    pub alphas: Option<Vec<f64>>,
    /// Global point indices for a *shard* of a larger sweep: entry `k`
    /// is the index `alphas[k]` holds in the full grid, so per-point
    /// RNG seeds split by global index and the shard's points are
    /// bit-identical to the ones a single-process full-grid run would
    /// compute (the cluster coordinator's contract). Absent (the
    /// pre-PR-9 wire shape) the sweep is its own full grid.
    #[serde(default)]
    pub alpha_indices: Option<Vec<u64>>,
}

impl JobSpec {
    /// An RDF-only (no RTN) estimate at the given supply.
    pub fn rdf_only(vdd: f64) -> Self {
        Self {
            kind: JobKind::Estimate,
            vdd,
            alpha: None,
            alphas: None,
            alpha_indices: None,
        }
    }

    /// An RTN-aware estimate at one duty ratio.
    pub fn estimate(vdd: f64, alpha: f64) -> Self {
        Self {
            kind: JobKind::Estimate,
            vdd,
            alpha: Some(alpha),
            alphas: None,
            alpha_indices: None,
        }
    }

    /// A duty-ratio sweep.
    pub fn sweep(vdd: f64, alphas: Vec<f64>) -> Self {
        Self {
            kind: JobKind::Sweep,
            vdd,
            alpha: None,
            alphas: Some(alphas),
            alpha_indices: None,
        }
    }

    /// A shard of a larger duty-ratio sweep: `indices[k]` is the global
    /// index of `alphas[k]` in the full grid (see
    /// [`DutySweep::with_point_indices`](ecripse_core::sweep::DutySweep::with_point_indices)).
    pub fn sweep_shard(vdd: f64, alphas: Vec<f64>, indices: Vec<u64>) -> Self {
        Self {
            kind: JobKind::Sweep,
            vdd,
            alpha: None,
            alphas: Some(alphas),
            alpha_indices: Some(indices),
        }
    }

    /// Checks the spec for internal consistency before it is accepted
    /// into the queue (so a worker can never panic on bad input).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !self.vdd.is_finite() || self.vdd <= 0.0 || self.vdd > 2.0 {
            return Err(format!(
                "vdd must be finite and in (0, 2] V, got {}",
                self.vdd
            ));
        }
        if let Some(alpha) = self.alpha {
            if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) {
                return Err(format!("alpha must be in [0, 1], got {alpha}"));
            }
        }
        match self.kind {
            JobKind::Estimate => {
                if self.alphas.is_some() {
                    return Err("estimate jobs take `alpha`, not `alphas`".into());
                }
                if self.alpha_indices.is_some() {
                    return Err("`alpha_indices` only applies to sweep jobs".into());
                }
            }
            JobKind::Sweep => {
                let Some(alphas) = &self.alphas else {
                    return Err("sweep jobs require a non-empty `alphas` grid".into());
                };
                if alphas.is_empty() {
                    return Err("sweep jobs require a non-empty `alphas` grid".into());
                }
                if alphas
                    .iter()
                    .any(|a| !a.is_finite() || !(0.0..=1.0).contains(a))
                {
                    return Err("every sweep alpha must be in [0, 1]".into());
                }
                if self.alpha.is_some() {
                    return Err("sweep jobs take `alphas`, not `alpha`".into());
                }
                if let Some(indices) = &self.alpha_indices {
                    if indices.len() != alphas.len() {
                        return Err(format!(
                            "`alpha_indices` must pair one global index with each alpha \
                             ({} indices for {} alphas)",
                            indices.len(),
                            alphas.len()
                        ));
                    }
                    if !indices.windows(2).all(|w| w[0] < w[1]) {
                        return Err("`alpha_indices` must be strictly increasing".into());
                    }
                }
            }
        }
        Ok(())
    }
}

/// A job submission: protocol version, full estimator configuration and
/// the work spec. The config travels verbatim — the served run uses
/// exactly the seed, sample counts and cache/retry settings submitted,
/// which is what makes served results bit-identical to direct calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Must equal [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// Which registered scenario the job evaluates. Omitting the field
    /// (the PR-6-era wire shape) means the paper's `read-snm`; unknown
    /// ids are rejected at parse time, so a job can never run under a
    /// misread indicator. The server copies this into the run's
    /// [`EcripseConfig::scenario`] — the wire field is authoritative.
    #[serde(default)]
    pub scenario: Scenario,
    /// Full estimator configuration (seed included).
    pub config: EcripseConfig,
    /// What to run.
    pub job: JobSpec,
    /// Wall-clock budget in milliseconds, measured from acceptance: a
    /// job still unfinished when it elapses is stopped cooperatively and
    /// ends in [`JobState::DeadlineExceeded`]. `None` (and every pre-PR-8
    /// wire body, via the serde default) means no deadline. After a
    /// crash recovery the budget restarts at re-enqueue — the journal
    /// carries no wall-clock anchor.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Client-chosen idempotency key. The server journals the key with
    /// the accepted job; a later submission carrying the same key
    /// returns the *original* job's status (HTTP `200`, same id) instead
    /// of enqueuing a duplicate — which makes blind client retries safe
    /// even across a server crash and restart.
    #[serde(default)]
    pub idempotency_key: Option<String>,
    /// Distributed trace context the job should run under. Clients (and
    /// the cluster coordinator, which stamps a per-shard child context)
    /// set this to tie the job's spans into an existing trace; absent —
    /// every pre-PR-10 wire body, via the serde default — the server
    /// derives a deterministic context from the job id and RNG seed.
    /// A `traceparent` header on the submission takes precedence.
    #[serde(default)]
    pub trace: Option<TraceContext>,
}

impl SubmitRequest {
    /// A submission speaking this build's protocol version, inheriting
    /// the scenario declared in `config`.
    pub fn new(config: EcripseConfig, job: JobSpec) -> Self {
        Self {
            protocol: PROTOCOL_VERSION,
            scenario: config.scenario,
            config,
            job,
            deadline_ms: None,
            idempotency_key: None,
            trace: None,
        }
    }

    /// A submission for an explicit scenario (also stamped into the
    /// carried config, keeping the two views consistent).
    pub fn with_scenario(scenario: Scenario, mut config: EcripseConfig, job: JobSpec) -> Self {
        config.scenario = scenario;
        Self::new(config, job)
    }

    /// Sets the wall-clock deadline budget.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Sets the idempotency key retried submissions are deduplicated by.
    #[must_use]
    pub fn with_idempotency_key(mut self, key: impl Into<String>) -> Self {
        self.idempotency_key = Some(key.into());
        self
    }

    /// Runs the job under an existing distributed trace context.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// A job's lifecycle snapshot (`POST /v1/jobs`, `GET /v1/jobs/{id}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub id: u64,
    /// The scenario the job evaluates (default `read-snm`, so PR-6-era
    /// status documents parse unchanged).
    #[serde(default)]
    pub scenario: Scenario,
    /// Current lifecycle state.
    pub state: JobState,
    /// Position in the queue while [`JobState::Queued`] (0 = next).
    pub queue_position: Option<u64>,
    /// Error description for [`JobState::Failed`].
    pub error: Option<String>,
    /// Live execution progress while [`JobState::Running`]; absent
    /// before the worker picks the job up and after it finishes.
    pub progress: Option<JobProgress>,
    /// The job's distributed trace id as 16 lowercase hex digits —
    /// clients correlate the status document with JSONL trace lines and
    /// the `/v1/jobs/{id}/trace` waterfall through it. Absent in
    /// PR-9-era status documents.
    #[serde(default)]
    pub trace_id: Option<String>,
}

/// Live progress of a running job, fed from the worker's observer.
///
/// The numbers are monotone snapshots — polling the status endpoint
/// twice while a job runs shows `simulations`/`iterations` advancing.
/// They are *observational only*: nothing here feeds back into the
/// estimation pipeline, so the final report stays bit-identical to the
/// equivalent direct library call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProgress {
    /// Pipeline stage currently executing (snake_case stage name).
    pub stage: Option<String>,
    /// Particle-filter iterations finished so far.
    pub iterations: u64,
    /// Transistor-level simulations spent so far.
    pub simulations: u64,
    /// Importance samples drawn so far (stage 2).
    pub is_samples: u64,
    /// Latest running failure-probability estimate, once one exists.
    pub estimate: Option<f64>,
}

/// A completed estimate's numbers plus its full structured report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateOutcome {
    /// Failure-probability estimate.
    pub p_fail: f64,
    /// 95 % confidence half-width.
    pub ci95_half_width: f64,
    /// Transistor-level simulations spent.
    pub simulations: u64,
    /// Importance samples drawn in stage 2.
    pub is_samples: u64,
    /// The schema-v2 run report, bit-identical (timings aside) to the
    /// report of the equivalent direct library call.
    pub report: RunReport,
}

/// A completed sweep's numbers plus all structured reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// RDF-only reference failure probability.
    pub p_fail_rdf_only: f64,
    /// Its CI half-width.
    pub rdf_only_ci95: f64,
    /// Simulations spent on the shared initialisation.
    pub init_simulations: u64,
    /// Total simulations across the sweep.
    pub total_simulations: u64,
    /// Per-α results in sweep order.
    pub points: Vec<SweepPoint>,
    /// Per-point and reference reports.
    pub reports: SweepReports,
}

/// The full result document (`GET /v1/jobs/{id}/report`). Exactly one
/// of `estimate`/`sweep` is populated for completed jobs; failed jobs
/// carry neither and describe the failure in `error`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Job id.
    pub id: u64,
    /// The scenario the job evaluated (default `read-snm`).
    #[serde(default)]
    pub scenario: Scenario,
    /// Terminal state the job reached.
    pub state: JobState,
    /// Error description for failed jobs.
    pub error: Option<String>,
    /// Estimate outcome, for completed [`JobKind::Estimate`] jobs.
    pub estimate: Option<EstimateOutcome>,
    /// Sweep outcome, for completed [`JobKind::Sweep`] jobs.
    pub sweep: Option<SweepOutcome>,
    /// The job's distributed trace id (16 lowercase hex digits). Absent
    /// in PR-9-era report documents.
    #[serde(default)]
    pub trace_id: Option<String>,
}

/// The span timeline of one job (`GET /v1/jobs/{id}/trace`). A worker
/// serves the spans its own [`SpanCollector`](ecripse_core::telemetry::SpanCollector)
/// recorded; the cluster coordinator serves its root and per-shard spans
/// merged with the spans fetched from every worker that held a shard,
/// sorted by `start_ts` — one waterfall for the whole distributed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// The job id the spans describe (the id the serving node assigned —
    /// for a merged cluster waterfall, the coordinator's job id).
    pub job_id: u64,
    /// The trace id every span in `spans` shares (16 hex digits).
    pub trace_id: String,
    /// Spans sorted by `start_ts`; parent links are span ids within the
    /// same document (the root span's parent points outside it).
    pub spans: Vec<SpanRecord>,
}

/// The JSON body of every non-2xx response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiError {
    /// Machine-readable error code (`queue_full`, `unknown_job`,
    /// `protocol_mismatch`, `invalid_job`, `not_ready`, `bad_request`,
    /// `shutting_down`, `conflict`, `not_found`, `method_not_allowed`,
    /// `internal`).
    pub error: String,
    /// Human-readable description.
    pub message: String,
    /// Backpressure hint mirrored from the `Retry-After` header, for
    /// `429` responses.
    pub retry_after_seconds: Option<u64>,
}

impl ApiError {
    /// A new error body without a retry hint.
    pub fn new(error: &str, message: impl Into<String>) -> Self {
        Self {
            error: error.to_string(),
            message: message.into(),
            retry_after_seconds: None,
        }
    }
}

/// The `GET /healthz` body. Liveness only: it answers `200` whenever
/// the process can serve HTTP at all (even while draining) — routing
/// decisions belong to `/readyz`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Health {
    /// `"ok"` while accepting, `"draining"` during graceful shutdown.
    pub status: String,
    /// Protocol version the server speaks.
    pub protocol: u32,
}

/// The `GET /readyz` body: whether the node should receive traffic.
/// Served with `200` when ready and `503` otherwise, so load balancers
/// and the future coordinator can route on the status code alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Readiness {
    /// `true` exactly when the response status is `200`.
    pub ready: bool,
    /// `"ready"`, or why not: `"replaying"` (journal replay at boot),
    /// `"draining"` (graceful shutdown), `"saturated"` (queue full).
    pub status: String,
    /// Protocol version the server speaks.
    pub protocol: u32,
    /// On a `503`, how long the caller should wait before probing again
    /// (mirrors the `Retry-After` header). Absent when ready and in
    /// pre-PR-9 bodies.
    #[serde(default)]
    pub retry_after_seconds: Option<u64>,
}

/// The `GET /metrics` body: queue, worker, job and cache counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// Bound of the queue.
    pub queue_capacity: u64,
    /// Jobs currently executing.
    pub in_flight: u64,
    /// Size of the worker pool.
    pub workers: u64,
    /// Jobs ever accepted.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an estimation error.
    pub failed: u64,
    /// Jobs cancelled via `DELETE /v1/jobs/{id}`, queued and running
    /// combined (the per-cause split is below).
    pub cancelled: u64,
    /// Of `cancelled`: jobs removed from the queue before running.
    #[serde(default)]
    pub cancelled_queued: u64,
    /// Of `cancelled`: running jobs stopped cooperatively mid-pipeline.
    #[serde(default)]
    pub cancelled_running: u64,
    /// Jobs whose `deadline_ms` budget elapsed before they finished.
    #[serde(default)]
    pub deadline_exceeded: u64,
    /// Unfinished jobs re-enqueued from the write-ahead journal at boot.
    #[serde(default)]
    pub recovered: u64,
    /// Submissions answered from the idempotency-key map instead of
    /// enqueuing a duplicate job.
    #[serde(default)]
    pub idempotent_hits: u64,
    /// Queued sweeps persisted to checkpoints during shutdown.
    pub persisted: u64,
    /// Submissions bounced with `429`.
    pub rejected: u64,
    /// Entries resident in the process-wide verdict cache.
    pub cache_entries: u64,
    /// Verdict-cache hits since startup.
    pub cache_hits: u64,
    /// Verdict-cache misses since startup.
    pub cache_misses: u64,
    /// Hit fraction, absent until the cache has seen traffic.
    pub cache_hit_rate: Option<f64>,
    /// Verdicts restored from the persistent store at startup (0 when
    /// no store is configured or the snapshot was rejected).
    #[serde(default)]
    pub cache_loaded_entries: u64,
    /// Write-ahead journal compactions since startup (0 when no journal
    /// is configured).
    #[serde(default)]
    pub journal_compactions_total: u64,
    /// Journal frames replayed during boot recovery — every submission
    /// and terminal record decoded from the pre-crash file, not just the
    /// re-enqueued jobs (`recovered` counts those).
    #[serde(default)]
    pub journal_frames_replayed_total: u64,
    /// Current on-disk size of the journal file in bytes.
    #[serde(default)]
    pub journal_bytes: u64,
    /// Wall-clock seconds boot-time journal recovery took (0 when no
    /// journal is configured). Absent in pre-PR-10 documents.
    #[serde(default)]
    pub journal_replay_duration_seconds: f64,
    /// Seconds since the server bound its socket.
    pub uptime_seconds: f64,
    /// Jobs in a terminal state (completed + failed + cancelled +
    /// persisted + deadline-exceeded).
    pub jobs_in_terminal_state: u64,
    /// Completed jobs per registered scenario, in registry order (one
    /// entry per scenario, zero counts included). Absent in PR-6-era
    /// documents.
    #[serde(default)]
    pub scenario_jobs: Vec<ScenarioJobCount>,
    /// Oracle statistics summed over every completed job (classified /
    /// simulated / retrains / retries / quarantined, …).
    pub oracle: OracleStats,
}

/// Completed-job count of one registered scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioJobCount {
    /// The scenario id (`read-snm`, `hold-snm`, …).
    pub scenario: String,
    /// Jobs of this scenario that completed successfully.
    pub completed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enums_round_trip_as_snake_case() {
        for kind in [JobKind::Estimate, JobKind::Sweep] {
            let v = kind.to_value();
            assert_eq!(JobKind::from_value(&v), Some(kind));
        }
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Persisted,
            JobState::DeadlineExceeded,
        ] {
            let v = state.to_value();
            assert_eq!(v.as_str(), Some(state.name()));
            assert_eq!(JobState::from_value(&v), Some(state));
        }
        assert!(JobState::from_value(&serde::json::Value::String("nope".into())).is_none());
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Persisted.is_terminal());
        assert!(JobState::DeadlineExceeded.is_terminal());
    }

    #[test]
    fn spec_validation_catches_inconsistencies() {
        assert!(JobSpec::rdf_only(1.0).validate().is_ok());
        assert!(JobSpec::estimate(1.0, 0.3).validate().is_ok());
        assert!(JobSpec::sweep(1.0, vec![0.0, 0.5, 1.0]).validate().is_ok());

        assert!(JobSpec::rdf_only(f64::NAN).validate().is_err());
        assert!(JobSpec::rdf_only(-0.5).validate().is_err());
        assert!(JobSpec::estimate(1.0, 1.5).validate().is_err());
        assert!(JobSpec::sweep(1.0, vec![]).validate().is_err());
        assert!(JobSpec::sweep(1.0, vec![0.5, 2.0]).validate().is_err());

        let mut mixed = JobSpec::estimate(1.0, 0.3);
        mixed.alphas = Some(vec![0.1]);
        assert!(mixed.validate().is_err());
        let mut mixed = JobSpec::sweep(1.0, vec![0.1]);
        mixed.alpha = Some(0.2);
        assert!(mixed.validate().is_err());
    }

    #[test]
    fn shard_specs_validate_their_indices() {
        assert!(JobSpec::sweep_shard(1.0, vec![0.0, 0.5], vec![0, 3])
            .validate()
            .is_ok());
        // One global index per alpha.
        assert!(JobSpec::sweep_shard(1.0, vec![0.0, 0.5], vec![0])
            .validate()
            .is_err());
        // Strictly increasing (shards are ordered slices).
        assert!(JobSpec::sweep_shard(1.0, vec![0.0, 0.5], vec![3, 0])
            .validate()
            .is_err());
        assert!(JobSpec::sweep_shard(1.0, vec![0.0, 0.5], vec![2, 2])
            .validate()
            .is_err());
        // Indices are a sweep-only concept.
        let mut estimate = JobSpec::estimate(1.0, 0.3);
        estimate.alpha_indices = Some(vec![0]);
        assert!(estimate.validate().is_err());
    }

    #[test]
    fn pre_pr9_wire_bodies_still_parse() {
        // A sweep submission without `alpha_indices` — the PR-8-era
        // wire shape — must parse as a full-grid sweep.
        let req = SubmitRequest::new(
            EcripseConfig::default(),
            JobSpec::sweep(1.0, vec![0.0, 1.0]),
        );
        let json = serde_json::to_string(&req).expect("serialise");
        let stripped = {
            let mut value: serde::json::Value = serde_json::from_str(&json).expect("parse");
            if let serde::json::Value::Object(entries) = &mut value {
                for (key, entry) in entries.iter_mut() {
                    if key == "job" {
                        if let serde::json::Value::Object(job) = entry {
                            job.retain(|(k, _)| k != "alpha_indices");
                        }
                    }
                }
            }
            serde_json::to_string(&value).expect("re-serialise")
        };
        let back: SubmitRequest = serde_json::from_str(&stripped).expect("old body parses");
        assert_eq!(back.job.alpha_indices, None);
        assert_eq!(back, req);
    }

    #[test]
    fn submit_request_uses_current_protocol() {
        let req = SubmitRequest::new(EcripseConfig::default(), JobSpec::rdf_only(1.0));
        assert_eq!(req.protocol, PROTOCOL_VERSION);
        let json = serde_json::to_string(&req).expect("serialise");
        let back: SubmitRequest = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, req);
    }

    #[test]
    fn pre_pr8_wire_bodies_still_parse() {
        // A submission without deadline_ms / idempotency_key — the
        // PR-7-era wire shape — must parse with both defaulted.
        let req = SubmitRequest::new(EcripseConfig::default(), JobSpec::rdf_only(1.0));
        let json = serde_json::to_string(&req).expect("serialise");
        assert!(json.contains("deadline_ms"));
        let stripped = {
            let mut value: serde::json::Value = serde_json::from_str(&json).expect("parse");
            if let serde::json::Value::Object(entries) = &mut value {
                entries.retain(|(k, _)| k != "deadline_ms" && k != "idempotency_key");
            }
            serde_json::to_string(&value).expect("re-serialise")
        };
        let back: SubmitRequest = serde_json::from_str(&stripped).expect("old body parses");
        assert_eq!(back.deadline_ms, None);
        assert_eq!(back.idempotency_key, None);
        assert_eq!(back, req);
    }

    #[test]
    fn submit_request_builders_round_trip() {
        let req = SubmitRequest::new(EcripseConfig::default(), JobSpec::estimate(1.0, 0.3))
            .with_deadline_ms(1500)
            .with_idempotency_key("job-42")
            .with_trace(TraceContext::for_job(7, 42));
        let json = serde_json::to_string(&req).expect("serialise");
        let back: SubmitRequest = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.deadline_ms, Some(1500));
        assert_eq!(back.idempotency_key.as_deref(), Some("job-42"));
        assert_eq!(back.trace, Some(TraceContext::for_job(7, 42)));
        assert_eq!(back, req);
    }

    #[test]
    fn pre_pr10_wire_bodies_still_parse() {
        // A submission without `trace` — the PR-9-era wire shape — must
        // parse with the context defaulted to `None`.
        let req = SubmitRequest::new(EcripseConfig::default(), JobSpec::rdf_only(1.0))
            .with_trace(TraceContext::for_job(3, 99));
        let json = serde_json::to_string(&req).expect("serialise");
        assert!(json.contains("trace"));
        let stripped = {
            let mut value: serde::json::Value = serde_json::from_str(&json).expect("parse");
            if let serde::json::Value::Object(entries) = &mut value {
                entries.retain(|(k, _)| k != "trace");
            }
            serde_json::to_string(&value).expect("re-serialise")
        };
        let back: SubmitRequest = serde_json::from_str(&stripped).expect("old body parses");
        assert_eq!(back.trace, None);
    }

    #[test]
    fn job_trace_documents_round_trip() {
        let context = TraceContext::for_job(11, 2024);
        let trace = JobTrace {
            job_id: 11,
            trace_id: ecripse_core::telemetry::fmt_hex_id(context.trace_id),
            spans: vec![SpanRecord {
                trace_id: ecripse_core::telemetry::fmt_hex_id(context.trace_id),
                span_id: ecripse_core::telemetry::fmt_hex_id(context.span_id("worker/job")),
                parent_span_id: ecripse_core::telemetry::fmt_hex_id(0),
                name: "job".into(),
                node: "worker".into(),
                start_ts: 1_700_000_000.25,
                duration_s: 0.75,
            }],
        };
        let json = serde_json::to_string(&trace).expect("serialise");
        let back: JobTrace = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, trace);
    }
}
