//! A small blocking client for the service.
//!
//! One TCP connection per request (the server speaks
//! `Connection: close`), JSON in, JSON out, typed errors. Used by
//! `ecripse-cli submit` and the integration tests; it deliberately has
//! no retry logic of its own — backpressure surfaces as
//! [`ClientError::Busy`] with the server's `Retry-After` hint, and the
//! caller decides.

use crate::http;
use crate::protocol::{
    ApiError, Health, JobReport, JobStatus, Metrics, SubmitRequest, PROTOCOL_VERSION,
};
use serde::Deserialize;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting, reading or writing the socket failed.
    Io(String),
    /// The queue is full; the server asked us to come back later.
    Busy {
        /// The server's `Retry-After` hint.
        retry_after_seconds: u64,
    },
    /// The server answered with a non-2xx status.
    Api {
        /// HTTP status code.
        status: u16,
        /// Machine-readable error code from the body.
        code: String,
        /// Human-readable message from the body.
        message: String,
    },
    /// The server's bytes did not parse as the expected protocol type.
    Protocol(String),
    /// [`Client::wait`] ran out of time.
    Timeout {
        /// The job that did not reach a terminal state in time.
        id: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy {
                retry_after_seconds,
            } => write!(f, "server busy; retry after {retry_after_seconds}s"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "server error {status} ({code}): {message}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Timeout { id } => write!(f, "timed out waiting for job {id}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<http::HttpError> for ClientError {
    fn from(e: http::HttpError) -> Self {
        match e {
            http::HttpError::Io(m) => ClientError::Io(m),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// A blocking client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7878"`) with a 30 s
    /// per-request socket timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the per-request socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<http::RawResponse, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        http::write_request(&mut stream, method, path, body)?;
        Ok(http::read_response(&mut stream)?)
    }

    fn expect_json<T: Deserialize>(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<T, ClientError> {
        let (status, headers, text) = self.request(method, path, body)?;
        if (200..300).contains(&status) {
            return serde_json::from_str(&text)
                .map_err(|e| ClientError::Protocol(format!("bad {path} response body: {e}")));
        }
        let error: Option<ApiError> = serde_json::from_str(&text).ok();
        if status == 429 {
            let retry_after_seconds = error
                .as_ref()
                .and_then(|e| e.retry_after_seconds)
                .or_else(|| {
                    headers
                        .iter()
                        .find(|(n, _)| n == "retry-after")
                        .and_then(|(_, v)| v.parse().ok())
                })
                .unwrap_or(1);
            return Err(ClientError::Busy {
                retry_after_seconds,
            });
        }
        let (code, message) = error
            .map(|e| (e.error, e.message))
            .unwrap_or_else(|| ("unknown".to_string(), text));
        Err(ClientError::Api {
            status,
            code,
            message,
        })
    }

    /// Submits a job (`POST /v1/jobs`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] on backpressure, [`ClientError::Api`] on
    /// rejection, plus the transport errors.
    pub fn submit(&self, request: &SubmitRequest) -> Result<JobStatus, ClientError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("serialise submission: {e}")))?;
        self.expect_json("POST", "/v1/jobs", Some(&body))
    }

    /// Fetches a job's lifecycle snapshot (`GET /v1/jobs/{id}`).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn status(&self, id: u64) -> Result<JobStatus, ClientError> {
        self.expect_json("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// Fetches a terminal job's full report (`GET /v1/jobs/{id}/report`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with code `not_ready` while the job is
    /// still queued or running.
    pub fn report(&self, id: u64) -> Result<JobReport, ClientError> {
        self.expect_json("GET", &format!("/v1/jobs/{id}/report"), None)
    }

    /// Cancels a queued job (`DELETE /v1/jobs/{id}`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with code `conflict` when the job already
    /// started or finished.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, ClientError> {
        self.expect_json("DELETE", &format!("/v1/jobs/{id}"), None)
    }

    /// Fetches `GET /healthz`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn health(&self) -> Result<Health, ClientError> {
        self.expect_json("GET", "/healthz", None)
    }

    /// Checks the server speaks this client's protocol version.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on a version mismatch.
    pub fn handshake(&self) -> Result<Health, ClientError> {
        let health = self.health()?;
        if health.protocol != PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server speaks protocol {}, client speaks {PROTOCOL_VERSION}",
                health.protocol
            )));
        }
        Ok(health)
    }

    /// Fetches `GET /metrics`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics(&self) -> Result<Metrics, ClientError> {
        self.expect_json("GET", "/metrics", None)
    }

    /// Fetches `GET /metrics` as Prometheus text exposition (the
    /// `Accept: text/plain` content negotiation a scraper performs).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics_prometheus(&self) -> Result<String, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        http::write_request_accepting(&mut stream, "GET", "/metrics", None, "text/plain")?;
        let (status, _, body) = http::read_response(&mut stream)?;
        if (200..300).contains(&status) {
            return Ok(body);
        }
        Err(ClientError::Api {
            status,
            code: "unknown".to_string(),
            message: body,
        })
    }

    /// Polls a job's status until it reaches a terminal state.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when `timeout` elapses first; transport
    /// errors pass through.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<JobStatus, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout { id });
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// [`wait`](Client::wait), then fetch the report.
    ///
    /// # Errors
    ///
    /// See [`wait`](Client::wait) and [`report`](Client::report).
    pub fn wait_for_report(&self, id: u64, timeout: Duration) -> Result<JobReport, ClientError> {
        self.wait(id, timeout)?;
        self.report(id)
    }
}
