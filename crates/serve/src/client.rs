//! A small blocking client for the service.
//!
//! One TCP connection per request (the server speaks
//! `Connection: close`), JSON in, JSON out, typed errors. Used by
//! `ecripse-cli submit` and the integration tests.
//!
//! # Retries
//!
//! By default the client makes exactly one attempt per call —
//! backpressure surfaces as [`ClientError::Busy`] with the server's
//! `Retry-After` hint, and the caller decides. [`Client::with_retry`]
//! opts into automatic retries under a [`BackoffPolicy`]: transport
//! errors (a crashed or restarting server), `5xx` responses and `429`
//! backpressure are retried with capped exponential backoff and
//! *deterministic* jitter (a hash of address, path and attempt — no RNG,
//! so test runs are reproducible); a `429`'s `Retry-After` hint is
//! honoured up to the policy's cap. Anything else (`4xx`, protocol
//! mismatches) fails fast.
//!
//! Retrying a `POST /v1/jobs` across a connection error is only safe
//! when the submission carries an idempotency key — the request may have
//! been journaled before the connection died, and the key is what lets
//! the server answer the retry with the original job instead of
//! enqueuing a duplicate. Set one via
//! [`SubmitRequest::with_idempotency_key`](crate::protocol::SubmitRequest::with_idempotency_key)
//! whenever retries are enabled.

use crate::http;
use crate::protocol::{
    ApiError, Health, JobReport, JobStatus, JobTrace, Metrics, Readiness, SubmitRequest,
    PROTOCOL_VERSION,
};
use serde::Deserialize;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Connecting, reading or writing the socket failed.
    Io(String),
    /// The queue is full; the server asked us to come back later.
    Busy {
        /// The server's `Retry-After` hint.
        retry_after_seconds: u64,
    },
    /// The server answered with a non-2xx status.
    Api {
        /// HTTP status code.
        status: u16,
        /// Machine-readable error code from the body.
        code: String,
        /// Human-readable message from the body.
        message: String,
    },
    /// The server's bytes did not parse as the expected protocol type.
    Protocol(String),
    /// [`Client::wait`] ran out of time.
    Timeout {
        /// The job that did not reach a terminal state in time.
        id: u64,
        /// How long the client waited in total before giving up.
        waited: Duration,
    },
    /// The awaited job was cancelled (`DELETE /v1/jobs/{id}`) before it
    /// finished. Distinct from [`ClientError::Api`]: the request
    /// succeeded, the *job* was stopped.
    Cancelled {
        /// The cancelled job.
        id: u64,
    },
    /// The awaited job's server-side `deadline_ms` budget elapsed
    /// before it finished.
    DeadlineExceeded {
        /// The expired job.
        id: u64,
        /// The server's description of the expiry, when one was
        /// recorded.
        error: Option<String>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy {
                retry_after_seconds,
            } => write!(f, "server busy; retry after {retry_after_seconds}s"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "server error {status} ({code}): {message}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Timeout { id, waited } => write!(
                f,
                "timed out waiting for job {id} after {:.3}s",
                waited.as_secs_f64()
            ),
            ClientError::Cancelled { id } => write!(f, "job {id} was cancelled"),
            ClientError::DeadlineExceeded { id, error } => match error {
                Some(e) => write!(f, "job {id} exceeded its deadline: {e}"),
                None => write!(f, "job {id} exceeded its deadline"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

impl From<http::HttpError> for ClientError {
    fn from(e: http::HttpError) -> Self {
        match e {
            http::HttpError::Io(m) => ClientError::Io(m),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// Retry schedule for [`Client::with_retry`]: capped exponential
/// backoff with deterministic jitter.
///
/// Attempt `n` (0-based) sleeps `base × 2ⁿ` clamped to `cap`, then
/// scaled by a jitter factor in `[0.5, 1.0]` derived from an FNV-1a
/// hash of the server address, the request path and the attempt number
/// — different clients and paths desynchronise without any RNG, and a
/// given test run always sleeps the same amounts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep (also clamps a `429`'s
    /// `Retry-After` hint, so a pathological hint cannot stall the
    /// client for minutes).
    pub cap: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
        }
    }
}

/// FNV-1a 64-bit over raw bytes (the jitter hash).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl BackoffPolicy {
    /// The sleep before retry number `attempt` (0-based) of `path`
    /// against `addr`. Pure — same inputs, same delay.
    pub fn delay(&self, addr: &str, path: &str, attempt: u32) -> Duration {
        let doubled = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let raw = doubled.min(self.cap);
        let mut seed = Vec::with_capacity(addr.len() + path.len() + 5);
        seed.extend_from_slice(addr.as_bytes());
        seed.push(b'|');
        seed.extend_from_slice(path.as_bytes());
        seed.extend_from_slice(&attempt.to_le_bytes());
        let jitter = 0.5 + 0.5 * ((fnv1a_bytes(&seed) % 1024) as f64 / 1023.0);
        raw.mul_f64(jitter)
    }

    /// Whether `error` is worth another attempt: transport failures,
    /// `5xx` responses and `429` backpressure. Client-side mistakes
    /// (`4xx`) and protocol mismatches fail fast.
    pub fn retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Io(_) | ClientError::Busy { .. } => true,
            ClientError::Api { status, .. } => (500..600).contains(status),
            // A cancelled or deadline-expired job is a final verdict on
            // the job itself — retrying the poll cannot change it.
            ClientError::Protocol(_)
            | ClientError::Timeout { .. }
            | ClientError::Cancelled { .. }
            | ClientError::DeadlineExceeded { .. } => false,
        }
    }
}

/// A blocking client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
    retry: Option<BackoffPolicy>,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7878"`) with a 30 s
    /// per-request socket timeout and no retries.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
            retry: None,
        }
    }

    /// Overrides the per-request socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Enables automatic retries under `policy` (see the module docs
    /// for what is retried — and why submissions should carry an
    /// idempotency key when this is on).
    #[must_use]
    pub fn with_retry(mut self, policy: BackoffPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<http::RawResponse, ClientError> {
        self.request_with_headers(method, path, body, &[])
    }

    fn request_with_headers(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<http::RawResponse, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        http::write_request_with_headers(
            &mut stream,
            method,
            path,
            body,
            "application/json",
            extra_headers,
        )?;
        Ok(http::read_response(&mut stream)?)
    }

    fn expect_json_once_with_headers<T: Deserialize>(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<T, ClientError> {
        let (status, headers, text) =
            self.request_with_headers(method, path, body, extra_headers)?;
        if (200..300).contains(&status) {
            return serde_json::from_str(&text)
                .map_err(|e| ClientError::Protocol(format!("bad {path} response body: {e}")));
        }
        let error: Option<ApiError> = serde_json::from_str(&text).ok();
        if status == 429 {
            let retry_after_seconds = error
                .as_ref()
                .and_then(|e| e.retry_after_seconds)
                .or_else(|| {
                    headers
                        .iter()
                        .find(|(n, _)| n == "retry-after")
                        .and_then(|(_, v)| v.parse().ok())
                })
                .unwrap_or(1);
            return Err(ClientError::Busy {
                retry_after_seconds,
            });
        }
        let (code, message) = error
            .map(|e| (e.error, e.message))
            .unwrap_or_else(|| ("unknown".to_string(), text));
        Err(ClientError::Api {
            status,
            code,
            message,
        })
    }

    fn expect_json<T: Deserialize>(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<T, ClientError> {
        self.expect_json_with_headers(method, path, body, &[])
    }

    fn expect_json_with_headers<T: Deserialize>(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<T, ClientError> {
        let Some(policy) = &self.retry else {
            return self.expect_json_once_with_headers(method, path, body, extra_headers);
        };
        let mut attempt = 0u32;
        loop {
            match self.expect_json_once_with_headers(method, path, body, extra_headers) {
                Ok(value) => return Ok(value),
                Err(error)
                    if attempt + 1 < policy.max_attempts && BackoffPolicy::retryable(&error) =>
                {
                    let mut delay = policy.delay(&self.addr, path, attempt);
                    if let ClientError::Busy {
                        retry_after_seconds,
                    } = &error
                    {
                        // Honour the server's hint, clamped to the cap
                        // so a pathological hint cannot stall us.
                        delay = delay
                            .max(Duration::from_secs(*retry_after_seconds))
                            .min(policy.cap.max(policy.base));
                    }
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Submits a job (`POST /v1/jobs`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Busy`] on backpressure, [`ClientError::Api`] on
    /// rejection, plus the transport errors.
    pub fn submit(&self, request: &SubmitRequest) -> Result<JobStatus, ClientError> {
        let body = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("serialise submission: {e}")))?;
        // A trace-carrying submission also sends the `traceparent`
        // header — the wire field and the header agree, and servers
        // (or proxies) that only look at headers still see the trace.
        match &request.trace {
            Some(trace) => {
                let traceparent = trace.traceparent();
                self.expect_json_with_headers(
                    "POST",
                    "/v1/jobs",
                    Some(&body),
                    &[("traceparent", &traceparent)],
                )
            }
            None => self.expect_json("POST", "/v1/jobs", Some(&body)),
        }
    }

    /// Fetches a job's lifecycle snapshot (`GET /v1/jobs/{id}`).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn status(&self, id: u64) -> Result<JobStatus, ClientError> {
        self.expect_json("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// Fetches a terminal job's full report (`GET /v1/jobs/{id}/report`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with code `not_ready` while the job is
    /// still queued or running.
    pub fn report(&self, id: u64) -> Result<JobReport, ClientError> {
        self.expect_json("GET", &format!("/v1/jobs/{id}/report"), None)
    }

    /// Fetches a job's span timeline (`GET /v1/jobs/{id}/trace`). The
    /// spans are empty until the job finishes; against a cluster
    /// coordinator the document is the merged coordinator + worker
    /// waterfall.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with code `unknown_job` for unknown ids.
    pub fn trace(&self, id: u64) -> Result<JobTrace, ClientError> {
        self.expect_json("GET", &format!("/v1/jobs/{id}/trace"), None)
    }

    /// Cancels a job (`DELETE /v1/jobs/{id}`). A queued job lands in
    /// `cancelled` immediately (`200`); a running one is stopped
    /// cooperatively (`202`) — poll [`status`](Client::status) or
    /// [`wait`](Client::wait) to watch it drain.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with code `conflict` when the job already
    /// finished.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, ClientError> {
        self.expect_json("DELETE", &format!("/v1/jobs/{id}"), None)
    }

    /// Fetches `GET /healthz`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn health(&self) -> Result<Health, ClientError> {
        self.expect_json("GET", "/healthz", None)
    }

    /// Fetches `GET /readyz`. The [`Readiness`] body parses from both
    /// the `200` (ready) and `503` (not ready) responses, so the
    /// returned document — not an error — is the answer either way.
    ///
    /// # Errors
    ///
    /// Transport and decode errors only; "not ready" is a successful
    /// answer with `ready == false`.
    pub fn readiness(&self) -> Result<Readiness, ClientError> {
        // Deliberately single-attempt even with retries configured: a
        // readiness probe's job is to report the node's state *now*.
        let (status, _, text) = self.request("GET", "/readyz", None)?;
        if status == 200 || status == 503 {
            return serde_json::from_str(&text)
                .map_err(|e| ClientError::Protocol(format!("bad /readyz response body: {e}")));
        }
        let error: Option<ApiError> = serde_json::from_str(&text).ok();
        let (code, message) = error
            .map(|e| (e.error, e.message))
            .unwrap_or_else(|| ("unknown".to_string(), text));
        Err(ClientError::Api {
            status,
            code,
            message,
        })
    }

    /// Checks the server speaks this client's protocol version.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on a version mismatch.
    pub fn handshake(&self) -> Result<Health, ClientError> {
        let health = self.health()?;
        if health.protocol != PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server speaks protocol {}, client speaks {PROTOCOL_VERSION}",
                health.protocol
            )));
        }
        Ok(health)
    }

    /// Fetches `GET /metrics`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics(&self) -> Result<Metrics, ClientError> {
        self.expect_json("GET", "/metrics", None)
    }

    /// Fetches `GET /metrics` as Prometheus text exposition (the
    /// `Accept: text/plain` content negotiation a scraper performs).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics_prometheus(&self) -> Result<String, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        http::write_request_accepting(&mut stream, "GET", "/metrics", None, "text/plain")?;
        let (status, _, body) = http::read_response(&mut stream)?;
        if (200..300).contains(&status) {
            return Ok(body);
        }
        Err(ClientError::Api {
            status,
            code: "unknown".to_string(),
            message: body,
        })
    }

    /// Polls a job's status until it reaches a terminal state, with
    /// capped exponential backoff between polls (10 ms doubling to
    /// 500 ms) — short jobs are noticed almost immediately, long ones
    /// don't get hammered.
    ///
    /// A job that was *stopped* rather than finished is an error, not a
    /// status: [`ClientError::Cancelled`] and
    /// [`ClientError::DeadlineExceeded`] are distinct so callers (and
    /// the cluster coordinator) can tell "someone deleted it" from "it
    /// ran out of budget" without re-inspecting the state.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] (carrying the total time waited) when
    /// `timeout` elapses first; [`ClientError::Cancelled`] /
    /// [`ClientError::DeadlineExceeded`] when the job was stopped;
    /// transport errors pass through.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<JobStatus, ClientError> {
        let started = Instant::now();
        let deadline = started + timeout;
        let mut interval = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        loop {
            let status = self.status(id)?;
            match status.state {
                crate::protocol::JobState::Cancelled => {
                    return Err(ClientError::Cancelled { id });
                }
                crate::protocol::JobState::DeadlineExceeded => {
                    return Err(ClientError::DeadlineExceeded {
                        id,
                        error: status.error,
                    });
                }
                state if state.is_terminal() => return Ok(status),
                _ => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout {
                    id,
                    waited: started.elapsed(),
                });
            }
            // Never oversleep the deadline by more than one beat.
            std::thread::sleep(interval.min(deadline - now));
            interval = (interval * 2).min(cap);
        }
    }

    /// Polls `GET /readyz` until the server reports ready, honouring the
    /// `Retry-After` hint a `503` carries during boot replay (clamped to
    /// 1 s so a pathological hint cannot stall the caller); transport
    /// errors are treated as "still booting" and re-polled.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when `timeout` elapses before the
    /// server reports ready (id 0 — readiness is not a job).
    pub fn wait_ready(&self, timeout: Duration) -> Result<Readiness, ClientError> {
        let started = Instant::now();
        let deadline = started + timeout;
        loop {
            let mut pause = Duration::from_millis(20);
            match self.readiness() {
                Ok(readiness) if readiness.ready => return Ok(readiness),
                Ok(readiness) => {
                    if let Some(hint) = readiness.retry_after_seconds {
                        pause = Duration::from_secs(hint).min(Duration::from_secs(1));
                    }
                }
                Err(ClientError::Io(_)) => {}
                Err(other) => return Err(other),
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout {
                    id: 0,
                    waited: started.elapsed(),
                });
            }
            std::thread::sleep(pause.min(deadline - now));
        }
    }

    /// [`wait`](Client::wait), then fetch the report.
    ///
    /// # Errors
    ///
    /// See [`wait`](Client::wait) and [`report`](Client::report).
    pub fn wait_for_report(&self, id: u64, timeout: Duration) -> Result<JobReport, ClientError> {
        self.wait(id, timeout)?;
        self.report(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = BackoffPolicy {
            max_attempts: 8,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(400),
        };
        let a = policy.delay("127.0.0.1:1", "/v1/jobs", 3);
        let b = policy.delay("127.0.0.1:1", "/v1/jobs", 3);
        assert_eq!(a, b, "same inputs, same delay");
        for attempt in 0..20 {
            let d = policy.delay("127.0.0.1:1", "/v1/jobs", attempt);
            assert!(d <= policy.cap, "attempt {attempt} exceeded cap: {d:?}");
            assert!(
                d >= policy.base.min(policy.cap) / 2,
                "attempt {attempt} under jitter floor: {d:?}"
            );
        }
        // Jitter desynchronises different paths.
        let other = policy.delay("127.0.0.1:1", "/v1/jobs/7", 3);
        assert_ne!(a, other, "paths should jitter apart (hash collision?)");
    }

    #[test]
    fn retryability_classification() {
        assert!(BackoffPolicy::retryable(&ClientError::Io("refused".into())));
        assert!(BackoffPolicy::retryable(&ClientError::Busy {
            retry_after_seconds: 1
        }));
        assert!(BackoffPolicy::retryable(&ClientError::Api {
            status: 503,
            code: "shutting_down".into(),
            message: String::new(),
        }));
        assert!(!BackoffPolicy::retryable(&ClientError::Api {
            status: 400,
            code: "bad_request".into(),
            message: String::new(),
        }));
        assert!(!BackoffPolicy::retryable(&ClientError::Protocol(
            "mismatch".into()
        )));
    }
}
