//! The estimation server: bounded queue, fixed worker pool,
//! backpressure and graceful drain.
//!
//! # Endpoints
//!
//! | Method & path              | Purpose                                      |
//! |----------------------------|----------------------------------------------|
//! | `POST /v1/jobs`            | Submit a [`SubmitRequest`]; `202` + status   |
//! | `GET /v1/jobs/{id}`        | Lifecycle snapshot ([`JobStatus`])           |
//! | `GET /v1/jobs/{id}/report` | Full [`JobReport`] once terminal             |
//! | `DELETE /v1/jobs/{id}`     | Cancel a queued job                          |
//! | `GET /healthz`             | Liveness + protocol version                  |
//! | `GET /metrics`             | Queue/worker/job/cache counters              |
//!
//! # Backpressure
//!
//! The queue is bounded ([`ServeConfig::queue_capacity`]). A submission
//! against a full queue is bounced with `429 Too Many Requests`, a
//! `Retry-After` header and the same hint in the JSON body; the hint is
//! an exponentially smoothed estimate of how long the backlog needs to
//! clear one slot. Nothing is ever silently dropped once accepted.
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] stops accepting (new submissions get `503`),
//! lets in-flight jobs run to completion, persists still-queued sweep
//! jobs as resumable checkpoints in the spool directory (state
//! [`JobState::Persisted`]) via the existing core checkpoint machinery,
//! cancels still-queued estimates, and joins every thread.

use crate::http::{self, Request, Response};
use crate::protocol::{
    ApiError, EstimateOutcome, Health, JobKind, JobProgress, JobReport, JobSpec, JobState,
    JobStatus, Metrics, ScenarioJobCount, SubmitRequest, SweepOutcome, PROTOCOL_VERSION,
};
use crate::shared::{tag_for, SharedBench, VerdictCache};
use ecripse_core::cache::MemoCacheConfig;
use ecripse_core::ecripse::{Ecripse, EcripseConfig};
use ecripse_core::observe::{
    ChunkStats, MultiObserver, Observer, RunRecorder, RunSummary, SimBatchStats, Stage,
};
use ecripse_core::oracle::OracleStats;
use ecripse_core::rtn_source::SramRtn;
use ecripse_core::scenario::{registry_digest, Scenario, SramScenarioBench};
use ecripse_core::sweep::{DutySweep, SweepBench, SweepOptions};
use ecripse_core::telemetry::{Histogram, MetricsRegistry, TelemetryObserver};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bound of the pending-job queue (in-flight jobs excluded).
    pub queue_capacity: usize,
    /// Directory for sweep checkpoints: running sweeps checkpoint into
    /// it as they go, and graceful shutdown persists still-queued
    /// sweeps there. `None` disables both.
    pub spool: Option<PathBuf>,
    /// Process-wide verdict-cache settings (grid quantum, shards,
    /// enabled flag).
    pub cache: MemoCacheConfig,
    /// Persistent verdict store: loaded (if present and compatible) at
    /// bind time, saved atomically by graceful shutdown, so a restarted
    /// service resumes warm. `None` keeps the cache process-lifetime.
    pub cache_store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 16,
            spool: None,
            cache: MemoCacheConfig::default(),
            cache_store: None,
        }
    }
}

/// What [`Server::shutdown`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownSummary {
    /// Jobs that were in flight when the drain started and ran to
    /// completion.
    pub drained: u64,
    /// Queued sweep jobs persisted as resumable checkpoints.
    pub persisted: u64,
    /// Queued jobs cancelled (estimates, or sweeps without a spool).
    pub cancelled: u64,
}

/// A finished job's payload.
enum JobOutput {
    Estimate(EstimateOutcome),
    Sweep(SweepOutcome),
}

/// Everything the server remembers about one job.
struct JobRecord {
    spec: JobSpec,
    scenario: Scenario,
    config: EcripseConfig,
    state: JobState,
    error: Option<String>,
    output: Option<JobOutput>,
    /// When the job entered the queue (feeds the queue-wait histogram).
    queued_at: Instant,
    /// Live progress, fed by the worker's observer while the job runs.
    progress: Arc<ProgressTracker>,
}

/// Lock-free live-progress accumulator: the worker registers it as an
/// [`Observer`] alongside the deterministic recorder, and the status
/// endpoint snapshots it into a [`JobProgress`].
///
/// Everything here is *accumulated* (never overwritten) except the
/// stage and estimate, which are latest-wins — sweep points run
/// concurrently and interleave their events on one tracker, so only
/// monotone counters and "most recent" scalars are meaningful.
#[derive(Default)]
struct ProgressTracker {
    /// 0 = no stage yet; 1..=3 = `Stage` in pipeline order.
    stage: AtomicU64,
    iterations: AtomicU64,
    simulations: AtomicU64,
    is_samples: AtomicU64,
    /// f64 bits of the latest running estimate.
    estimate_bits: AtomicU64,
    has_estimate: AtomicBool,
}

impl ProgressTracker {
    fn snapshot(&self) -> JobProgress {
        let stage = match self.stage.load(Ordering::Relaxed) {
            1 => Some(Stage::BoundarySearch),
            2 => Some(Stage::ParticleFilter),
            3 => Some(Stage::ImportanceSampling),
            _ => None,
        };
        JobProgress {
            stage: stage.map(|s| s.name().to_string()),
            iterations: self.iterations.load(Ordering::Relaxed),
            simulations: self.simulations.load(Ordering::Relaxed),
            is_samples: self.is_samples.load(Ordering::Relaxed),
            estimate: self
                .has_estimate
                .load(Ordering::Relaxed)
                .then(|| f64::from_bits(self.estimate_bits.load(Ordering::Relaxed))),
        }
    }

    fn set_estimate(&self, value: f64) {
        self.estimate_bits.store(value.to_bits(), Ordering::Relaxed);
        self.has_estimate.store(true, Ordering::Relaxed);
    }
}

impl Observer for ProgressTracker {
    fn stage_started(&self, stage: Stage) {
        let index = match stage {
            Stage::BoundarySearch => 1,
            Stage::ParticleFilter => 2,
            Stage::ImportanceSampling => 3,
        };
        self.stage.store(index, Ordering::Relaxed);
    }

    fn iteration_finished(&self, _stats: &ecripse_core::observe::IterationStats) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    fn chunk_finished(&self, chunk: &ChunkStats) {
        self.is_samples
            .fetch_add(chunk.chunk_samples, Ordering::Relaxed);
        self.set_estimate(chunk.estimate);
    }

    fn sim_batch_finished(&self, stats: &SimBatchStats) {
        self.simulations.fetch_add(stats.batch, Ordering::Relaxed);
    }

    fn run_finished(&self, summary: &RunSummary) {
        self.set_estimate(summary.p_fail);
    }
}

/// The server's telemetry handles: a per-server [`MetricsRegistry`]
/// (kept off the process-global one so concurrently bound servers —
/// e.g. in tests — stay hermetic), the three service histograms, and
/// the core observer bridge that folds every worker's pipeline events
/// into the same registry.
struct ServeTelemetry {
    registry: MetricsRegistry,
    http_seconds: Histogram,
    queue_wait_seconds: Histogram,
    job_seconds: Histogram,
    bridge: TelemetryObserver,
}

impl ServeTelemetry {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let http_seconds = registry.histogram(
            "ecripse_serve_http_request_seconds",
            "Wall-clock latency of handling one HTTP request",
        );
        let queue_wait_seconds = registry.histogram(
            "ecripse_serve_queue_wait_seconds",
            "Time a job spent queued before a worker picked it up",
        );
        let job_seconds = registry.histogram(
            "ecripse_serve_job_seconds",
            "Wall-clock duration of one job's execution",
        );
        let bridge = TelemetryObserver::new(&registry);
        Self {
            registry,
            http_seconds,
            queue_wait_seconds,
            job_seconds,
            bridge,
        }
    }
}

/// Queue and job-table state behind one lock.
struct QueueState {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    next_id: u64,
    in_flight: u64,
    draining: bool,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    persisted: AtomicU64,
    rejected: AtomicU64,
}

/// Locks the queue state, recovering from lock poisoning (a panicking
/// job is already downgraded to a failure before the lock is taken, so
/// a poisoned guard still holds consistent state).
fn lock_state<B>(shared: &Shared<B>) -> std::sync::MutexGuard<'_, QueueState> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Shared<B> {
    config: ServeConfig,
    factory: Box<dyn Fn(Scenario, f64) -> B + Send + Sync>,
    cache: Arc<VerdictCache>,
    /// Completed jobs per scenario, indexed by [`Scenario::ALL`]
    /// position (feeds the `scenario_jobs` metric and its labelled
    /// Prometheus series).
    scenario_completed: [AtomicU64; Scenario::ALL.len()],
    /// Verdicts restored from the persistent store at bind time.
    cache_loaded: u64,
    state: std::sync::Mutex<QueueState>,
    work_ready: std::sync::Condvar,
    counters: Counters,
    oracle_totals: Mutex<OracleStats>,
    /// Smoothed seconds-per-job, feeding the `Retry-After` hint.
    ewma_job_seconds: Mutex<f64>,
    stop_accepting: AtomicBool,
    /// When the server bound its socket (feeds `uptime_seconds`).
    started: Instant,
    telemetry: ServeTelemetry,
}

/// The estimation service. Generic over the bench the factory builds,
/// so the integration tests can serve synthetic benches; the default is
/// the paper's cell under the job's requested scenario and supply.
pub struct Server<B: SweepBench + 'static = SramScenarioBench> {
    shared: Arc<Shared<B>>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server<SramScenarioBench> {
    /// Binds the paper-cell service: each job's bench is
    /// [`SramScenarioBench::at_vdd`] of the job's scenario and supply
    /// voltage, so every registered scenario is servable out of the
    /// box.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        Self::bind_with(addr, config, SramScenarioBench::at_vdd)
    }
}

impl<B: SweepBench + 'static> Server<B> {
    /// Binds a service whose per-job bench comes from
    /// `factory(scenario, vdd)`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        factory: impl Fn(Scenario, f64) -> B + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        // The snapshot fingerprint is scoped by the scenario-registry
        // digest: a store written under a different registry (different
        // scenarios or versions) is rejected at load time instead of
        // silently misapplying verdicts across indicators.
        let cache = Arc::new(VerdictCache::with_scope(config.cache, &registry_digest()));
        let cache_loaded = match &config.cache_store {
            // A missing store is the normal first boot; any other load
            // failure is worth a line on stderr, but never fatal — the
            // service just starts cold.
            Some(path) if path.exists() => match cache.load_snapshot(path) {
                Ok(count) => count as u64,
                Err(error) => {
                    eprintln!(
                        "ecripse-serve: ignoring verdict store {}: {error}",
                        path.display()
                    );
                    0
                }
            },
            _ => 0,
        };
        let shared = Arc::new(Shared {
            cache,
            cache_loaded,
            config,
            factory: Box::new(factory),
            scenario_completed: Default::default(),
            state: std::sync::Mutex::new(QueueState {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                next_id: 1,
                in_flight: 0,
                draining: false,
            }),
            work_ready: std::sync::Condvar::new(),
            counters: Counters::default(),
            oracle_totals: Mutex::new(OracleStats::default()),
            ewma_job_seconds: Mutex::new(1.0),
            stop_accepting: AtomicBool::new(false),
            started: Instant::now(),
            telemetry: ServeTelemetry::new(),
        });
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-wide verdict cache.
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.shared.cache
    }

    /// Current service metrics (the `GET /metrics` document).
    pub fn metrics(&self) -> Metrics {
        collect_metrics(&self.shared)
    }

    /// The Prometheus text exposition `GET /metrics` serves when asked
    /// for `Accept: text/plain`.
    pub fn prometheus_metrics(&self) -> String {
        render_prometheus_document(&self.shared, &collect_metrics(&self.shared))
    }

    /// Graceful shutdown: stop accepting, drain in-flight jobs, persist
    /// queued sweeps as resumable checkpoints (when a spool directory is
    /// configured), cancel queued estimates, join every thread.
    pub fn shutdown(mut self) -> ShutdownSummary {
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
        let (drained, persisted, cancelled) = {
            let mut state = lock_state(&self.shared);
            state.draining = true;
            let drained = state.in_flight;
            let mut persisted = 0u64;
            let mut cancelled = 0u64;
            while let Some(id) = state.queue.pop_front() {
                let Some(record) = state.jobs.get_mut(&id) else {
                    continue;
                };
                if persist_queued_sweep(&self.shared, id, record) {
                    record.state = JobState::Persisted;
                    self.shared
                        .counters
                        .persisted
                        .fetch_add(1, Ordering::Relaxed);
                    persisted += 1;
                } else {
                    record.state = JobState::Cancelled;
                    self.shared
                        .counters
                        .cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    cancelled += 1;
                }
            }
            (drained, persisted, cancelled)
        };
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers are quiet: persist the warm verdicts so the next
        // process starts where this one left off.
        if let Some(path) = &self.shared.config.cache_store {
            if let Err(error) = self.shared.cache.save_snapshot(path) {
                eprintln!(
                    "ecripse-serve: could not save verdict store {}: {error}",
                    path.display()
                );
            }
        }
        ShutdownSummary {
            drained,
            persisted,
            cancelled,
        }
    }
}

impl<B: SweepBench + 'static> Drop for Server<B> {
    fn drop(&mut self) {
        // `shutdown` consumed the handles; if the server is dropped
        // without it, signal the threads so they exit instead of
        // parking forever (they detach, nothing joins them).
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.shared.stop_accepting.store(true, Ordering::SeqCst);
            lock_state(&self.shared).draining = true;
            self.shared.work_ready.notify_all();
        }
    }
}

/// The checkpoint file a sweep job uses inside the spool directory.
fn spool_path<B>(shared: &Shared<B>, id: u64) -> Option<PathBuf> {
    shared
        .config
        .spool
        .as_ref()
        .map(|dir| dir.join(format!("job-{id}.json")))
}

/// Writes (or preserves) a resumable checkpoint for a queued sweep job
/// during shutdown. Returns `false` when the job is not a sweep, no
/// spool is configured, or the checkpoint could not be written.
fn persist_queued_sweep<B: SweepBench>(shared: &Shared<B>, id: u64, record: &JobRecord) -> bool {
    if record.spec.kind != JobKind::Sweep {
        return false;
    }
    let Some(path) = spool_path(shared, id) else {
        return false;
    };
    let Some(alphas) = record.spec.alphas.clone() else {
        return false;
    };
    let bench = job_bench(shared, record.scenario, &record.spec);
    let sweep = DutySweep::new(record.config, bench, alphas);
    sweep.ensure_checkpoint(&path).is_ok()
}

/// The bench a job evaluates: the factory's bench for the job's
/// scenario and supply, wrapped in the process-wide verdict cache. The
/// tag namespaces verdicts by scenario (id + version salt) and supply
/// voltage; `at_alpha` (inside sweeps) further folds in the duty ratio.
fn job_bench<B: SweepBench>(
    shared: &Shared<B>,
    scenario: Scenario,
    spec: &JobSpec,
) -> SharedBench<B> {
    SharedBench::new(
        (shared.factory)(scenario, spec.vdd),
        tag_for(&[scenario.tag_salt(), spec.vdd.to_bits()]),
        Arc::clone(&shared.cache),
        shared.config.cache.enabled,
    )
}

fn accept_loop<B: SweepBench + 'static>(listener: &TcpListener, shared: &Arc<Shared<B>>) {
    loop {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection<B: SweepBench>(mut stream: TcpStream, shared: &Shared<B>) {
    // Accepted sockets must block regardless of the listener's mode.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let started = Instant::now();
    let response = match http::read_request(&mut stream) {
        Ok(request) => route(shared, &request),
        Err(e) => error_response(400, "bad_request", e.to_string()),
    };
    let _ = http::write_response(&mut stream, &response);
    shared
        .telemetry
        .http_seconds
        .record(started.elapsed().as_secs_f64());
}

fn json_body<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

fn error_response(status: u16, code: &str, message: impl Into<String>) -> Response {
    Response::json(status, json_body(&ApiError::new(code, message)))
}

fn route<B: SweepBench>(shared: &Shared<B>, request: &Request) -> Response {
    let path = request.path.trim_end_matches('/');
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "jobs"]) => submit(shared, &request.body),
        ("GET", ["v1", "jobs", id]) => with_job_id(id, |id| status(shared, id)),
        ("GET", ["v1", "jobs", id, "report"]) => with_job_id(id, |id| report(shared, id)),
        ("DELETE", ["v1", "jobs", id]) => with_job_id(id, |id| cancel(shared, id)),
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["metrics"]) => metrics_response(shared, request),
        (_, ["v1", "jobs"] | ["v1", "jobs", ..] | ["healthz"] | ["metrics"]) => {
            error_response(405, "method_not_allowed", "method not allowed on this path")
        }
        _ => error_response(404, "not_found", format!("no such path: {}", request.path)),
    }
}

fn with_job_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => error_response(
            400,
            "bad_request",
            format!("job id must be numeric: {raw:?}"),
        ),
    }
}

fn submit<B: SweepBench>(shared: &Shared<B>, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return error_response(400, "bad_request", "body is not utf-8");
    };
    let request: SubmitRequest = match serde_json::from_str(text) {
        Ok(request) => request,
        Err(e) => return error_response(400, "bad_request", format!("invalid submission: {e}")),
    };
    if request.protocol != PROTOCOL_VERSION {
        return error_response(
            400,
            "protocol_mismatch",
            format!(
                "client speaks protocol {}, server speaks {PROTOCOL_VERSION}",
                request.protocol
            ),
        );
    }
    if let Err(reason) = request.job.validate() {
        return error_response(400, "invalid_job", reason);
    }

    let mut state = lock_state(shared);
    if state.draining || shared.stop_accepting.load(Ordering::SeqCst) {
        return error_response(
            503,
            "shutting_down",
            "server is draining; resubmit elsewhere",
        );
    }
    if state.queue.len() >= shared.config.queue_capacity {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        let hint = retry_after_seconds(shared, &state);
        let mut body = ApiError::new("queue_full", "job queue is full; retry later");
        body.retry_after_seconds = Some(hint);
        return Response::json(429, json_body(&body)).with_header("retry-after", hint.to_string());
    }
    let id = state.next_id;
    state.next_id += 1;
    // The wire field is authoritative: stamp it into the run config so
    // the recorded report and the served bench agree on the scenario.
    let mut config = request.config;
    config.scenario = request.scenario;
    state.jobs.insert(
        id,
        JobRecord {
            spec: request.job,
            scenario: request.scenario,
            config,
            state: JobState::Queued,
            error: None,
            output: None,
            queued_at: Instant::now(),
            progress: Arc::new(ProgressTracker::default()),
        },
    );
    state.queue.push_back(id);
    let position = (state.queue.len() - 1) as u64;
    drop(state);
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work_ready.notify_one();
    Response::json(
        202,
        json_body(&JobStatus {
            id,
            scenario: request.scenario,
            state: JobState::Queued,
            queue_position: Some(position),
            error: None,
            progress: None,
        }),
    )
}

/// Backpressure hint: smoothed seconds-per-job × backlog ÷ workers,
/// clamped to `[1, 600]` seconds.
fn retry_after_seconds<B>(shared: &Shared<B>, state: &QueueState) -> u64 {
    let per_job = *shared.ewma_job_seconds.lock();
    let backlog = (state.queue.len() as u64 + state.in_flight).max(1);
    let workers = shared.config.workers.max(1) as f64;
    let estimate = (per_job * backlog as f64 / workers).ceil();
    (estimate as u64).clamp(1, 600)
}

fn job_status(state: &QueueState, id: u64) -> Option<JobStatus> {
    let record = state.jobs.get(&id)?;
    let queue_position = state
        .queue
        .iter()
        .position(|&queued| queued == id)
        .map(|p| p as u64);
    Some(JobStatus {
        id,
        scenario: record.scenario,
        state: record.state,
        queue_position,
        error: record.error.clone(),
        progress: (record.state == JobState::Running).then(|| record.progress.snapshot()),
    })
}

fn status<B>(shared: &Shared<B>, id: u64) -> Response {
    match job_status(&lock_state(shared), id) {
        Some(status) => Response::json(200, json_body(&status)),
        None => error_response(404, "unknown_job", format!("no job {id}")),
    }
}

fn report<B>(shared: &Shared<B>, id: u64) -> Response {
    let state = lock_state(shared);
    let Some(record) = state.jobs.get(&id) else {
        return error_response(404, "unknown_job", format!("no job {id}"));
    };
    match record.state {
        JobState::Completed | JobState::Failed => {
            let mut report = JobReport {
                id,
                scenario: record.scenario,
                state: record.state,
                error: record.error.clone(),
                estimate: None,
                sweep: None,
            };
            match &record.output {
                Some(JobOutput::Estimate(outcome)) => report.estimate = Some(outcome.clone()),
                Some(JobOutput::Sweep(outcome)) => report.sweep = Some(outcome.clone()),
                None => {}
            }
            Response::json(200, json_body(&report))
        }
        state => error_response(
            409,
            "not_ready",
            format!("job {id} is {state}; no report yet"),
        ),
    }
}

fn cancel<B>(shared: &Shared<B>, id: u64) -> Response {
    let mut state = lock_state(shared);
    let Some(record) = state.jobs.get(&id) else {
        return error_response(404, "unknown_job", format!("no job {id}"));
    };
    match record.state {
        JobState::Queued => {
            state.queue.retain(|&queued| queued != id);
            if let Some(record) = state.jobs.get_mut(&id) {
                record.state = JobState::Cancelled;
            }
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            let status = job_status(&state, id);
            Response::json(200, json_body(&status))
        }
        JobState::Running => error_response(
            409,
            "conflict",
            format!("job {id} is already running and cannot be cancelled"),
        ),
        state => error_response(409, "conflict", format!("job {id} is already {state}")),
    }
}

fn healthz<B>(shared: &Shared<B>) -> Response {
    let draining = shared.stop_accepting.load(Ordering::SeqCst) || lock_state(shared).draining;
    Response::json(
        200,
        json_body(&Health {
            status: if draining { "draining" } else { "ok" }.to_string(),
            protocol: PROTOCOL_VERSION,
        }),
    )
}

fn collect_metrics<B>(shared: &Shared<B>) -> Metrics {
    let (queue_depth, in_flight) = {
        let state = lock_state(shared);
        (state.queue.len() as u64, state.in_flight)
    };
    let c = &shared.counters;
    let completed = c.completed.load(Ordering::Relaxed);
    let failed = c.failed.load(Ordering::Relaxed);
    let cancelled = c.cancelled.load(Ordering::Relaxed);
    let persisted = c.persisted.load(Ordering::Relaxed);
    Metrics {
        queue_depth,
        queue_capacity: shared.config.queue_capacity as u64,
        in_flight,
        workers: shared.config.workers.max(1) as u64,
        submitted: c.submitted.load(Ordering::Relaxed),
        completed,
        failed,
        cancelled,
        persisted,
        rejected: c.rejected.load(Ordering::Relaxed),
        cache_entries: shared.cache.len() as u64,
        cache_hits: shared.cache.hits(),
        cache_misses: shared.cache.misses(),
        cache_hit_rate: shared.cache.hit_rate(),
        cache_loaded_entries: shared.cache_loaded,
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        jobs_in_terminal_state: completed + failed + cancelled + persisted,
        scenario_jobs: Scenario::ALL
            .iter()
            .enumerate()
            .map(|(index, scenario)| ScenarioJobCount {
                scenario: scenario.id().to_string(),
                completed: shared.scenario_completed[index].load(Ordering::Relaxed),
            })
            .collect(),
        oracle: *shared.oracle_totals.lock(),
    }
}

/// Serves `GET /metrics`: Prometheus text exposition when the client's
/// `Accept` header asks for `text/plain`, the JSON document otherwise.
fn metrics_response<B>(shared: &Shared<B>, request: &Request) -> Response {
    let metrics = collect_metrics(shared);
    let wants_prometheus = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_prometheus {
        Response::text(200, render_prometheus_document(shared, &metrics))
    } else {
        Response::json(200, json_body(&metrics))
    }
}

/// One `# HELP`/`# TYPE`/sample triple of Prometheus exposition.
fn prom_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    use std::fmt::Write as _;
    let rendered = if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    };
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {rendered}");
}

/// Builds the full Prometheus document: scalar series synthesised from
/// the *same* [`Metrics`] snapshot the JSON endpoint serves (so the two
/// representations always agree), followed by the registry's rendered
/// histograms (HTTP latency, queue wait, job duration, and the core
/// observer bridge's pipeline metrics).
fn render_prometheus_document<B>(shared: &Shared<B>, m: &Metrics) -> String {
    let mut out = String::new();
    let gauges: [(&str, &str, f64); 9] = [
        (
            "queue_depth",
            "Jobs waiting in the queue",
            m.queue_depth as f64,
        ),
        (
            "queue_capacity",
            "Bound of the job queue",
            m.queue_capacity as f64,
        ),
        ("in_flight", "Jobs currently executing", m.in_flight as f64),
        ("workers", "Size of the worker pool", m.workers as f64),
        (
            "cache_entries",
            "Entries in the process-wide verdict cache",
            m.cache_entries as f64,
        ),
        (
            "cache_hit_rate",
            "Verdict-cache hit fraction (NaN before any traffic)",
            m.cache_hit_rate.unwrap_or(f64::NAN),
        ),
        (
            "cache_loaded_entries",
            "Verdicts restored from the persistent store at startup",
            m.cache_loaded_entries as f64,
        ),
        (
            "uptime_seconds",
            "Seconds since the server bound its socket",
            m.uptime_seconds,
        ),
        (
            "jobs_in_terminal_state",
            "Jobs completed, failed, cancelled or persisted",
            m.jobs_in_terminal_state as f64,
        ),
    ];
    for (name, help, value) in gauges {
        prom_scalar(
            &mut out,
            &format!("ecripse_serve_{name}"),
            "gauge",
            help,
            value,
        );
    }
    let counters: [(&str, &str, u64); 17] = [
        ("submitted_total", "Jobs ever accepted", m.submitted),
        ("completed_total", "Jobs finished successfully", m.completed),
        (
            "failed_total",
            "Jobs finished with an estimation error",
            m.failed,
        ),
        (
            "cancelled_total",
            "Jobs cancelled before running",
            m.cancelled,
        ),
        (
            "persisted_total",
            "Queued sweeps persisted during shutdown",
            m.persisted,
        ),
        ("rejected_total", "Submissions bounced with 429", m.rejected),
        ("cache_hits_total", "Verdict-cache hits", m.cache_hits),
        ("cache_misses_total", "Verdict-cache misses", m.cache_misses),
        (
            "oracle_classified_total",
            "Queries answered by the classifier",
            m.oracle.classified,
        ),
        (
            "oracle_simulated_total",
            "Queries answered by simulation",
            m.oracle.simulated,
        ),
        (
            "oracle_retrains_total",
            "Classifier retraining rounds",
            m.oracle.retrains,
        ),
        (
            "oracle_retries_total",
            "Retry-ladder attempts",
            m.oracle.retries,
        ),
        (
            "oracle_quarantined_total",
            "Samples quarantined",
            m.oracle.quarantined,
        ),
        (
            "oracle_uncertain_simulated_total",
            "Stage-2 simulations triggered by the uncertainty band",
            m.oracle.uncertain_simulated,
        ),
        (
            "newton_iters_total",
            "Bisection/Newton iterations spent in the circuit solver",
            m.oracle.newton_iters,
        ),
        (
            "factorisations_total",
            "Operating-point curve solves (LU factorisations)",
            m.oracle.factorisations,
        ),
        (
            "warm_start_seeds_total",
            "Butterfly evaluations warm-started from a neighbour seed",
            m.oracle.warm_start_seeds,
        ),
    ];
    for (name, help, value) in counters {
        prom_scalar(
            &mut out,
            &format!("ecripse_serve_{name}"),
            "counter",
            help,
            value as f64,
        );
    }
    {
        use std::fmt::Write as _;
        let name = "ecripse_serve_scenario_jobs_total";
        let _ = writeln!(
            out,
            "# HELP {name} Jobs completed successfully, by scenario"
        );
        let _ = writeln!(out, "# TYPE {name} counter");
        for entry in &m.scenario_jobs {
            let _ = writeln!(
                out,
                "{name}{{scenario=\"{}\"}} {}",
                entry.scenario, entry.completed
            );
        }
    }
    out.push_str(&shared.telemetry.registry.render_prometheus());
    out
}

fn worker_loop<B: SweepBench + 'static>(shared: &Arc<Shared<B>>) {
    loop {
        let (id, spec, scenario, config, progress) = {
            let mut state = lock_state(shared);
            loop {
                if let Some(id) = state.queue.pop_front() {
                    state.in_flight += 1;
                    let Some(record) = state.jobs.get_mut(&id) else {
                        state.in_flight -= 1;
                        continue;
                    };
                    record.state = JobState::Running;
                    shared
                        .telemetry
                        .queue_wait_seconds
                        .record(record.queued_at.elapsed().as_secs_f64());
                    let job = (
                        id,
                        record.spec.clone(),
                        record.scenario,
                        record.config,
                        Arc::clone(&record.progress),
                    );
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let started = Instant::now();
        let outcome = execute(shared, id, &spec, scenario, config, &progress);
        let elapsed = started.elapsed().as_secs_f64();
        shared.telemetry.job_seconds.record(elapsed);
        {
            let mut per_job = shared.ewma_job_seconds.lock();
            *per_job = 0.7 * *per_job + 0.3 * elapsed;
        }
        let mut state = lock_state(shared);
        state.in_flight -= 1;
        if let Some(record) = state.jobs.get_mut(&id) {
            match outcome {
                Ok((output, oracle)) => {
                    record.state = JobState::Completed;
                    record.output = Some(output);
                    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    if let Some(index) = Scenario::ALL.iter().position(|&s| s == scenario) {
                        shared.scenario_completed[index].fetch_add(1, Ordering::Relaxed);
                    }
                    add_oracle(&mut shared.oracle_totals.lock(), &oracle);
                }
                Err(message) => {
                    record.state = JobState::Failed;
                    record.error = Some(message);
                    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

fn add_oracle(total: &mut OracleStats, delta: &OracleStats) {
    total.classified += delta.classified;
    total.simulated += delta.simulated;
    total.uncertain_simulated += delta.uncertain_simulated;
    total.retrains += delta.retrains;
    total.cache_hits += delta.cache_hits;
    total.cache_misses += delta.cache_misses;
    total.retries += delta.retries;
    total.quarantined += delta.quarantined;
    total.newton_iters += delta.newton_iters;
    total.factorisations += delta.factorisations;
    total.warm_start_seeds += delta.warm_start_seeds;
}

/// Runs one job through the exact pipeline of a direct library call.
/// Panics inside the estimation stack (dimension mismatches from exotic
/// bench factories, …) are caught and reported as job failures so a bad
/// job can never take a worker down.
fn execute<B: SweepBench + 'static>(
    shared: &Arc<Shared<B>>,
    id: u64,
    spec: &JobSpec,
    scenario: Scenario,
    config: EcripseConfig,
    progress: &Arc<ProgressTracker>,
) -> Result<(JobOutput, OracleStats), String> {
    let shared = Arc::clone(shared);
    let spec = spec.clone();
    let progress = Arc::clone(progress);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        execute_inner(&shared, id, &spec, scenario, config, &progress)
    }))
    .unwrap_or_else(|panic| {
        let message = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_string());
        Err(format!("job panicked: {message}"))
    })
}

fn execute_inner<B: SweepBench + 'static>(
    shared: &Shared<B>,
    id: u64,
    spec: &JobSpec,
    scenario: Scenario,
    config: EcripseConfig,
    progress: &ProgressTracker,
) -> Result<(JobOutput, OracleStats), String> {
    let bench = job_bench(shared, scenario, spec);
    // Everything beyond the deterministic recorder is observational:
    // the live-progress tracker and the registry bridge see the same
    // event stream but never feed back into the estimation, so served
    // reports stay bit-identical to direct library calls.
    let mut side = MultiObserver::new();
    side.push(progress);
    side.push(&shared.telemetry.bridge);
    match spec.kind {
        JobKind::Estimate => {
            let recorder = RunRecorder::new();
            let mut fanout = MultiObserver::new();
            fanout.push(&recorder);
            fanout.push(&side);
            let result = match spec.alpha {
                None => Ecripse::new(config, bench)
                    .estimate_observed(&fanout)
                    .map_err(|e| e.to_string())?,
                Some(alpha) => {
                    let rtn = SramRtn::paper_model(alpha, bench.sigmas());
                    Ecripse::with_rtn(config, bench, rtn)
                        .estimate_observed(&fanout)
                        .map_err(|e| e.to_string())?
                }
            };
            let oracle = result.oracle_stats;
            Ok((
                JobOutput::Estimate(EstimateOutcome {
                    p_fail: result.p_fail,
                    ci95_half_width: result.ci95_half_width,
                    simulations: result.simulations,
                    is_samples: result.is_samples,
                    report: recorder.into_report(),
                }),
                oracle,
            ))
        }
        JobKind::Sweep => {
            let alphas = spec.alphas.clone().unwrap_or_default();
            let sweep = DutySweep::new(config, bench, alphas);
            let options = SweepOptions {
                checkpoint: spool_path(shared, id),
                resume: true,
                keep_going: false,
            };
            let run = sweep
                .run_resumable_observed(&options, &side)
                .map_err(|e| e.to_string())?;
            let (result, reports) = run.into_parts().map_err(|e| e.to_string())?;
            // The job is done; its spool checkpoint has served its
            // purpose.
            if let Some(path) = spool_path(shared, id) {
                let _ = std::fs::remove_file(path);
            }
            let mut oracle = OracleStats::default();
            add_oracle(&mut oracle, &reports.rdf_only.oracle);
            for point in &reports.points {
                add_oracle(&mut oracle, &point.oracle);
            }
            Ok((
                JobOutput::Sweep(SweepOutcome {
                    p_fail_rdf_only: result.p_fail_rdf_only,
                    rdf_only_ci95: result.rdf_only_ci95,
                    init_simulations: result.init_simulations,
                    total_simulations: result.total_simulations,
                    points: result.points,
                    reports,
                }),
                oracle,
            ))
        }
    }
}
