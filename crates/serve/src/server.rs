//! The estimation server: bounded queue, fixed worker pool,
//! backpressure and graceful drain.
//!
//! # Endpoints
//!
//! | Method & path              | Purpose                                      |
//! |----------------------------|----------------------------------------------|
//! | `POST /v1/jobs`            | Submit a [`SubmitRequest`]; `202` + status   |
//! | `GET /v1/jobs/{id}`        | Lifecycle snapshot ([`JobStatus`])           |
//! | `GET /v1/jobs/{id}/report` | Full [`JobReport`] once terminal             |
//! | `DELETE /v1/jobs/{id}`     | Cancel a queued *or running* job             |
//! | `GET /healthz`             | Liveness + protocol version                  |
//! | `GET /readyz`              | Readiness (`503` while replaying/saturated)  |
//! | `GET /metrics`             | Queue/worker/job/cache counters              |
//!
//! # Backpressure
//!
//! The queue is bounded ([`ServeConfig::queue_capacity`]). A submission
//! against a full queue is bounced with `429 Too Many Requests`, a
//! `Retry-After` header and the same hint in the JSON body; the hint is
//! an exponentially smoothed estimate of how long the backlog needs to
//! clear one slot. Nothing is ever silently dropped once accepted.
//!
//! # Durability
//!
//! With [`ServeConfig::journal`] set, every accepted submission is
//! appended to a checksummed, fsync'd write-ahead journal (see
//! [`crate::journal`]) *before* the `202` goes out, and every terminal
//! transition is journaled too. On boot the journal is replayed: jobs
//! that never reached a terminal state re-enter the queue under their
//! **original ids**, and sweeps resume bit-identically from their spool
//! checkpoints — so a `kill -9` loses at most work, never jobs.
//! Idempotency keys ride in the journal, which keeps client retries
//! duplicate-free across a crash.
//!
//! # Deadlines & cancellation
//!
//! [`SubmitRequest::deadline_ms`] bounds a job's wall-clock budget from
//! acceptance; a watchdog expires queued jobs and raises the per-job
//! stop flag of running ones, which the estimation pipeline honours at
//! iteration/batch boundaries (state
//! [`JobState::DeadlineExceeded`]). `DELETE /v1/jobs/{id}` cancels a
//! queued job immediately and a running one cooperatively (`202`, the
//! job drains to [`JobState::Cancelled`]).
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] stops accepting (new submissions get `503`),
//! lets in-flight jobs run to completion, persists still-queued sweep
//! jobs as resumable checkpoints in the spool directory (state
//! [`JobState::Persisted`]) via the existing core checkpoint machinery,
//! cancels still-queued estimates, and joins every thread.

use crate::http::{self, Request, Response};
use crate::journal::{self, Journal, JournalRecord, RecoveredJob};
use crate::protocol::{
    ApiError, EstimateOutcome, Health, JobKind, JobProgress, JobReport, JobSpec, JobState,
    JobStatus, JobTrace, Metrics, Readiness, ScenarioJobCount, SubmitRequest, SweepOutcome,
    PROTOCOL_VERSION,
};
use crate::shared::{tag_for, SharedBench, VerdictCache};
use ecripse_core::cache::MemoCacheConfig;
use ecripse_core::ecripse::{Ecripse, EcripseConfig, EstimateError};
use ecripse_core::observe::{
    ChunkStats, MultiObserver, Observer, RunRecorder, RunSummary, SimBatchStats, Stage,
};
use ecripse_core::oracle::OracleStats;
use ecripse_core::rtn_source::SramRtn;
use ecripse_core::scenario::{registry_digest, Scenario, SramScenarioBench};
use ecripse_core::sweep::{DutySweep, SweepBench, SweepError, SweepOptions};
use ecripse_core::telemetry::{
    escape_label_value, fmt_hex_id, Gauge, Histogram, MetricsRegistry, SpanCollector, SpanStore,
    TelemetryObserver, TraceContext,
};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bound of the pending-job queue (in-flight jobs excluded).
    pub queue_capacity: usize,
    /// Directory for sweep checkpoints: running sweeps checkpoint into
    /// it as they go, and graceful shutdown persists still-queued
    /// sweeps there. `None` disables both.
    pub spool: Option<PathBuf>,
    /// Process-wide verdict-cache settings (grid quantum, shards,
    /// enabled flag).
    pub cache: MemoCacheConfig,
    /// Persistent verdict store: loaded (if present and compatible) at
    /// bind time, saved atomically by graceful shutdown, so a restarted
    /// service resumes warm. `None` keeps the cache process-lifetime.
    pub cache_store: Option<PathBuf>,
    /// Write-ahead job journal (see [`crate::journal`]): every accepted
    /// submission is fsync'd here before its `202`, terminal states are
    /// journaled too, and boot replays unfinished jobs under their
    /// original ids. `None` keeps jobs process-lifetime (a crash loses
    /// them, as before PR 8).
    pub journal: Option<PathBuf>,
    /// Socket read timeout on accepted connections — a client that
    /// stops sending mid-request is dropped after this long.
    pub read_timeout: Duration,
    /// Socket write timeout on accepted connections — a client that
    /// stops *reading* its response can stall a handler thread at most
    /// this long per write (slow-loris hygiene).
    pub write_timeout: Duration,
    /// Bound on one connection's total lifetime — request read, handle
    /// and response write together. Whatever remains of it after
    /// handling caps the write timeout, and a connection that exhausts
    /// it is closed without a response.
    pub connection_lifetime: Duration,
    /// Node name stamped into every span this server records (the
    /// `node` field of [`SpanRecord`](ecripse_core::telemetry::SpanRecord))
    /// and reported to the cluster coordinator. `None` derives
    /// `serve-{port}` from the bound address.
    pub node: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 16,
            spool: None,
            cache: MemoCacheConfig::default(),
            cache_store: None,
            journal: None,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            connection_lifetime: Duration::from_secs(60),
            node: None,
        }
    }
}

/// What [`Server::shutdown`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownSummary {
    /// Jobs that were in flight when the drain started and ran to
    /// completion.
    pub drained: u64,
    /// Queued sweep jobs persisted as resumable checkpoints.
    pub persisted: u64,
    /// Queued jobs cancelled (estimates, or sweeps without a spool).
    pub cancelled: u64,
}

/// A finished job's payload.
enum JobOutput {
    Estimate(EstimateOutcome),
    Sweep(SweepOutcome),
}

/// Everything the server remembers about one job.
struct JobRecord {
    spec: JobSpec,
    scenario: Scenario,
    config: EcripseConfig,
    state: JobState,
    error: Option<String>,
    output: Option<JobOutput>,
    /// When the job entered the queue (feeds the queue-wait histogram).
    queued_at: Instant,
    /// Live progress, fed by the worker's observer while the job runs.
    progress: Arc<ProgressTracker>,
    /// Wall-clock budget as submitted (journaled verbatim; the budget
    /// restarts from acceptance — or re-acceptance after recovery).
    deadline_ms: Option<u64>,
    /// The absolute instant the budget runs out, `None` for unbounded.
    deadline: Option<Instant>,
    /// Client-supplied retry-dedup key, if any.
    idempotency_key: Option<String>,
    /// The distributed trace context the job runs under: the resolved
    /// precedence of `traceparent` header → wire `trace` field →
    /// deterministic derivation from job id + RNG seed. Journaled with
    /// the submission, so recovery resumes the same trace.
    trace: TraceContext,
    /// Cooperative stop flag: raised by `DELETE` (cancel) or the
    /// deadline watchdog; the estimation pipeline polls it at
    /// iteration/batch boundaries without ever consuming RNG, so
    /// uninterrupted runs stay bit-identical.
    stop: Arc<AtomicBool>,
}

/// Lock-free live-progress accumulator: the worker registers it as an
/// [`Observer`] alongside the deterministic recorder, and the status
/// endpoint snapshots it into a [`JobProgress`].
///
/// Everything here is *accumulated* (never overwritten) except the
/// stage and estimate, which are latest-wins — sweep points run
/// concurrently and interleave their events on one tracker, so only
/// monotone counters and "most recent" scalars are meaningful.
#[derive(Default)]
struct ProgressTracker {
    /// 0 = no stage yet; 1..=3 = `Stage` in pipeline order.
    stage: AtomicU64,
    iterations: AtomicU64,
    simulations: AtomicU64,
    is_samples: AtomicU64,
    /// f64 bits of the latest running estimate.
    estimate_bits: AtomicU64,
    has_estimate: AtomicBool,
}

impl ProgressTracker {
    fn snapshot(&self) -> JobProgress {
        let stage = match self.stage.load(Ordering::Relaxed) {
            1 => Some(Stage::BoundarySearch),
            2 => Some(Stage::ParticleFilter),
            3 => Some(Stage::ImportanceSampling),
            _ => None,
        };
        JobProgress {
            stage: stage.map(|s| s.name().to_string()),
            iterations: self.iterations.load(Ordering::Relaxed),
            simulations: self.simulations.load(Ordering::Relaxed),
            is_samples: self.is_samples.load(Ordering::Relaxed),
            estimate: self
                .has_estimate
                .load(Ordering::Relaxed)
                .then(|| f64::from_bits(self.estimate_bits.load(Ordering::Relaxed))),
        }
    }

    fn set_estimate(&self, value: f64) {
        self.estimate_bits.store(value.to_bits(), Ordering::Relaxed);
        self.has_estimate.store(true, Ordering::Relaxed);
    }
}

impl Observer for ProgressTracker {
    fn stage_started(&self, stage: Stage) {
        let index = match stage {
            Stage::BoundarySearch => 1,
            Stage::ParticleFilter => 2,
            Stage::ImportanceSampling => 3,
        };
        self.stage.store(index, Ordering::Relaxed);
    }

    fn iteration_finished(&self, _stats: &ecripse_core::observe::IterationStats) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    fn chunk_finished(&self, chunk: &ChunkStats) {
        self.is_samples
            .fetch_add(chunk.chunk_samples, Ordering::Relaxed);
        self.set_estimate(chunk.estimate);
    }

    fn sim_batch_finished(&self, stats: &SimBatchStats) {
        self.simulations.fetch_add(stats.batch, Ordering::Relaxed);
    }

    fn run_finished(&self, summary: &RunSummary) {
        self.set_estimate(summary.p_fail);
    }
}

/// The server's telemetry handles: a per-server [`MetricsRegistry`]
/// (kept off the process-global one so concurrently bound servers —
/// e.g. in tests — stay hermetic), the three service histograms, and
/// the core observer bridge that folds every worker's pipeline events
/// into the same registry.
struct ServeTelemetry {
    registry: MetricsRegistry,
    http_seconds: Histogram,
    queue_wait_seconds: Histogram,
    job_seconds: Histogram,
    /// Boot-time journal replay duration. A histogram (not a gauge)
    /// so federated scrapes can sum replay cost across restarts.
    journal_replay_seconds: Histogram,
    /// Live queue depth, refreshed on every metrics snapshot so the
    /// registry's exposition agrees with the JSON document.
    queue_depth: Gauge,
    bridge: TelemetryObserver,
}

impl ServeTelemetry {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        let http_seconds = registry.histogram(
            "ecripse_serve_http_request_seconds",
            "Wall-clock latency of handling one HTTP request",
        );
        let queue_wait_seconds = registry.histogram(
            "ecripse_serve_queue_wait_seconds",
            "Time a job spent queued before a worker picked it up",
        );
        let job_seconds = registry.histogram(
            "ecripse_serve_job_seconds",
            "Wall-clock duration of one job's execution",
        );
        let journal_replay_seconds = registry.histogram(
            "ecripse_serve_journal_replay_duration_seconds",
            "Wall-clock duration of boot-time write-ahead journal replay",
        );
        let queue_depth = registry.gauge("ecripse_serve_queue_depth", "Jobs waiting in the queue");
        let bridge = TelemetryObserver::new(&registry);
        Self {
            registry,
            http_seconds,
            queue_wait_seconds,
            job_seconds,
            journal_replay_seconds,
            queue_depth,
            bridge,
        }
    }
}

/// Queue and job-table state behind one lock.
struct QueueState {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    next_id: u64,
    in_flight: u64,
    draining: bool,
    /// Idempotency key → job id for every job that carried one
    /// (rebuilt from the journal at boot, so retries dedup across
    /// restarts too).
    idempotency: HashMap<String, u64>,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    cancelled_queued: AtomicU64,
    cancelled_running: AtomicU64,
    deadline_exceeded: AtomicU64,
    idempotent_hits: AtomicU64,
    persisted: AtomicU64,
    rejected: AtomicU64,
}

/// Locks the queue state, recovering from lock poisoning (a panicking
/// job is already downgraded to a failure before the lock is taken, so
/// a poisoned guard still holds consistent state).
fn lock_state<B>(shared: &Shared<B>) -> std::sync::MutexGuard<'_, QueueState> {
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Shared<B> {
    config: ServeConfig,
    factory: Box<dyn Fn(Scenario, f64) -> B + Send + Sync>,
    cache: Arc<VerdictCache>,
    /// Completed jobs per scenario, indexed by [`Scenario::ALL`]
    /// position (feeds the `scenario_jobs` metric and its labelled
    /// Prometheus series).
    scenario_completed: [AtomicU64; Scenario::ALL.len()],
    /// Verdicts restored from the persistent store at bind time.
    cache_loaded: u64,
    /// The write-ahead job journal, when durability is configured.
    journal: Option<Journal>,
    /// Unfinished jobs re-enqueued from the journal at boot.
    recovered: u64,
    /// Journal frames decoded during boot replay (submissions and
    /// terminals combined).
    frames_replayed: u64,
    state: std::sync::Mutex<QueueState>,
    work_ready: std::sync::Condvar,
    counters: Counters,
    oracle_totals: Mutex<OracleStats>,
    /// Smoothed seconds-per-job, feeding the `Retry-After` hint.
    ewma_job_seconds: Mutex<f64>,
    stop_accepting: AtomicBool,
    /// `false` while boot replay is still populating the queue (and
    /// again once draining starts); `/readyz` reads it.
    ready: AtomicBool,
    /// Tells the deadline watchdog to exit.
    monitor_stop: AtomicBool,
    /// When the server bound its socket (feeds `uptime_seconds`).
    started: Instant,
    telemetry: ServeTelemetry,
    /// Node name stamped into spans (config override or `serve-{port}`).
    node: String,
    /// Bounded ring of finished jobs' span timelines, served by
    /// `GET /v1/jobs/{id}/trace`.
    spans: SpanStore,
    /// Wall-clock seconds boot-time journal replay took (0 without a
    /// journal); surfaced in the `/metrics` JSON document.
    journal_replay_seconds: f64,
}

/// The estimation service. Generic over the bench the factory builds,
/// so the integration tests can serve synthetic benches; the default is
/// the paper's cell under the job's requested scenario and supply.
pub struct Server<B: SweepBench + 'static = SramScenarioBench> {
    shared: Arc<Shared<B>>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl Server<SramScenarioBench> {
    /// Binds the paper-cell service: each job's bench is
    /// [`SramScenarioBench::at_vdd`] of the job's scenario and supply
    /// voltage, so every registered scenario is servable out of the
    /// box.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        Self::bind_with(addr, config, SramScenarioBench::at_vdd)
    }
}

impl<B: SweepBench + 'static> Server<B> {
    /// Binds a service whose per-job bench comes from
    /// `factory(scenario, vdd)`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        config: ServeConfig,
        factory: impl Fn(Scenario, f64) -> B + Send + Sync + 'static,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        // The snapshot fingerprint is scoped by the scenario-registry
        // digest: a store written under a different registry (different
        // scenarios or versions) is rejected at load time instead of
        // silently misapplying verdicts across indicators.
        let cache = Arc::new(VerdictCache::with_scope(config.cache, &registry_digest()));
        let cache_loaded = match &config.cache_store {
            // A missing store is the normal first boot; any other load
            // failure is worth a line on stderr, but never fatal — the
            // service just starts cold.
            Some(path) if path.exists() => match cache.load_snapshot(path) {
                Ok(count) => count as u64,
                Err(error) => {
                    eprintln!(
                        "ecripse-serve: ignoring verdict store {}: {error}",
                        path.display()
                    );
                    0
                }
            },
            _ => 0,
        };
        // Durability paths are created up front: a missing spool or
        // journal directory must fail the bind, not the first sweep
        // checkpoint (or worse, silently skip journaling).
        if let Some(spool) = &config.spool {
            std::fs::create_dir_all(spool)?;
        }
        if let Some(parent) = config.journal.as_deref().and_then(Path::parent) {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        // Open + replay the journal *before* anything can accept
        // traffic: the node is not ready until every surviving job is
        // back in the table.
        let replay_started = Instant::now();
        let (journal, recovered_jobs, frames_replayed) = match &config.journal {
            Some(path) => {
                let (journal, replay) = Journal::open(path)?;
                if replay.dropped_bytes > 0 {
                    eprintln!(
                        "ecripse-serve: journal {} had a torn tail; dropped {} byte(s)",
                        path.display(),
                        replay.dropped_bytes
                    );
                }
                let frames = replay.records.len() as u64;
                (Some(journal), journal::recover(&replay.records), frames)
            }
            None => (None, Vec::new(), 0),
        };
        let mut queue = VecDeque::new();
        let mut jobs = HashMap::new();
        let mut idempotency = HashMap::new();
        let mut next_id = 1u64;
        let mut recovered = 0u64;
        let boot = Instant::now();
        for job in &recovered_jobs {
            next_id = next_id.max(job.id + 1);
            if let Some(key) = &job.request.idempotency_key {
                idempotency.insert(key.clone(), job.id);
            }
            let mut job_config = job.request.config;
            job_config.scenario = job.request.scenario;
            let unfinished = job.state.is_none();
            let (state, error) = match &job.state {
                None => (JobState::Queued, None),
                Some((state, error)) => (*state, error.clone()),
            };
            jobs.insert(
                job.id,
                JobRecord {
                    spec: job.request.job.clone(),
                    scenario: job.request.scenario,
                    config: job_config,
                    state,
                    error,
                    output: None,
                    queued_at: boot,
                    progress: Arc::new(ProgressTracker::default()),
                    // Submissions journal their resolved context, so a
                    // recovered job resumes the same trace; the derive
                    // below only covers pre-PR-10 journal files.
                    trace: job
                        .request
                        .trace
                        .unwrap_or_else(|| TraceContext::for_job(job.id, job.request.config.seed)),
                    deadline_ms: job.request.deadline_ms,
                    // The journal has no wall-clock anchor: a recovered
                    // job's budget restarts from re-acceptance.
                    deadline: unfinished
                        .then(|| {
                            job.request
                                .deadline_ms
                                .map(|ms| boot + Duration::from_millis(ms))
                        })
                        .flatten(),
                    idempotency_key: job.request.idempotency_key.clone(),
                    stop: Arc::new(AtomicBool::new(false)),
                },
            );
            if unfinished {
                queue.push_back(job.id);
                recovered += 1;
            }
        }
        // Boot compaction: drop the terminal noise a long-lived journal
        // accumulates (best-effort; the old file stays valid on failure).
        if let Some(journal) = &journal {
            if let Err(error) = journal.compact(&journal::live_records(&recovered_jobs)) {
                eprintln!(
                    "ecripse-serve: journal boot compaction failed: {error} (keeping old file)"
                );
            }
        }
        let journal_replay_seconds = if config.journal.is_some() {
            replay_started.elapsed().as_secs_f64()
        } else {
            0.0
        };
        let node = config
            .node
            .clone()
            .unwrap_or_else(|| format!("serve-{}", addr.port()));
        let telemetry = ServeTelemetry::new();
        if config.journal.is_some() {
            telemetry
                .journal_replay_seconds
                .record(journal_replay_seconds);
        }
        let shared = Arc::new(Shared {
            cache,
            cache_loaded,
            journal,
            recovered,
            frames_replayed,
            config,
            factory: Box::new(factory),
            scenario_completed: Default::default(),
            state: std::sync::Mutex::new(QueueState {
                queue,
                jobs,
                next_id,
                in_flight: 0,
                draining: false,
                idempotency,
            }),
            work_ready: std::sync::Condvar::new(),
            counters: Counters::default(),
            oracle_totals: Mutex::new(OracleStats::default()),
            ewma_job_seconds: Mutex::new(1.0),
            stop_accepting: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            monitor_stop: AtomicBool::new(false),
            started: Instant::now(),
            telemetry,
            node,
            spans: SpanStore::new(256),
            journal_replay_seconds,
        });
        let worker_handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || deadline_monitor(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        // Replay is done and the table is populated: open for traffic.
        shared.ready.store(true, Ordering::SeqCst);
        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            monitor: Some(monitor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The process-wide verdict cache.
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.shared.cache
    }

    /// Current service metrics (the `GET /metrics` document).
    pub fn metrics(&self) -> Metrics {
        collect_metrics(&self.shared)
    }

    /// The Prometheus text exposition `GET /metrics` serves when asked
    /// for `Accept: text/plain`.
    pub fn prometheus_metrics(&self) -> String {
        render_prometheus_document(&self.shared, &collect_metrics(&self.shared))
    }

    /// Graceful shutdown: stop accepting, drain in-flight jobs, persist
    /// queued sweeps as resumable checkpoints (when a spool directory is
    /// configured), cancel queued estimates, join every thread.
    pub fn shutdown(mut self) -> ShutdownSummary {
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
        self.shared.ready.store(false, Ordering::SeqCst);
        let mut transitions: Vec<(u64, JobState)> = Vec::new();
        let (drained, persisted, cancelled) = {
            let mut state = lock_state(&self.shared);
            state.draining = true;
            let drained = state.in_flight;
            let mut persisted = 0u64;
            let mut cancelled = 0u64;
            while let Some(id) = state.queue.pop_front() {
                let Some(record) = state.jobs.get_mut(&id) else {
                    continue;
                };
                if persist_queued_sweep(&self.shared, id, record) {
                    record.state = JobState::Persisted;
                    self.shared
                        .counters
                        .persisted
                        .fetch_add(1, Ordering::Relaxed);
                    persisted += 1;
                    transitions.push((id, JobState::Persisted));
                } else {
                    record.state = JobState::Cancelled;
                    self.shared
                        .counters
                        .cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    cancelled += 1;
                    transitions.push((id, JobState::Cancelled));
                }
            }
            (drained, persisted, cancelled)
        };
        // Journal the drain's terminal transitions outside the state
        // lock (appends fsync). A Persisted record tells the next boot
        // "resume me"; a Cancelled one closes the job for good.
        for (id, state) in transitions {
            journal_terminal(&self.shared, id, state, None);
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.monitor_stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Workers are quiet: shrink the journal to its live set so the
        // next boot replays only what matters.
        compact_journal(&self.shared);
        // Workers are quiet: persist the warm verdicts so the next
        // process starts where this one left off.
        if let Some(path) = &self.shared.config.cache_store {
            if let Err(error) = self.shared.cache.save_snapshot(path) {
                eprintln!(
                    "ecripse-serve: could not save verdict store {}: {error}",
                    path.display()
                );
            }
        }
        ShutdownSummary {
            drained,
            persisted,
            cancelled,
        }
    }
}

impl<B: SweepBench + 'static> Drop for Server<B> {
    fn drop(&mut self) {
        // `shutdown` consumed the handles; if the server is dropped
        // without it, signal the threads so they exit instead of
        // parking forever (they detach, nothing joins them).
        if self.acceptor.is_some() || !self.workers.is_empty() || self.monitor.is_some() {
            self.shared.stop_accepting.store(true, Ordering::SeqCst);
            self.shared.ready.store(false, Ordering::SeqCst);
            self.shared.monitor_stop.store(true, Ordering::SeqCst);
            lock_state(&self.shared).draining = true;
            self.shared.work_ready.notify_all();
        }
    }
}

/// The checkpoint file a sweep job uses inside the spool directory.
fn spool_path<B>(shared: &Shared<B>, id: u64) -> Option<PathBuf> {
    shared
        .config
        .spool
        .as_ref()
        .map(|dir| dir.join(format!("job-{id}.json")))
}

/// Writes (or preserves) a resumable checkpoint for a queued sweep job
/// during shutdown. Returns `false` when the job is not a sweep, no
/// spool is configured, or the checkpoint could not be written.
fn persist_queued_sweep<B: SweepBench>(shared: &Shared<B>, id: u64, record: &JobRecord) -> bool {
    if record.spec.kind != JobKind::Sweep {
        return false;
    }
    let Some(path) = spool_path(shared, id) else {
        return false;
    };
    let Some(alphas) = record.spec.alphas.clone() else {
        return false;
    };
    let bench = job_bench(shared, record.scenario, &record.spec);
    let mut sweep = DutySweep::new(record.config, bench, alphas);
    if let Some(indices) = record.spec.alpha_indices.clone() {
        sweep = sweep.with_point_indices(indices);
    }
    sweep.ensure_checkpoint(&path).is_ok()
}

/// Rebuilds the wire-shape submission a job record was accepted from
/// (compaction rewrites the journal from live server state, so the
/// round trip must be lossless for everything replay consumes).
fn record_request(record: &JobRecord) -> SubmitRequest {
    let mut request = SubmitRequest::new(record.config, record.spec.clone());
    request.scenario = record.scenario;
    request.deadline_ms = record.deadline_ms;
    request.idempotency_key = record.idempotency_key.clone();
    request.trace = Some(record.trace);
    request
}

/// Projects the in-memory job table into the journal's recovered-job
/// shape (id order), feeding [`journal::live_records`] for compaction.
/// Queued/running/persisted jobs count as unfinished.
fn live_from_state(state: &QueueState) -> Vec<RecoveredJob> {
    let mut ids: Vec<u64> = state.jobs.keys().copied().collect();
    ids.sort_unstable();
    ids.into_iter()
        .filter_map(|id| {
            let record = state.jobs.get(&id)?;
            let terminal = match record.state {
                // Persisted means "resumable checkpoint on disk" — the
                // journal must re-enqueue it next boot.
                JobState::Queued | JobState::Running | JobState::Persisted => None,
                state => Some((state, record.error.clone())),
            };
            Some(RecoveredJob {
                id,
                request: record_request(record),
                state: terminal,
            })
        })
        .collect()
}

/// Rewrites the journal to the live set derived from current state.
/// Best-effort: a failed compaction leaves the (valid, just larger)
/// old journal in place.
///
/// The state lock is held across the rewrite: submissions append their
/// journal frame under the same lock, so a compaction can never
/// snapshot the table *before* a submission and rename *after* its
/// append — which would silently discard an acknowledged job.
fn compact_journal<B>(shared: &Shared<B>) {
    let Some(journal) = &shared.journal else {
        return;
    };
    let state = lock_state(shared);
    let live = journal::live_records(&live_from_state(&state));
    if let Err(error) = journal.compact(&live) {
        eprintln!("ecripse-serve: journal compaction failed: {error} (keeping old file)");
    }
}

/// Appends a terminal transition to the journal (fsync'd) and compacts
/// when enough terminals have accumulated. Callers must *not* hold the
/// state lock — appends block on the disk. An append failure is logged
/// and tolerated: the in-memory state is already terminal, and the
/// worst case after a crash is re-running a finished job.
fn journal_terminal<B>(shared: &Shared<B>, id: u64, state: JobState, error: Option<String>) {
    let Some(journal) = &shared.journal else {
        return;
    };
    if let Err(e) = journal.append(&JournalRecord::terminal(id, state, error)) {
        eprintln!("ecripse-serve: journal append failed for job {id}: {e}");
        return;
    }
    if journal.should_compact() {
        compact_journal(shared);
    }
}

/// The deadline watchdog: every 20ms it expires queued jobs whose
/// budget ran out (straight to [`JobState::DeadlineExceeded`]) and
/// raises the stop flag of running jobs past theirs — the worker then
/// observes the interruption at the next iteration/batch boundary and
/// terminalises the job itself.
fn deadline_monitor<B: SweepBench + 'static>(shared: &Arc<Shared<B>>) {
    while !shared.monitor_stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
        let now = Instant::now();
        let mut expired: Vec<(u64, Option<String>)> = Vec::new();
        {
            let mut state = lock_state(shared);
            let due: Vec<u64> = state
                .queue
                .iter()
                .copied()
                .filter(|id| {
                    state
                        .jobs
                        .get(id)
                        .and_then(|record| record.deadline)
                        .is_some_and(|deadline| deadline <= now)
                })
                .collect();
            for id in due {
                state.queue.retain(|&queued| queued != id);
                if let Some(record) = state.jobs.get_mut(&id) {
                    record.state = JobState::DeadlineExceeded;
                    record.error = Some(format!(
                        "deadline of {}ms exceeded while queued",
                        record.deadline_ms.unwrap_or(0)
                    ));
                    shared
                        .counters
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    expired.push((id, record.error.clone()));
                }
            }
            for record in state.jobs.values_mut() {
                if record.state == JobState::Running
                    && record.deadline.is_some_and(|deadline| deadline <= now)
                {
                    record.stop.store(true, Ordering::SeqCst);
                }
            }
        }
        for (id, error) in expired {
            journal_terminal(shared, id, JobState::DeadlineExceeded, error);
        }
    }
}

/// The bench a job evaluates: the factory's bench for the job's
/// scenario and supply, wrapped in the process-wide verdict cache. The
/// tag namespaces verdicts by scenario (id + version salt) and supply
/// voltage; `at_alpha` (inside sweeps) further folds in the duty ratio.
///
/// Sweep *shards* opt out of the cache: the merge asserts every shard's
/// shared rdf-only reference bit-equal, and while the cache never
/// changes a verdict, a warm hit skips the circuit solver — so the
/// solver-effort counters (Newton iterations, factorisations,
/// warm-started curves) in the shard's report would depend on what the
/// worker computed before. Shards therefore always evaluate cold, and
/// the merged document stays bit-identical to a single-process run no
/// matter how shards were placed or replayed.
fn job_bench<B: SweepBench>(
    shared: &Shared<B>,
    scenario: Scenario,
    spec: &JobSpec,
) -> SharedBench<B> {
    let enabled = shared.config.cache.enabled && spec.alpha_indices.is_none();
    SharedBench::new(
        (shared.factory)(scenario, spec.vdd),
        tag_for(&[scenario.tag_salt(), spec.vdd.to_bits()]),
        Arc::clone(&shared.cache),
        enabled,
    )
}

fn accept_loop<B: SweepBench + 'static>(listener: &TcpListener, shared: &Arc<Shared<B>>) {
    loop {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection<B: SweepBench>(mut stream: TcpStream, shared: &Shared<B>) {
    // Accepted sockets must block regardless of the listener's mode.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Slow-loris hygiene: a client that trickles its request, or stops
    // reading its response, can hold this thread at most
    // `connection_lifetime` in total — reads and writes each get their
    // own timeout, and whatever lifetime remains after the read+handle
    // caps the write.
    let lifetime = shared.config.connection_lifetime;
    let read_timeout = shared.config.read_timeout.min(lifetime);
    let _ = stream.set_read_timeout(Some(read_timeout.max(Duration::from_millis(1))));
    let started = Instant::now();
    let response = match http::read_request(&mut stream) {
        Ok(request) => route(shared, &request),
        Err(e) => error_response(400, "bad_request", e.to_string()),
    };
    let Some(remaining) = lifetime.checked_sub(started.elapsed()) else {
        // Lifetime exhausted before a byte of response: drop the
        // connection rather than start a write we won't finish.
        return;
    };
    let write_timeout = shared
        .config
        .write_timeout
        .min(remaining)
        .max(Duration::from_millis(1));
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = http::write_response(&mut stream, &response);
    shared
        .telemetry
        .http_seconds
        .record(started.elapsed().as_secs_f64());
}

fn json_body<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

fn error_response(status: u16, code: &str, message: impl Into<String>) -> Response {
    Response::json(status, json_body(&ApiError::new(code, message)))
}

fn route<B: SweepBench>(shared: &Shared<B>, request: &Request) -> Response {
    let path = request.path.trim_end_matches('/');
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "jobs"]) => submit(shared, request),
        ("GET", ["v1", "jobs", id]) => with_job_id(id, |id| status(shared, id)),
        ("GET", ["v1", "jobs", id, "report"]) => with_job_id(id, |id| report(shared, id)),
        ("GET", ["v1", "jobs", id, "trace"]) => with_job_id(id, |id| trace_document(shared, id)),
        ("DELETE", ["v1", "jobs", id]) => with_job_id(id, |id| cancel(shared, id)),
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["readyz"]) => readyz(shared),
        ("GET", ["metrics"]) => metrics_response(shared, request),
        (_, ["v1", "jobs"] | ["v1", "jobs", ..] | ["healthz"] | ["readyz"] | ["metrics"]) => {
            error_response(405, "method_not_allowed", "method not allowed on this path")
        }
        _ => error_response(404, "not_found", format!("no such path: {}", request.path)),
    }
}

fn with_job_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => error_response(
            400,
            "bad_request",
            format!("job id must be numeric: {raw:?}"),
        ),
    }
}

fn submit<B: SweepBench>(shared: &Shared<B>, http_request: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&http_request.body) else {
        return error_response(400, "bad_request", "body is not utf-8");
    };
    let mut request: SubmitRequest = match serde_json::from_str(text) {
        Ok(request) => request,
        Err(e) => return error_response(400, "bad_request", format!("invalid submission: {e}")),
    };
    // Trace-context precedence: a `traceparent` header wins over the
    // wire `trace` field; with neither, a deterministic context is
    // derived from the job id + RNG seed once the id is assigned.
    if let Some(header) = http_request
        .header("traceparent")
        .and_then(TraceContext::parse_traceparent)
    {
        request.trace = Some(header);
    }
    if request.protocol != PROTOCOL_VERSION {
        return error_response(
            400,
            "protocol_mismatch",
            format!(
                "client speaks protocol {}, server speaks {PROTOCOL_VERSION}",
                request.protocol
            ),
        );
    }
    if let Err(reason) = request.job.validate() {
        return error_response(400, "invalid_job", reason);
    }
    if request.deadline_ms == Some(0) {
        return error_response(
            400,
            "invalid_deadline",
            "deadline_ms must be positive (omit it for no deadline)",
        );
    }
    if request.idempotency_key.as_deref() == Some("") {
        return error_response(
            400,
            "invalid_idempotency_key",
            "idempotency_key must be non-empty (omit it to disable deduplication)",
        );
    }

    let mut state = lock_state(shared);
    // Idempotency first: a retry of an already-accepted submission must
    // succeed even while draining or saturated — the work is already
    // accounted for. `200` (not `202`): nothing new was accepted.
    if let Some(key) = &request.idempotency_key {
        if let Some(&existing) = state.idempotency.get(key) {
            shared
                .counters
                .idempotent_hits
                .fetch_add(1, Ordering::Relaxed);
            let status = job_status(&state, existing);
            return Response::json(200, json_body(&status));
        }
    }
    if state.draining || shared.stop_accepting.load(Ordering::SeqCst) {
        return error_response(
            503,
            "shutting_down",
            "server is draining; resubmit elsewhere",
        );
    }
    if state.queue.len() >= shared.config.queue_capacity {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        let hint = retry_after_seconds(shared, &state);
        let mut body = ApiError::new("queue_full", "job queue is full; retry later");
        body.retry_after_seconds = Some(hint);
        return Response::json(429, json_body(&body)).with_header("retry-after", hint.to_string());
    }
    let id = state.next_id;
    // Resolve the trace context now that the id exists, and stamp it
    // back into the request so the journal frame carries it — recovery
    // then resumes the identical trace.
    let trace = request
        .trace
        .unwrap_or_else(|| TraceContext::for_job(id, request.config.seed));
    request.trace = Some(trace);
    // Durability point: the submission reaches the fsync'd journal
    // *before* any acknowledgement leaves the server — and before the
    // job is visible anywhere else. Held under the state lock so a
    // concurrent compaction (which also takes it) can never discard
    // this frame without having seen the job in the table.
    if let Some(journal) = &shared.journal {
        if let Err(e) = journal.append(&JournalRecord::submitted(id, request.clone())) {
            return error_response(
                500,
                "journal_error",
                format!("could not journal submission: {e}"),
            );
        }
    }
    state.next_id += 1;
    // The wire field is authoritative: stamp it into the run config so
    // the recorded report and the served bench agree on the scenario.
    let mut config = request.config;
    config.scenario = request.scenario;
    let now = Instant::now();
    state.jobs.insert(
        id,
        JobRecord {
            spec: request.job,
            scenario: request.scenario,
            config,
            state: JobState::Queued,
            error: None,
            output: None,
            queued_at: now,
            progress: Arc::new(ProgressTracker::default()),
            trace,
            deadline_ms: request.deadline_ms,
            deadline: request
                .deadline_ms
                .map(|ms| now + Duration::from_millis(ms)),
            idempotency_key: request.idempotency_key.clone(),
            stop: Arc::new(AtomicBool::new(false)),
        },
    );
    if let Some(key) = request.idempotency_key {
        state.idempotency.insert(key, id);
    }
    state.queue.push_back(id);
    let position = (state.queue.len() - 1) as u64;
    drop(state);
    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
    shared.work_ready.notify_one();
    Response::json(
        202,
        json_body(&JobStatus {
            id,
            scenario: request.scenario,
            state: JobState::Queued,
            queue_position: Some(position),
            error: None,
            progress: None,
            trace_id: Some(fmt_hex_id(trace.trace_id)),
        }),
    )
}

/// Backpressure hint: smoothed seconds-per-job × backlog ÷ workers,
/// clamped to `[1, 600]` seconds.
fn retry_after_seconds<B>(shared: &Shared<B>, state: &QueueState) -> u64 {
    let per_job = *shared.ewma_job_seconds.lock();
    let backlog = (state.queue.len() as u64 + state.in_flight).max(1);
    let workers = shared.config.workers.max(1) as f64;
    let estimate = (per_job * backlog as f64 / workers).ceil();
    (estimate as u64).clamp(1, 600)
}

fn job_status(state: &QueueState, id: u64) -> Option<JobStatus> {
    let record = state.jobs.get(&id)?;
    let queue_position = state
        .queue
        .iter()
        .position(|&queued| queued == id)
        .map(|p| p as u64);
    Some(JobStatus {
        id,
        scenario: record.scenario,
        state: record.state,
        queue_position,
        error: record.error.clone(),
        progress: (record.state == JobState::Running).then(|| record.progress.snapshot()),
        trace_id: Some(fmt_hex_id(record.trace.trace_id)),
    })
}

fn status<B>(shared: &Shared<B>, id: u64) -> Response {
    match job_status(&lock_state(shared), id) {
        Some(status) => Response::json(200, json_body(&status)),
        None => error_response(404, "unknown_job", format!("no job {id}")),
    }
}

fn report<B>(shared: &Shared<B>, id: u64) -> Response {
    let state = lock_state(shared);
    let Some(record) = state.jobs.get(&id) else {
        return error_response(404, "unknown_job", format!("no job {id}"));
    };
    if record.state.is_terminal() {
        let mut report = JobReport {
            id,
            scenario: record.scenario,
            state: record.state,
            error: record.error.clone(),
            estimate: None,
            sweep: None,
            trace_id: Some(fmt_hex_id(record.trace.trace_id)),
        };
        match &record.output {
            Some(JobOutput::Estimate(outcome)) => report.estimate = Some(outcome.clone()),
            Some(JobOutput::Sweep(outcome)) => report.sweep = Some(outcome.clone()),
            None => {}
        }
        Response::json(200, json_body(&report))
    } else {
        let state = record.state;
        error_response(
            409,
            "not_ready",
            format!("job {id} is {state}; no report yet"),
        )
    }
}

/// `GET /v1/jobs/{id}/trace`: the span timeline this node recorded for
/// one job. Empty until the worker finishes (the collector folds stage
/// events into spans only at job end); `404` for unknown ids.
fn trace_document<B>(shared: &Shared<B>, id: u64) -> Response {
    let trace_id = {
        let state = lock_state(shared);
        match state.jobs.get(&id) {
            Some(record) => record.trace.trace_id,
            None => return error_response(404, "unknown_job", format!("no job {id}")),
        }
    };
    let spans = shared.spans.get(id).unwrap_or_default();
    Response::json(
        200,
        json_body(&JobTrace {
            job_id: id,
            trace_id: fmt_hex_id(trace_id),
            spans,
        }),
    )
}

fn cancel<B>(shared: &Shared<B>, id: u64) -> Response {
    let mut state = lock_state(shared);
    let Some(record) = state.jobs.get(&id) else {
        return error_response(404, "unknown_job", format!("no job {id}"));
    };
    match record.state {
        JobState::Queued => {
            state.queue.retain(|&queued| queued != id);
            if let Some(record) = state.jobs.get_mut(&id) {
                record.state = JobState::Cancelled;
                record.error = Some("cancelled while queued".to_string());
            }
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            shared
                .counters
                .cancelled_queued
                .fetch_add(1, Ordering::Relaxed);
            let status = job_status(&state, id);
            drop(state);
            journal_terminal(
                shared,
                id,
                JobState::Cancelled,
                Some("cancelled while queued".to_string()),
            );
            Response::json(200, json_body(&status))
        }
        JobState::Running => {
            // Cooperative: raise the stop flag and acknowledge with
            // `202`. The worker observes it at the next iteration/batch
            // boundary and drains the job to `cancelled`; the caller
            // polls the status to watch it land.
            record.stop.store(true, Ordering::SeqCst);
            let status = job_status(&state, id);
            Response::json(202, json_body(&status))
        }
        state => error_response(409, "conflict", format!("job {id} is already {state}")),
    }
}

fn healthz<B>(shared: &Shared<B>) -> Response {
    let draining = shared.stop_accepting.load(Ordering::SeqCst) || lock_state(shared).draining;
    Response::json(
        200,
        json_body(&Health {
            status: if draining { "draining" } else { "ok" }.to_string(),
            protocol: PROTOCOL_VERSION,
        }),
    )
}

/// `GET /readyz`: should this node receive traffic right now?
/// `200 ready` only when boot replay is done, the server is accepting,
/// and the queue has room; `503` with the blocking condition otherwise
/// — load balancers can route on the status code alone.
fn readyz<B>(shared: &Shared<B>) -> Response {
    let (status, ready) = if !shared.ready.load(Ordering::SeqCst) {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            ("draining", false)
        } else {
            ("replaying", false)
        }
    } else if shared.stop_accepting.load(Ordering::SeqCst) || lock_state(shared).draining {
        ("draining", false)
    } else if lock_state(shared).queue.len() >= shared.config.queue_capacity {
        ("saturated", false)
    } else {
        ("ready", true)
    };
    // How soon a probe is worth repeating: replay finishes quickly
    // (the journal is compacted at boot), a drain never un-drains but
    // the process is usually replaced within moments, saturation clears
    // at job-completion cadence.
    let retry_after_seconds = (!ready).then_some(1u64);
    let response = Response::json(
        if ready { 200 } else { 503 },
        json_body(&Readiness {
            ready,
            status: status.to_string(),
            protocol: PROTOCOL_VERSION,
            retry_after_seconds,
        }),
    );
    match retry_after_seconds {
        Some(hint) => response.with_header("Retry-After", hint.to_string()),
        None => response,
    }
}

fn collect_metrics<B>(shared: &Shared<B>) -> Metrics {
    let (queue_depth, in_flight) = {
        let state = lock_state(shared);
        (state.queue.len() as u64, state.in_flight)
    };
    // Refresh the registry's gauge from the same snapshot, so the
    // Prometheus exposition (rendered from the registry) and the JSON
    // document always agree on the depth.
    shared.telemetry.queue_depth.set(queue_depth as f64);
    let c = &shared.counters;
    let completed = c.completed.load(Ordering::Relaxed);
    let failed = c.failed.load(Ordering::Relaxed);
    let cancelled = c.cancelled.load(Ordering::Relaxed);
    let deadline_exceeded = c.deadline_exceeded.load(Ordering::Relaxed);
    let persisted = c.persisted.load(Ordering::Relaxed);
    Metrics {
        queue_depth,
        queue_capacity: shared.config.queue_capacity as u64,
        in_flight,
        workers: shared.config.workers.max(1) as u64,
        submitted: c.submitted.load(Ordering::Relaxed),
        completed,
        failed,
        cancelled,
        cancelled_queued: c.cancelled_queued.load(Ordering::Relaxed),
        cancelled_running: c.cancelled_running.load(Ordering::Relaxed),
        deadline_exceeded,
        recovered: shared.recovered,
        idempotent_hits: c.idempotent_hits.load(Ordering::Relaxed),
        persisted,
        rejected: c.rejected.load(Ordering::Relaxed),
        cache_entries: shared.cache.len() as u64,
        cache_hits: shared.cache.hits(),
        cache_misses: shared.cache.misses(),
        cache_hit_rate: shared.cache.hit_rate(),
        cache_loaded_entries: shared.cache_loaded,
        journal_compactions_total: shared.journal.as_ref().map_or(0, |j| j.compactions()),
        journal_frames_replayed_total: shared.frames_replayed,
        journal_bytes: shared.journal.as_ref().map_or(0, |j| j.bytes()),
        journal_replay_duration_seconds: shared.journal_replay_seconds,
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        jobs_in_terminal_state: completed + failed + cancelled + deadline_exceeded + persisted,
        scenario_jobs: Scenario::ALL
            .iter()
            .enumerate()
            .map(|(index, scenario)| ScenarioJobCount {
                scenario: scenario.id().to_string(),
                completed: shared.scenario_completed[index].load(Ordering::Relaxed),
            })
            .collect(),
        oracle: *shared.oracle_totals.lock(),
    }
}

/// Serves `GET /metrics`: Prometheus text exposition when the client's
/// `Accept` header asks for `text/plain`, the JSON document otherwise.
fn metrics_response<B>(shared: &Shared<B>, request: &Request) -> Response {
    let metrics = collect_metrics(shared);
    let wants_prometheus = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_prometheus {
        Response::text(200, render_prometheus_document(shared, &metrics))
    } else {
        Response::json(200, json_body(&metrics))
    }
}

/// One `# HELP`/`# TYPE`/sample triple of Prometheus exposition.
fn prom_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    use std::fmt::Write as _;
    let rendered = if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    };
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {rendered}");
}

/// Builds the full Prometheus document: scalar series synthesised from
/// the *same* [`Metrics`] snapshot the JSON endpoint serves (so the two
/// representations always agree), followed by the registry's rendered
/// histograms (HTTP latency, queue wait, job duration, and the core
/// observer bridge's pipeline metrics).
fn render_prometheus_document<B>(shared: &Shared<B>, m: &Metrics) -> String {
    let mut out = String::new();
    // `queue_depth` is absent here on purpose: it lives in the
    // registry as a real gauge (refreshed by `collect_metrics`), so it
    // renders with the registry histograms at the end of the document.
    let gauges: [(&str, &str, f64); 9] = [
        (
            "queue_capacity",
            "Bound of the job queue",
            m.queue_capacity as f64,
        ),
        ("in_flight", "Jobs currently executing", m.in_flight as f64),
        ("workers", "Size of the worker pool", m.workers as f64),
        (
            "cache_entries",
            "Entries in the process-wide verdict cache",
            m.cache_entries as f64,
        ),
        (
            "cache_hit_rate",
            "Verdict-cache hit fraction (NaN before any traffic)",
            m.cache_hit_rate.unwrap_or(f64::NAN),
        ),
        (
            "cache_loaded_entries",
            "Verdicts restored from the persistent store at startup",
            m.cache_loaded_entries as f64,
        ),
        (
            "uptime_seconds",
            "Seconds since the server bound its socket",
            m.uptime_seconds,
        ),
        (
            "jobs_in_terminal_state",
            "Jobs completed, failed, cancelled or persisted",
            m.jobs_in_terminal_state as f64,
        ),
        (
            "journal_bytes",
            "Current on-disk size of the write-ahead job journal",
            m.journal_bytes as f64,
        ),
    ];
    for (name, help, value) in gauges {
        prom_scalar(
            &mut out,
            &format!("ecripse_serve_{name}"),
            "gauge",
            help,
            value,
        );
    }
    let counters: [(&str, &str, u64); 24] = [
        ("submitted_total", "Jobs ever accepted", m.submitted),
        ("completed_total", "Jobs finished successfully", m.completed),
        (
            "failed_total",
            "Jobs finished with an estimation error",
            m.failed,
        ),
        (
            "cancelled_total",
            "Jobs cancelled (queued or running)",
            m.cancelled,
        ),
        (
            "cancelled_queued_total",
            "Cancellations that caught the job still queued",
            m.cancelled_queued,
        ),
        (
            "cancelled_running_total",
            "Cancellations that interrupted a running job",
            m.cancelled_running,
        ),
        (
            "deadline_exceeded_total",
            "Jobs stopped by their wall-clock deadline",
            m.deadline_exceeded,
        ),
        (
            "recovered_total",
            "Unfinished jobs re-enqueued from the journal at boot",
            m.recovered,
        ),
        (
            "journal_compactions_total",
            "Write-ahead journal compactions since startup",
            m.journal_compactions_total,
        ),
        (
            "journal_frames_replayed_total",
            "Journal frames decoded during boot replay",
            m.journal_frames_replayed_total,
        ),
        (
            "idempotent_hits_total",
            "Submissions deduplicated by idempotency key",
            m.idempotent_hits,
        ),
        (
            "persisted_total",
            "Queued sweeps persisted during shutdown",
            m.persisted,
        ),
        ("rejected_total", "Submissions bounced with 429", m.rejected),
        ("cache_hits_total", "Verdict-cache hits", m.cache_hits),
        ("cache_misses_total", "Verdict-cache misses", m.cache_misses),
        (
            "oracle_classified_total",
            "Queries answered by the classifier",
            m.oracle.classified,
        ),
        (
            "oracle_simulated_total",
            "Queries answered by simulation",
            m.oracle.simulated,
        ),
        (
            "oracle_retrains_total",
            "Classifier retraining rounds",
            m.oracle.retrains,
        ),
        (
            "oracle_retries_total",
            "Retry-ladder attempts",
            m.oracle.retries,
        ),
        (
            "oracle_quarantined_total",
            "Samples quarantined",
            m.oracle.quarantined,
        ),
        (
            "oracle_uncertain_simulated_total",
            "Stage-2 simulations triggered by the uncertainty band",
            m.oracle.uncertain_simulated,
        ),
        (
            "newton_iters_total",
            "Bisection/Newton iterations spent in the circuit solver",
            m.oracle.newton_iters,
        ),
        (
            "factorisations_total",
            "Operating-point curve solves (LU factorisations)",
            m.oracle.factorisations,
        ),
        (
            "warm_start_seeds_total",
            "Butterfly evaluations warm-started from a neighbour seed",
            m.oracle.warm_start_seeds,
        ),
    ];
    for (name, help, value) in counters {
        prom_scalar(
            &mut out,
            &format!("ecripse_serve_{name}"),
            "counter",
            help,
            value as f64,
        );
    }
    {
        use std::fmt::Write as _;
        let name = "ecripse_serve_scenario_jobs_total";
        let _ = writeln!(
            out,
            "# HELP {name} Jobs completed successfully, by scenario"
        );
        let _ = writeln!(out, "# TYPE {name} counter");
        for entry in &m.scenario_jobs {
            let _ = writeln!(
                out,
                "{name}{{scenario=\"{}\"}} {}",
                escape_label_value(&entry.scenario),
                entry.completed
            );
        }
    }
    out.push_str(&shared.telemetry.registry.render_prometheus());
    out
}

/// Why a job stopped short of a result.
enum JobFailure {
    /// The stop flag interrupted the pipeline at a clean boundary —
    /// cancellation or a deadline; the caller decides which from the
    /// job's deadline.
    Interrupted,
    /// An estimation error or a caught panic.
    Error(String),
}

fn worker_loop<B: SweepBench + 'static>(shared: &Arc<Shared<B>>) {
    loop {
        let (id, spec, scenario, config, progress, deadline, stop, trace) = {
            let mut state = lock_state(shared);
            loop {
                if let Some(id) = state.queue.pop_front() {
                    let Some(record) = state.jobs.get_mut(&id) else {
                        continue;
                    };
                    // The watchdog polls every 20ms; a budget that ran
                    // out in between is caught here instead of wasting
                    // a worker on a job that's already dead.
                    if record
                        .deadline
                        .is_some_and(|deadline| deadline <= Instant::now())
                    {
                        record.state = JobState::DeadlineExceeded;
                        record.error = Some(format!(
                            "deadline of {}ms exceeded while queued",
                            record.deadline_ms.unwrap_or(0)
                        ));
                        let error = record.error.clone();
                        shared
                            .counters
                            .deadline_exceeded
                            .fetch_add(1, Ordering::Relaxed);
                        drop(state);
                        journal_terminal(shared, id, JobState::DeadlineExceeded, error);
                        state = lock_state(shared);
                        continue;
                    }
                    record.state = JobState::Running;
                    shared
                        .telemetry
                        .queue_wait_seconds
                        .record(record.queued_at.elapsed().as_secs_f64());
                    let job = (
                        id,
                        record.spec.clone(),
                        record.scenario,
                        record.config,
                        Arc::clone(&record.progress),
                        record.deadline,
                        Arc::clone(&record.stop),
                        record.trace,
                    );
                    state.in_flight += 1;
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let started = Instant::now();
        // The collector is observational only (it never feeds back into
        // the pipeline), so the job's numbers stay bit-identical with
        // or without tracing; its spans are stored win or lose, so a
        // failed job still shows where its time went.
        let collector = SpanCollector::new(trace, shared.node.clone());
        let outcome = execute(
            shared, id, &spec, scenario, config, &progress, &stop, &collector,
        );
        shared.spans.insert(id, collector.finish());
        let elapsed = started.elapsed().as_secs_f64();
        shared.telemetry.job_seconds.record(elapsed);
        {
            let mut per_job = shared.ewma_job_seconds.lock();
            *per_job = 0.7 * *per_job + 0.3 * elapsed;
        }
        let mut terminal: Option<(JobState, Option<String>)> = None;
        let mut state = lock_state(shared);
        state.in_flight -= 1;
        if let Some(record) = state.jobs.get_mut(&id) {
            match outcome {
                Ok((output, oracle)) => {
                    record.state = JobState::Completed;
                    record.output = Some(output);
                    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    if let Some(index) = Scenario::ALL.iter().position(|&s| s == scenario) {
                        shared.scenario_completed[index].fetch_add(1, Ordering::Relaxed);
                    }
                    add_oracle(&mut shared.oracle_totals.lock(), &oracle);
                    terminal = Some((JobState::Completed, None));
                }
                Err(JobFailure::Interrupted) => {
                    // One stop flag, two causes: a budget that ran out
                    // (watchdog) or an explicit DELETE. The deadline
                    // disambiguates.
                    let expired = deadline.is_some_and(|deadline| deadline <= Instant::now());
                    if expired {
                        record.state = JobState::DeadlineExceeded;
                        record.error = Some(format!(
                            "deadline of {}ms exceeded while running",
                            record.deadline_ms.unwrap_or(0)
                        ));
                        shared
                            .counters
                            .deadline_exceeded
                            .fetch_add(1, Ordering::Relaxed);
                    } else {
                        record.state = JobState::Cancelled;
                        record.error = Some("cancelled while running".to_string());
                        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                        shared
                            .counters
                            .cancelled_running
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    terminal = Some((record.state, record.error.clone()));
                }
                Err(JobFailure::Error(message)) => {
                    record.state = JobState::Failed;
                    record.error = Some(message);
                    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                    terminal = Some((JobState::Failed, record.error.clone()));
                }
            }
        }
        drop(state);
        if let Some((state, error)) = terminal {
            journal_terminal(shared, id, state, error);
        }
    }
}

fn add_oracle(total: &mut OracleStats, delta: &OracleStats) {
    total.classified += delta.classified;
    total.simulated += delta.simulated;
    total.uncertain_simulated += delta.uncertain_simulated;
    total.retrains += delta.retrains;
    total.cache_hits += delta.cache_hits;
    total.cache_misses += delta.cache_misses;
    total.retries += delta.retries;
    total.quarantined += delta.quarantined;
    total.newton_iters += delta.newton_iters;
    total.factorisations += delta.factorisations;
    total.warm_start_seeds += delta.warm_start_seeds;
}

/// Runs one job through the exact pipeline of a direct library call.
/// Panics inside the estimation stack (dimension mismatches from exotic
/// bench factories, …) are caught and reported as job failures so a bad
/// job can never take a worker down.
#[allow(clippy::too_many_arguments)]
fn execute<B: SweepBench + 'static>(
    shared: &Arc<Shared<B>>,
    id: u64,
    spec: &JobSpec,
    scenario: Scenario,
    config: EcripseConfig,
    progress: &Arc<ProgressTracker>,
    stop: &Arc<AtomicBool>,
    collector: &SpanCollector,
) -> Result<(JobOutput, OracleStats), JobFailure> {
    let shared = Arc::clone(shared);
    let spec = spec.clone();
    let progress = Arc::clone(progress);
    let stop = Arc::clone(stop);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        execute_inner(
            &shared, id, &spec, scenario, config, &progress, &stop, collector,
        )
    }))
    .unwrap_or_else(|panic| {
        let message = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "unknown panic".to_string());
        Err(JobFailure::Error(format!("job panicked: {message}")))
    })
}

#[allow(clippy::too_many_arguments)]
fn execute_inner<B: SweepBench + 'static>(
    shared: &Shared<B>,
    id: u64,
    spec: &JobSpec,
    scenario: Scenario,
    config: EcripseConfig,
    progress: &ProgressTracker,
    stop: &AtomicBool,
    collector: &SpanCollector,
) -> Result<(JobOutput, OracleStats), JobFailure> {
    let bench = job_bench(shared, scenario, spec);
    // Everything beyond the deterministic recorder is observational:
    // the live-progress tracker, the registry bridge and the span
    // collector see the same event stream but never feed back into the
    // estimation, so served reports stay bit-identical to direct
    // library calls.
    let mut side = MultiObserver::new();
    side.push(progress);
    side.push(&shared.telemetry.bridge);
    side.push(collector);
    match spec.kind {
        JobKind::Estimate => {
            let recorder = RunRecorder::new();
            let mut fanout = MultiObserver::new();
            fanout.push(&recorder);
            fanout.push(&side);
            let map_estimate = |e: EstimateError| match e {
                EstimateError::Interrupted => JobFailure::Interrupted,
                other => JobFailure::Error(other.to_string()),
            };
            let result = match spec.alpha {
                None => Ecripse::new(config, bench)
                    .estimate_interruptible_observed(stop, &fanout)
                    .map_err(map_estimate)?,
                Some(alpha) => {
                    let rtn = SramRtn::paper_model(alpha, bench.sigmas());
                    Ecripse::with_rtn(config, bench, rtn)
                        .estimate_interruptible_observed(stop, &fanout)
                        .map_err(map_estimate)?
                }
            };
            let oracle = result.oracle_stats;
            Ok((
                JobOutput::Estimate(EstimateOutcome {
                    p_fail: result.p_fail,
                    ci95_half_width: result.ci95_half_width,
                    simulations: result.simulations,
                    is_samples: result.is_samples,
                    report: recorder.into_report(),
                }),
                oracle,
            ))
        }
        JobKind::Sweep => {
            let alphas = spec.alphas.clone().unwrap_or_default();
            // A shard seeds its points by global index (the spec was
            // validated at submit time, so the panics cannot fire).
            let mut sweep = DutySweep::new(config, bench, alphas);
            if let Some(indices) = spec.alpha_indices.clone() {
                sweep = sweep.with_point_indices(indices);
            }
            let options = SweepOptions {
                checkpoint: spool_path(shared, id),
                resume: true,
                keep_going: false,
            };
            // An interrupted sweep keeps its spool checkpoint: a later
            // durable boot re-enqueues the job (if it was a deadline,
            // the budget restarts) and the finished points resume
            // bit-identically instead of recomputing.
            let map_sweep = |e: SweepError| match e {
                SweepError::Interrupted { .. } => JobFailure::Interrupted,
                other => JobFailure::Error(other.to_string()),
            };
            let run = sweep
                .run_resumable_interruptible_observed(&options, stop, &side)
                .map_err(map_sweep)?;
            let (result, reports) = run
                .into_parts()
                .map_err(|e| JobFailure::Error(e.to_string()))?;
            // The job is done; its spool checkpoint has served its
            // purpose.
            if let Some(path) = spool_path(shared, id) {
                let _ = std::fs::remove_file(path);
            }
            let mut oracle = OracleStats::default();
            add_oracle(&mut oracle, &reports.rdf_only.oracle);
            for point in &reports.points {
                add_oracle(&mut oracle, &point.oracle);
            }
            Ok((
                JobOutput::Sweep(SweepOutcome {
                    p_fail_rdf_only: result.p_fail_rdf_only,
                    rdf_only_ci95: result.rdf_only_ci95,
                    init_simulations: result.init_simulations,
                    total_simulations: result.total_simulations,
                    points: result.points,
                    reports,
                }),
                oracle,
            ))
        }
    }
}
