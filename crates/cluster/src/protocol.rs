//! Wire types for the coordinator's cluster-management endpoints.
//!
//! The *job* wire protocol is exactly `ecripse-serve`'s
//! ([`SubmitRequest`](ecripse_serve::protocol::SubmitRequest) and
//! friends, gated by the same
//! [`PROTOCOL_VERSION`](ecripse_serve::protocol::PROTOCOL_VERSION)) —
//! a client cannot tell a coordinator from a single server. The types
//! here cover only what the cluster adds: worker registration,
//! heartbeats, the worker listing and the coordinator's own metrics
//! document.

use ecripse_serve::protocol::Metrics;
use serde::{Deserialize, Serialize};

/// `POST /v1/cluster/register` body: a worker announcing itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterRequest {
    /// Must equal the serve wire protocol version — a worker speaking a
    /// different protocol would hand back undecodable shard reports.
    pub protocol: u32,
    /// Stable worker name. Re-registering the same name revives a dead
    /// entry (the restarted-worker path); two concurrent workers must
    /// not share one.
    pub name: String,
    /// Address the coordinator dials for shard submissions
    /// (`host:port` of the worker's serve socket).
    pub addr: String,
}

/// `POST /v1/cluster/register` response: the cadence the coordinator
/// expects.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterResponse {
    /// Protocol version the coordinator speaks.
    pub protocol: u32,
    /// How often the worker should heartbeat.
    pub heartbeat_interval_ms: u64,
    /// Silence longer than this marks the worker dead.
    pub timeout_ms: u64,
}

/// `POST /v1/cluster/heartbeat` body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatRequest {
    /// The registered worker name. An unknown (or reaped) name is
    /// answered `404` so the worker re-registers.
    pub name: String,
}

/// One worker in the `GET /v1/cluster/workers` listing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerView {
    /// Registered name.
    pub name: String,
    /// Dial address.
    pub addr: String,
    /// Whether the reaper still considers it alive.
    pub alive: bool,
    /// Milliseconds since its last register/heartbeat.
    pub last_seen_ms: u64,
}

/// The `GET /v1/cluster/workers` body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterWorkers {
    /// Every known worker, dead or alive, sorted by name.
    pub workers: Vec<WorkerView>,
}

/// One worker's scraped serve metrics inside the federated view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerMetricsView {
    /// The worker's registered name.
    pub worker: String,
    /// The worker's own `GET /metrics` document, verbatim.
    pub metrics: Metrics,
}

/// Min/max/sum of one serve scalar across the scraped workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRollup {
    /// The serve metric the rollup covers (e.g. `queue_depth`).
    pub name: String,
    /// Smallest per-worker value.
    pub min: f64,
    /// Largest per-worker value.
    pub max: f64,
    /// Sum over every scraped worker.
    pub sum: f64,
}

/// The coordinator's `GET /metrics` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Workers currently alive.
    pub workers_alive: u64,
    /// Workers ever declared dead by the reaper (revivals do not
    /// subtract — this counts death events).
    pub workers_dead_total: u64,
    /// Jobs ever accepted by the coordinator.
    pub jobs_submitted: u64,
    /// Jobs whose merged result completed.
    pub jobs_completed: u64,
    /// Jobs that ended in failure.
    pub jobs_failed: u64,
    /// Jobs cancelled through the coordinator.
    pub jobs_cancelled: u64,
    /// Jobs that ran out of their deadline budget.
    pub jobs_deadline_exceeded: u64,
    /// Submissions answered from the idempotency map.
    pub idempotent_hits: u64,
    /// Sweep shards dispatched to workers (re-dispatches included).
    pub shards_dispatched_total: u64,
    /// Shards that had to be reassigned off a dead worker.
    pub shards_reassigned_total: u64,
    /// Shards whose results were merged.
    pub shards_completed_total: u64,
    /// Estimate jobs forwarded whole to a single worker.
    pub estimates_forwarded_total: u64,
    /// Seconds since the coordinator bound its socket.
    pub uptime_seconds: f64,
    /// Per-worker serve metrics gathered by the on-demand federation
    /// scrape behind `GET /metrics`. Empty when no worker answered, in
    /// the in-process [`Coordinator::metrics`](crate::Coordinator::metrics)
    /// snapshot (which skips the scrape), and in pre-PR-10 documents.
    #[serde(default)]
    pub workers: Vec<WorkerMetricsView>,
    /// Min/max/sum rollups of a few serve scalars across the scraped
    /// workers; empty whenever `workers` is.
    #[serde(default)]
    pub rollups: Vec<MetricRollup>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_types_round_trip() {
        let register = RegisterRequest {
            protocol: 1,
            name: "w1".into(),
            addr: "127.0.0.1:7878".into(),
        };
        let json = serde_json::to_string(&register).expect("serialise");
        let back: RegisterRequest = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, register);

        let listing = ClusterWorkers {
            workers: vec![WorkerView {
                name: "w1".into(),
                addr: "127.0.0.1:7878".into(),
                alive: true,
                last_seen_ms: 12,
            }],
        };
        let json = serde_json::to_string(&listing).expect("serialise");
        let back: ClusterWorkers = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, listing);

        let metrics = ClusterMetrics {
            workers_alive: 2,
            workers_dead_total: 1,
            jobs_submitted: 5,
            jobs_completed: 3,
            jobs_failed: 0,
            jobs_cancelled: 1,
            jobs_deadline_exceeded: 1,
            idempotent_hits: 2,
            shards_dispatched_total: 9,
            shards_reassigned_total: 2,
            shards_completed_total: 7,
            estimates_forwarded_total: 1,
            uptime_seconds: 0.5,
            workers: Vec::new(),
            rollups: vec![MetricRollup {
                name: "queue_depth".into(),
                min: 0.0,
                max: 3.0,
                sum: 3.0,
            }],
        };
        let json = serde_json::to_string(&metrics).expect("serialise");
        let back: ClusterMetrics = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, metrics);
    }

    /// A pre-PR-10 coordinator metrics document — no `workers`, no
    /// `rollups` — must still parse, with the federation fields
    /// defaulting to empty.
    #[test]
    fn pre_federation_metrics_still_parse() {
        let modern = ClusterMetrics {
            workers_alive: 1,
            workers_dead_total: 0,
            jobs_submitted: 2,
            jobs_completed: 2,
            jobs_failed: 0,
            jobs_cancelled: 0,
            jobs_deadline_exceeded: 0,
            idempotent_hits: 0,
            shards_dispatched_total: 4,
            shards_reassigned_total: 0,
            shards_completed_total: 4,
            estimates_forwarded_total: 0,
            uptime_seconds: 1.5,
            workers: Vec::new(),
            rollups: Vec::new(),
        };
        let json = serde_json::to_string(&modern).expect("serialise");
        let mut value: serde::json::Value = serde_json::from_str(&json).expect("parse");
        if let serde::json::Value::Object(entries) = &mut value {
            entries.retain(|(key, _)| key != "workers" && key != "rollups");
        }
        let stripped = serde_json::to_string(&value).expect("re-serialise");
        let back: ClusterMetrics =
            serde_json::from_str(&stripped).expect("old wire body must parse");
        assert!(back.workers.is_empty());
        assert!(back.rollups.is_empty());
        assert_eq!(back, modern);
    }
}
