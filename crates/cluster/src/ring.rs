//! A consistent-hash ring over named cluster members.
//!
//! The coordinator partitions a sweep's duty points across workers by
//! hashing each point's key onto the ring and walking clockwise to the
//! first virtual node. Virtual nodes (many hash points per member)
//! smooth the distribution: with the default [`DEFAULT_VNODES`] per
//! member, every member owns close to its fair share of the key space,
//! and adding or removing one member only remaps the keys that member
//! owned (roughly `K/n` of `K` keys over `n` members) — every other
//! key keeps its owner, which is what keeps shard reassignment after a
//! worker death from reshuffling the shards of the survivors.
//!
//! The hash is FNV-1a 64-bit (the same dependency-free hash the rest
//! of the workspace uses for fingerprints) pushed through a 64-bit
//! avalanche finaliser — raw FNV-1a has weak high-bit diffusion, and
//! vnode labels differ in only a character or two, which clusters the
//! ring badly without the mix. No RNG anywhere: the ring is a pure
//! function of the member names, so two coordinators (or the same
//! coordinator across restarts) agree on every assignment.

/// Virtual nodes per member. 128 keeps the worst member within ~2× of
/// the ideal share for realistic cluster sizes (see the property
/// tests) while ring construction stays trivially cheap.
pub const DEFAULT_VNODES: usize = 128;

/// FNV-1a 64-bit over raw bytes, finished with a murmur-style 64-bit
/// avalanche mix. The mix matters: neighbouring labels (`w|17` vs
/// `w|18`) must land far apart on the ring, and plain FNV-1a leaves
/// them correlated.
fn ring_hash(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// A consistent-hash ring: sorted virtual-node hash points, each
/// mapping back to the member that owns it.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(hash, member index)` sorted by hash.
    points: Vec<(u64, usize)>,
    /// Member names, in the order given to [`HashRing::new`].
    members: Vec<String>,
}

impl HashRing {
    /// Builds a ring over `members` with [`DEFAULT_VNODES`] virtual
    /// nodes each. Duplicate names collapse onto the same hash points,
    /// so they behave as one member.
    pub fn new<S: AsRef<str>>(members: &[S]) -> Self {
        Self::with_vnodes(members, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (≥ 1).
    pub fn with_vnodes<S: AsRef<str>>(members: &[S], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let members: Vec<String> = members.iter().map(|m| m.as_ref().to_string()).collect();
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for (index, member) in members.iter().enumerate() {
            for vnode in 0..vnodes {
                let label = format!("{member}|{vnode}");
                points.push((ring_hash(label.as_bytes()), index));
            }
        }
        // Ties (astronomically unlikely with 64-bit FNV, but cheap to
        // pin down) break towards the earlier member, deterministically.
        points.sort_unstable();
        Self { points, members }
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// The member names the ring was built over.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The member owning `key`: the first virtual node at or clockwise
    /// after the key's hash, wrapping around the ring. `None` on an
    /// empty ring.
    pub fn owner(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let hash = ring_hash(key.as_bytes());
        let position = self.points.partition_point(|&(point, _)| point < hash);
        let (_, index) = self.points[position % self.points.len()];
        Some(&self.members[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_total() {
        let ring = HashRing::new(&["a", "b", "c"]);
        for key in ["job-1/point-0", "job-1/point-1", "x", ""] {
            let first = ring.owner(key).expect("non-empty ring owns every key");
            let second = ring.owner(key).expect("owner");
            assert_eq!(first, second);
            assert!(ring.members().iter().any(|m| m == first));
        }
        assert!(HashRing::new::<&str>(&[]).owner("anything").is_none());
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = HashRing::new(&["only"]);
        for i in 0..64 {
            assert_eq!(ring.owner(&format!("key-{i}")), Some("only"));
        }
    }

    #[test]
    fn removal_only_remaps_the_removed_members_keys() {
        let full = HashRing::new(&["a", "b", "c", "d"]);
        let without_c = HashRing::new(&["a", "b", "d"]);
        for i in 0..512 {
            let key = format!("key-{i}");
            let before = full.owner(&key).expect("owner");
            if before != "c" {
                assert_eq!(
                    without_c.owner(&key),
                    Some(before),
                    "key {key} moved although its owner survived"
                );
            }
        }
    }
}
