//! The cluster coordinator: one front door, many `ecripse-serve`
//! workers.
//!
//! # Wire compatibility
//!
//! The coordinator accepts the *exact* job protocol a single server
//! speaks — `POST /v1/jobs` with a
//! [`SubmitRequest`](ecripse_serve::protocol::SubmitRequest), the same
//! status/report/cancel routes, the same error bodies. A client (or
//! the retrying [`Client`](ecripse_serve::Client)) cannot tell the two
//! apart; pointing an existing deployment at a coordinator is a config
//! change, not a code change.
//!
//! # Sharding
//!
//! A sweep's duty grid is partitioned over the live workers by a
//! [consistent-hash ring](crate::ring): each point's key hashes to an
//! owner, each owner's points are chunked into shards of at most
//! [`ClusterConfig::shard_points`], and each shard ships as a normal
//! serve submission whose [`JobSpec::sweep_shard`] carries the points'
//! *global grid indices*. The worker seeds every point by global index
//! — exactly the seed a single-process full-grid run would use — so
//! the merged report is bit-identical to the unsharded run (see
//! [`merge_sweep_shards`](ecripse_core::sweep::merge_sweep_shards)).
//! Estimates have nothing to split and are forwarded whole to one
//! ring-chosen worker.
//!
//! # Failover
//!
//! Workers heartbeat (see [`crate::join`]); the reaper marks a silent
//! worker dead after [`ClusterConfig::heartbeat_timeout`]. A dead
//! worker's unfinished shards are re-dispatched to survivors under
//! their *original* idempotency keys (`cluster/job-{id}/shard-{s}`),
//! so a worker that merely restarted answers the re-dispatch with its
//! journaled job instead of recomputing, and no shard can ever be
//! counted twice. The merge is keyed by global point index, not
//! arrival order — reassignment cannot change the result, only the
//! wall-clock.

use crate::protocol::{
    ClusterMetrics, ClusterWorkers, HeartbeatRequest, MetricRollup, RegisterRequest,
    RegisterResponse, WorkerMetricsView, WorkerView,
};
use crate::registry::WorkerRegistry;
use crate::ring::HashRing;
use ecripse_core::sweep::{merge_sweep_shards, SweepShard};
use ecripse_core::telemetry::{escape_label_value, fmt_hex_id, SpanRecord, TraceContext};
use ecripse_serve::http::{self, Request, Response};
use ecripse_serve::protocol::{
    ApiError, Health, JobKind, JobReport, JobSpec, JobState, JobStatus, JobTrace, Metrics,
    Readiness, SubmitRequest, SweepOutcome, PROTOCOL_VERSION,
};
use ecripse_serve::{BackoffPolicy, Client, ClientError};
use serde::Serialize;
use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Socket timeout for the best-effort federation scrape and trace
/// fan-out — deliberately shorter than [`ClusterConfig::worker_timeout`]
/// so one hung worker cannot stall a `GET /metrics` or trace fetch.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Coordinator settings.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Bound on concurrently tracked non-terminal jobs; submissions
    /// beyond it bounce with `429` (the workers' own queues are the
    /// real backpressure — this only stops unbounded dispatcher
    /// threads).
    pub max_inflight_jobs: usize,
    /// Cadence workers are told to heartbeat at.
    pub heartbeat_interval: Duration,
    /// Silence longer than this marks a worker dead.
    pub heartbeat_timeout: Duration,
    /// Largest number of duty points in one shard. Smaller shards
    /// spread wider and lose less work to a dead worker; larger shards
    /// amortise the per-shard initialisation a worker repeats.
    pub shard_points: usize,
    /// Socket timeout for coordinator → worker calls.
    pub worker_timeout: Duration,
    /// Dispatcher poll cadence while shards are in flight.
    pub poll_interval: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            max_inflight_jobs: 32,
            heartbeat_interval: Duration::from_millis(250),
            heartbeat_timeout: Duration::from_millis(1500),
            shard_points: 2,
            worker_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Everything the coordinator remembers about one job.
struct ClusterJob {
    request: SubmitRequest,
    state: JobState,
    error: Option<String>,
    report: Option<JobReport>,
    accepted_at: Instant,
    /// Cooperative cancel flag, raised by `DELETE /v1/jobs/{id}`.
    stop: Arc<AtomicBool>,
    /// The job's trace context: `traceparent` header, then the body's
    /// `trace` field, then derived from `(id, seed)` — in that order.
    trace: TraceContext,
    /// Coordinator-side spans (job root + one per shard), recorded when
    /// the dispatch ends.
    spans: Vec<SpanRecord>,
    /// `(worker addr, remote job id)` for every shard dispatch, kept so
    /// `GET /v1/jobs/{id}/trace` can fan out to the workers that held
    /// the shards.
    shard_sources: Vec<(String, u64)>,
}

struct State {
    jobs: HashMap<u64, ClusterJob>,
    next_id: u64,
    idempotency: HashMap<String, u64>,
    /// Dispatcher threads, one per accepted job; joined at shutdown.
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    /// Non-terminal jobs (bounds dispatcher concurrency).
    active: usize,
}

#[derive(Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_deadline_exceeded: AtomicU64,
    idempotent_hits: AtomicU64,
    workers_dead: AtomicU64,
    shards_dispatched: AtomicU64,
    shards_reassigned: AtomicU64,
    shards_completed: AtomicU64,
    estimates_forwarded: AtomicU64,
}

struct Shared {
    config: ClusterConfig,
    registry: WorkerRegistry,
    state: parking_lot::Mutex<State>,
    counters: Counters,
    stop_accepting: AtomicBool,
    draining: AtomicBool,
    reaper_stop: AtomicBool,
    started: Instant,
    /// Wall-clock anchor taken once at bind: span `start_ts` values are
    /// `anchor_unix_s + (instant - started)`, so every coordinator span
    /// shares one monotonic clock and cannot jump with wall-clock
    /// adjustments mid-run.
    anchor_unix_s: f64,
}

/// The coordinator service handle.
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    reaper: Option<std::thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the coordinator's HTTP front door.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ClusterConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            registry: WorkerRegistry::new(),
            state: parking_lot::Mutex::new(State {
                jobs: HashMap::new(),
                next_id: 1,
                idempotency: HashMap::new(),
                dispatchers: Vec::new(),
                active: 0,
            }),
            counters: Counters::default(),
            stop_accepting: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            reaper_stop: AtomicBool::new(false),
            started: Instant::now(),
            anchor_unix_s: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or_default(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reaper_loop(&shared))
        };
        Ok(Self {
            shared,
            addr,
            acceptor: Some(acceptor),
            reaper: Some(reaper),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current cluster metrics (the `GET /metrics` document).
    pub fn metrics(&self) -> ClusterMetrics {
        collect_metrics(&self.shared)
    }

    /// Graceful shutdown: stop accepting, let in-flight jobs drain
    /// against the remaining workers, join every thread. A job that
    /// cannot progress (no live workers) is failed rather than held
    /// forever.
    pub fn shutdown(mut self) {
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        let dispatchers = std::mem::take(&mut self.shared.state.lock().dispatchers);
        for dispatcher in dispatchers {
            let _ = dispatcher.join();
        }
        self.shared.reaper_stop.store(true, Ordering::SeqCst);
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        // `shutdown` consumed the handles; a plain drop still signals
        // the threads so they exit instead of spinning (they detach).
        if self.acceptor.is_some() || self.reaper.is_some() {
            self.shared.stop_accepting.store(true, Ordering::SeqCst);
            self.shared.draining.store(true, Ordering::SeqCst);
            self.shared.reaper_stop.store(true, Ordering::SeqCst);
        }
    }
}

fn reaper_loop(shared: &Arc<Shared>) {
    let pause = (shared.config.heartbeat_interval / 2).max(Duration::from_millis(10));
    while !shared.reaper_stop.load(Ordering::SeqCst) {
        std::thread::sleep(pause);
        let died = shared
            .registry
            .reap(Instant::now(), shared.config.heartbeat_timeout);
        if !died.is_empty() {
            shared
                .counters
                .workers_dead
                .fetch_add(died.len() as u64, Ordering::Relaxed);
            for name in died {
                eprintln!("ecripse-cluster: worker {name} missed its heartbeat; marked dead");
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let response = match http::read_request(&mut stream) {
        Ok(request) => route(shared, &request),
        Err(e) => error_response(400, "bad_request", e.to_string()),
    };
    let _ = http::write_response(&mut stream, &response);
}

fn json_body<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

fn error_response(status: u16, code: &str, message: impl Into<String>) -> Response {
    Response::json(status, json_body(&ApiError::new(code, message)))
}

fn route(shared: &Arc<Shared>, request: &Request) -> Response {
    let path = request.path.trim_end_matches('/');
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["v1", "jobs"]) => submit(shared, request),
        ("GET", ["v1", "jobs", id]) => with_job_id(id, |id| status(shared, id)),
        ("GET", ["v1", "jobs", id, "report"]) => with_job_id(id, |id| report(shared, id)),
        ("GET", ["v1", "jobs", id, "trace"]) => with_job_id(id, |id| trace_document(shared, id)),
        ("DELETE", ["v1", "jobs", id]) => with_job_id(id, |id| cancel(shared, id)),
        ("POST", ["v1", "cluster", "register"]) => register(shared, &request.body),
        ("POST", ["v1", "cluster", "heartbeat"]) => heartbeat(shared, &request.body),
        ("GET", ["v1", "cluster", "workers"]) => workers(shared),
        ("GET", ["healthz"]) => healthz(shared),
        ("GET", ["readyz"]) => readyz(shared),
        ("GET", ["metrics"]) => metrics_response(shared, request),
        (
            _,
            ["v1", "jobs"]
            | ["v1", "jobs", ..]
            | ["v1", "cluster", ..]
            | ["healthz"]
            | ["readyz"]
            | ["metrics"],
        ) => error_response(405, "method_not_allowed", "method not allowed on this path"),
        _ => error_response(404, "not_found", format!("no such path: {}", request.path)),
    }
}

fn with_job_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => error_response(
            400,
            "bad_request",
            format!("job id must be numeric: {raw:?}"),
        ),
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, Response> {
    let text = std::str::from_utf8(body)
        .map_err(|_| error_response(400, "bad_request", "body is not utf-8"))?;
    serde_json::from_str(text)
        .map_err(|e| error_response(400, "bad_request", format!("invalid body: {e}")))
}

fn register(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let request: RegisterRequest = match parse_body(body) {
        Ok(request) => request,
        Err(response) => return response,
    };
    if request.protocol != PROTOCOL_VERSION {
        return error_response(
            400,
            "protocol_mismatch",
            format!(
                "worker speaks protocol {}, coordinator speaks {PROTOCOL_VERSION}",
                request.protocol
            ),
        );
    }
    if request.name.is_empty() || request.addr.is_empty() {
        return error_response(400, "bad_request", "worker name and addr must be non-empty");
    }
    let gained = shared
        .registry
        .register(&request.name, &request.addr, Instant::now());
    if gained {
        eprintln!(
            "ecripse-cluster: worker {} joined at {}",
            request.name, request.addr
        );
    }
    Response::json(
        200,
        json_body(&RegisterResponse {
            protocol: PROTOCOL_VERSION,
            heartbeat_interval_ms: shared.config.heartbeat_interval.as_millis() as u64,
            timeout_ms: shared.config.heartbeat_timeout.as_millis() as u64,
        }),
    )
}

fn heartbeat(shared: &Arc<Shared>, body: &[u8]) -> Response {
    let request: HeartbeatRequest = match parse_body(body) {
        Ok(request) => request,
        Err(response) => return response,
    };
    if shared.registry.heartbeat(&request.name, Instant::now()) {
        Response::json(200, "{}".to_string())
    } else {
        error_response(
            404,
            "unknown_worker",
            format!(
                "worker {:?} is not registered; register first",
                request.name
            ),
        )
    }
}

fn workers(shared: &Arc<Shared>) -> Response {
    let now = Instant::now();
    let listing = ClusterWorkers {
        workers: shared
            .registry
            .snapshot(now)
            .into_iter()
            .map(|(name, entry, age)| WorkerView {
                name,
                addr: entry.addr,
                alive: entry.alive,
                last_seen_ms: age.as_millis() as u64,
            })
            .collect(),
    };
    Response::json(200, json_body(&listing))
}

fn healthz(shared: &Arc<Shared>) -> Response {
    let draining = shared.stop_accepting.load(Ordering::SeqCst);
    Response::json(
        200,
        json_body(&Health {
            status: if draining { "draining" } else { "ok" }.to_string(),
            protocol: PROTOCOL_VERSION,
        }),
    )
}

/// `GET /readyz`: the coordinator can route jobs only when at least one
/// live worker is registered.
fn readyz(shared: &Arc<Shared>) -> Response {
    let (status, ready) = if shared.stop_accepting.load(Ordering::SeqCst) {
        ("draining", false)
    } else if shared.registry.alive().is_empty() {
        ("no-workers", false)
    } else {
        ("ready", true)
    };
    let retry_after_seconds = (!ready).then_some(1u64);
    let response = Response::json(
        if ready { 200 } else { 503 },
        json_body(&Readiness {
            ready,
            status: status.to_string(),
            protocol: PROTOCOL_VERSION,
            retry_after_seconds,
        }),
    );
    match retry_after_seconds {
        Some(hint) => response.with_header("Retry-After", hint.to_string()),
        None => response,
    }
}

fn collect_metrics(shared: &Arc<Shared>) -> ClusterMetrics {
    let c = &shared.counters;
    ClusterMetrics {
        workers_alive: shared.registry.alive().len() as u64,
        workers_dead_total: c.workers_dead.load(Ordering::Relaxed),
        jobs_submitted: c.jobs_submitted.load(Ordering::Relaxed),
        jobs_completed: c.jobs_completed.load(Ordering::Relaxed),
        jobs_failed: c.jobs_failed.load(Ordering::Relaxed),
        jobs_cancelled: c.jobs_cancelled.load(Ordering::Relaxed),
        jobs_deadline_exceeded: c.jobs_deadline_exceeded.load(Ordering::Relaxed),
        idempotent_hits: c.idempotent_hits.load(Ordering::Relaxed),
        shards_dispatched_total: c.shards_dispatched.load(Ordering::Relaxed),
        shards_reassigned_total: c.shards_reassigned.load(Ordering::Relaxed),
        shards_completed_total: c.shards_completed.load(Ordering::Relaxed),
        estimates_forwarded_total: c.estimates_forwarded.load(Ordering::Relaxed),
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        workers: Vec::new(),
        rollups: Vec::new(),
    }
}

/// A short-fused single-attempt client for the federation scrape and
/// trace fan-out.
fn scrape_client(addr: &str) -> Client {
    Client::new(addr.to_string()).with_timeout(SCRAPE_TIMEOUT)
}

/// Min/max/sum over one scalar's per-worker values; `None` when no
/// worker answered.
fn rollup(name: &str, values: &[f64]) -> Option<MetricRollup> {
    let first = values.first()?;
    let (mut min, mut max, mut sum) = (*first, *first, 0.0);
    for &value in values {
        min = min.min(value);
        max = max.max(value);
        sum += value;
    }
    Some(MetricRollup {
        name: name.to_string(),
        min,
        max,
        sum,
    })
}

/// The federated rollup set: a few serve scalars an operator compares
/// across workers at a glance.
fn rollups_over(views: &[WorkerMetricsView]) -> Vec<MetricRollup> {
    let scalars: [(&str, fn(&Metrics) -> f64); 6] = [
        ("queue_depth", |m| m.queue_depth as f64),
        ("in_flight", |m| m.in_flight as f64),
        ("submitted", |m| m.submitted as f64),
        ("completed", |m| m.completed as f64),
        ("cache_entries", |m| m.cache_entries as f64),
        ("cache_hits", |m| m.cache_hits as f64),
    ];
    scalars
        .iter()
        .filter_map(|(name, get)| {
            let values: Vec<f64> = views.iter().map(|view| get(&view.metrics)).collect();
            rollup(name, &values)
        })
        .collect()
}

/// Scrapes every live worker's JSON `/metrics` and folds the responses
/// into the coordinator's own document. Best-effort: a worker that does
/// not answer within [`SCRAPE_TIMEOUT`] is simply absent.
fn federated_metrics(shared: &Arc<Shared>) -> ClusterMetrics {
    let mut metrics = collect_metrics(shared);
    let mut views = Vec::new();
    for (name, addr) in shared.registry.alive() {
        if let Ok(worker_metrics) = scrape_client(&addr).metrics() {
            views.push(WorkerMetricsView {
                worker: name,
                metrics: worker_metrics,
            });
        }
    }
    metrics.rollups = rollups_over(&views);
    metrics.workers = views;
    metrics
}

/// Re-labels one worker's Prometheus exposition with
/// `worker="<name>"` on every sample, deduplicating `# HELP`/`# TYPE`
/// lines across workers (the first exposition to mention a metric
/// wins). The label value goes through [`escape_label_value`], so a
/// hostile worker name cannot break the exposition syntax.
fn relabel_exposition(text: &str, worker: &str, seen: &mut HashSet<String>) -> String {
    let label = format!("worker=\"{}\"", escape_label_value(worker));
    let mut out = String::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            let meta = line
                .strip_prefix("# HELP ")
                .map(|rest| ("HELP", rest))
                .or_else(|| line.strip_prefix("# TYPE ").map(|rest| ("TYPE", rest)));
            if let Some((kind, rest)) = meta {
                let name = rest.split_whitespace().next().unwrap_or_default();
                if seen.insert(format!("{kind} {name}")) {
                    out.push_str(line);
                    out.push('\n');
                }
            }
            continue;
        }
        if let Some(brace) = line.find('{') {
            out.push_str(&line[..=brace]);
            out.push_str(&label);
            out.push(',');
            out.push_str(&line[brace + 1..]);
        } else if let Some(space) = line.find(' ') {
            out.push_str(&line[..space]);
            out.push('{');
            out.push_str(&label);
            out.push('}');
            out.push_str(&line[space..]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// The cluster's own exposition followed by every live worker's,
/// re-labelled per worker (`ecripse_serve_*{worker="..."}`).
fn render_federated_prometheus(shared: &Arc<Shared>, metrics: &ClusterMetrics) -> String {
    let mut out = render_prometheus(metrics);
    let mut seen = HashSet::new();
    for (name, addr) in shared.registry.alive() {
        if let Ok(text) = scrape_client(&addr).metrics_prometheus() {
            out.push_str(&relabel_exposition(&text, &name, &mut seen));
        }
    }
    out
}

/// `GET /v1/jobs/{id}/trace`: the coordinator's own spans merged with a
/// best-effort fan-out to every worker that held one of the job's
/// shards, sorted into one waterfall. Workers that no longer remember
/// the shard (ring eviction, restart without the span buffer) are
/// simply absent — the coordinator spans still frame the job.
fn trace_document(shared: &Arc<Shared>, id: u64) -> Response {
    let (trace, mut spans, sources) = {
        let state = shared.state.lock();
        let Some(job) = state.jobs.get(&id) else {
            return error_response(404, "unknown_job", format!("no job {id}"));
        };
        (job.trace, job.spans.clone(), job.shard_sources.clone())
    };
    let trace_id = fmt_hex_id(trace.trace_id);
    for (addr, remote_id) in sources {
        let Ok(remote) = scrape_client(&addr).trace(remote_id) else {
            continue;
        };
        if remote.trace_id != trace_id {
            continue;
        }
        for span in remote.spans {
            let duplicate = spans
                .iter()
                .any(|existing| existing.span_id == span.span_id && existing.node == span.node);
            if !duplicate {
                spans.push(span);
            }
        }
    }
    spans.sort_by(|a, b| {
        a.start_ts
            .partial_cmp(&b.start_ts)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.span_id.cmp(&b.span_id))
    });
    Response::json(
        200,
        json_body(&JobTrace {
            job_id: id,
            trace_id,
            spans,
        }),
    )
}

/// One `# HELP`/`# TYPE`/sample triple of Prometheus exposition.
fn prom_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

fn render_prometheus(m: &ClusterMetrics) -> String {
    let mut out = String::new();
    let gauges: [(&str, &str, f64); 2] = [
        (
            "workers_alive",
            "Workers currently alive",
            m.workers_alive as f64,
        ),
        (
            "uptime_seconds",
            "Seconds since the coordinator bound its socket",
            m.uptime_seconds,
        ),
    ];
    for (name, help, value) in gauges {
        prom_scalar(
            &mut out,
            &format!("ecripse_cluster_{name}"),
            "gauge",
            help,
            value,
        );
    }
    let counters: [(&str, &str, u64); 11] = [
        (
            "workers_dead_total",
            "Workers declared dead by the heartbeat reaper",
            m.workers_dead_total,
        ),
        (
            "jobs_submitted_total",
            "Jobs ever accepted",
            m.jobs_submitted,
        ),
        (
            "jobs_completed_total",
            "Jobs whose merged result completed",
            m.jobs_completed,
        ),
        (
            "jobs_failed_total",
            "Jobs that ended in failure",
            m.jobs_failed,
        ),
        ("jobs_cancelled_total", "Jobs cancelled", m.jobs_cancelled),
        (
            "jobs_deadline_exceeded_total",
            "Jobs stopped by their wall-clock deadline",
            m.jobs_deadline_exceeded,
        ),
        (
            "idempotent_hits_total",
            "Submissions deduplicated by idempotency key",
            m.idempotent_hits,
        ),
        (
            "shards_dispatched_total",
            "Sweep shards dispatched to workers (re-dispatches included)",
            m.shards_dispatched_total,
        ),
        (
            "shards_reassigned_total",
            "Shards reassigned off a dead worker",
            m.shards_reassigned_total,
        ),
        (
            "shards_completed_total",
            "Shards whose results were merged",
            m.shards_completed_total,
        ),
        (
            "estimates_forwarded_total",
            "Estimate jobs forwarded whole to one worker",
            m.estimates_forwarded_total,
        ),
    ];
    for (name, help, value) in counters {
        prom_scalar(
            &mut out,
            &format!("ecripse_cluster_{name}"),
            "counter",
            help,
            value as f64,
        );
    }
    out
}

/// `GET /metrics` federates on demand: the scrape happens per HTTP
/// request, so the in-process [`Coordinator::metrics`] snapshot stays
/// cheap and lock-free of worker sockets.
fn metrics_response(shared: &Arc<Shared>, request: &Request) -> Response {
    let wants_prometheus = request
        .header("accept")
        .is_some_and(|accept| accept.contains("text/plain"));
    if wants_prometheus {
        let metrics = collect_metrics(shared);
        Response::text(200, render_federated_prometheus(shared, &metrics))
    } else {
        Response::json(200, json_body(&federated_metrics(shared)))
    }
}

fn job_status(state: &State, id: u64) -> Option<JobStatus> {
    let job = state.jobs.get(&id)?;
    Some(JobStatus {
        id,
        scenario: job.request.scenario,
        state: job.state,
        queue_position: None,
        error: job.error.clone(),
        progress: None,
        trace_id: Some(fmt_hex_id(job.trace.trace_id)),
    })
}

fn status(shared: &Arc<Shared>, id: u64) -> Response {
    match job_status(&shared.state.lock(), id) {
        Some(status) => Response::json(200, json_body(&status)),
        None => error_response(404, "unknown_job", format!("no job {id}")),
    }
}

fn report(shared: &Arc<Shared>, id: u64) -> Response {
    let state = shared.state.lock();
    let Some(job) = state.jobs.get(&id) else {
        return error_response(404, "unknown_job", format!("no job {id}"));
    };
    if !job.state.is_terminal() {
        let current = job.state;
        return error_response(
            409,
            "not_ready",
            format!("job {id} is {current}; no report yet"),
        );
    }
    let report = job.report.clone().unwrap_or_else(|| JobReport {
        id,
        scenario: job.request.scenario,
        state: job.state,
        error: job.error.clone(),
        estimate: None,
        sweep: None,
        trace_id: Some(fmt_hex_id(job.trace.trace_id)),
    });
    Response::json(200, json_body(&report))
}

fn cancel(shared: &Arc<Shared>, id: u64) -> Response {
    let state = shared.state.lock();
    let Some(job) = state.jobs.get(&id) else {
        return error_response(404, "unknown_job", format!("no job {id}"));
    };
    if job.state.is_terminal() {
        let current = job.state;
        return error_response(409, "conflict", format!("job {id} is already {current}"));
    }
    // Cooperative, like a running job on a single server: the
    // dispatcher observes the flag, cancels the worker-side shards and
    // drains the job to `cancelled`.
    job.stop.store(true, Ordering::SeqCst);
    let status = job_status(&state, id);
    Response::json(202, json_body(&status))
}

fn submit(shared: &Arc<Shared>, http_request: &Request) -> Response {
    let mut request: SubmitRequest = match parse_body(&http_request.body) {
        Ok(request) => request,
        Err(response) => return response,
    };
    // A `traceparent` header outranks the body's `trace` field, exactly
    // as on a single server: the outermost caller owns the trace.
    if let Some(header) = http_request
        .header("traceparent")
        .and_then(TraceContext::parse_traceparent)
    {
        request.trace = Some(header);
    }
    if request.protocol != PROTOCOL_VERSION {
        return error_response(
            400,
            "protocol_mismatch",
            format!(
                "client speaks protocol {}, coordinator speaks {PROTOCOL_VERSION}",
                request.protocol
            ),
        );
    }
    if let Err(reason) = request.job.validate() {
        return error_response(400, "invalid_job", reason);
    }
    if request.job.alpha_indices.is_some() {
        // Shards are the coordinator's *output*, addressed to workers;
        // accepting one as input would double-offset the merge.
        return error_response(
            400,
            "invalid_job",
            "pre-sharded sweeps (`alpha_indices`) go to workers, not the coordinator",
        );
    }
    if request.deadline_ms == Some(0) {
        return error_response(
            400,
            "invalid_deadline",
            "deadline_ms must be positive (omit it for no deadline)",
        );
    }
    if request.idempotency_key.as_deref() == Some("") {
        return error_response(
            400,
            "invalid_idempotency_key",
            "idempotency_key must be non-empty (omit it to disable deduplication)",
        );
    }
    let mut state = shared.state.lock();
    if let Some(key) = &request.idempotency_key {
        if let Some(&existing) = state.idempotency.get(key) {
            shared
                .counters
                .idempotent_hits
                .fetch_add(1, Ordering::Relaxed);
            let status = job_status(&state, existing);
            return Response::json(200, json_body(&status));
        }
    }
    if shared.stop_accepting.load(Ordering::SeqCst) {
        return error_response(
            503,
            "shutting_down",
            "coordinator is draining; resubmit elsewhere",
        );
    }
    if state.active >= shared.config.max_inflight_jobs {
        let mut body = ApiError::new(
            "queue_full",
            "coordinator is at its in-flight job bound; retry later",
        );
        body.retry_after_seconds = Some(1);
        return Response::json(429, json_body(&body)).with_header("retry-after", "1".to_string());
    }
    let id = state.next_id;
    state.next_id += 1;
    // The wire scenario is authoritative, exactly as on a single
    // server: stamp it into the config the workers will run.
    request.config.scenario = request.scenario;
    let trace = request
        .trace
        .unwrap_or_else(|| TraceContext::for_job(id, request.config.seed));
    request.trace = Some(trace);
    let stop = Arc::new(AtomicBool::new(false));
    state.jobs.insert(
        id,
        ClusterJob {
            request: request.clone(),
            state: JobState::Queued,
            error: None,
            report: None,
            accepted_at: Instant::now(),
            stop,
            trace,
            spans: Vec::new(),
            shard_sources: Vec::new(),
        },
    );
    if let Some(key) = &request.idempotency_key {
        state.idempotency.insert(key.clone(), id);
    }
    state.active += 1;
    let dispatcher = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || dispatch_job(&shared, id))
    };
    state.dispatchers.push(dispatcher);
    drop(state);
    shared
        .counters
        .jobs_submitted
        .fetch_add(1, Ordering::Relaxed);
    Response::json(
        202,
        json_body(&JobStatus {
            id,
            scenario: request.scenario,
            state: JobState::Queued,
            queue_position: None,
            error: None,
            progress: None,
            trace_id: Some(fmt_hex_id(trace.trace_id)),
        }),
    )
}

/// How a dispatched job ended without a merged result.
enum DispatchEnd {
    /// The coordinator-side cancel flag was raised.
    Cancelled,
    /// The job's wall-clock budget elapsed (coordinator- or
    /// worker-side).
    DeadlineExceeded(Option<String>),
    /// Anything unrecoverable.
    Failed(String),
}

/// One sweep shard's lifecycle inside the dispatcher.
struct ShardSlot {
    /// Global grid indices (strictly increasing).
    indices: Vec<u64>,
    /// The duty ratios at those indices.
    alphas: Vec<f64>,
    /// Idempotency key, stable across re-dispatches.
    key: String,
    /// The worker currently assigned, `(name, addr)`.
    worker: Option<(String, String)>,
    /// The shard's job id on that worker.
    remote_id: Option<u64>,
    /// The completed shard, once merged-ready.
    done: Option<SweepShard>,
    /// The shard span's deterministic id (child of the job root span).
    span_id: u64,
    /// First successful dispatch; the shard span opens here.
    started_at: Option<Instant>,
    /// Completion observed by the poller; the shard span closes here.
    finished_at: Option<Instant>,
    /// Every `(worker addr, remote id)` the shard was dispatched to —
    /// kept across reassignment so the trace fan-out can query each.
    sources: Vec<(String, u64)>,
}

/// The coordinator-side tracing state one dispatch accumulates: the
/// job's context, its root span id, and the spans/sources to publish
/// into the [`ClusterJob`] when the dispatch ends.
struct JobTraceState {
    trace: TraceContext,
    root_span_id: u64,
    spans: Vec<SpanRecord>,
    sources: Vec<(String, u64)>,
}

impl JobTraceState {
    fn new(trace: TraceContext) -> Self {
        Self {
            trace,
            // Mirrors `SpanCollector`'s root-span derivation on the
            // workers: node-qualified so coordinator and worker roots
            // never collide.
            root_span_id: trace.span_id("coordinator/job"),
            spans: Vec::new(),
            sources: Vec::new(),
        }
    }

    /// The context a child span of the job root would be created under.
    fn root_context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace.trace_id,
            parent_span_id: self.root_span_id,
        }
    }
}

/// Seconds-since-epoch for a coordinator instant, derived from the
/// bind-time wall anchor (one monotonic clock per coordinator).
fn wall_ts(shared: &Shared, at: Instant) -> f64 {
    shared.anchor_unix_s
        + at.checked_duration_since(shared.started)
            .map(|d| d.as_secs_f64())
            .unwrap_or_default()
}

/// Folds every dispatched shard's timing into coordinator-side spans
/// and collects the `(addr, remote id)` pairs the trace fan-out needs.
fn record_shard_slots(shared: &Shared, tracing: &mut JobTraceState, slots: &[ShardSlot]) {
    for slot in slots {
        for source in &slot.sources {
            if !tracing.sources.contains(source) {
                tracing.sources.push(source.clone());
            }
        }
        let Some(started) = slot.started_at else {
            continue;
        };
        let finished = slot.finished_at.unwrap_or_else(Instant::now);
        tracing.spans.push(SpanRecord {
            trace_id: fmt_hex_id(tracing.trace.trace_id),
            span_id: fmt_hex_id(slot.span_id),
            parent_span_id: fmt_hex_id(tracing.root_span_id),
            name: format!(
                "shard-{}",
                slot.indices.first().copied().unwrap_or_default()
            ),
            node: "coordinator".to_string(),
            start_ts: wall_ts(shared, started),
            duration_s: finished
                .checked_duration_since(started)
                .map(|d| d.as_secs_f64())
                .unwrap_or_default(),
        });
    }
}

fn dispatch_job(shared: &Arc<Shared>, id: u64) {
    let (request, stop, accepted_at, trace) = {
        let mut state = shared.state.lock();
        let Some(job) = state.jobs.get_mut(&id) else {
            return;
        };
        job.state = JobState::Running;
        (
            job.request.clone(),
            Arc::clone(&job.stop),
            job.accepted_at,
            job.trace,
        )
    };
    let deadline = request
        .deadline_ms
        .map(|ms| accepted_at + Duration::from_millis(ms));
    let mut tracing = JobTraceState::new(trace);
    let dispatch_started = Instant::now();
    let outcome = match request.job.kind {
        JobKind::Sweep => run_sweep(shared, id, &request, &stop, deadline, &mut tracing),
        JobKind::Estimate => forward_estimate(shared, id, &request, &stop, deadline, &mut tracing),
    };
    // The job root span covers the whole dispatch — shard spans nest
    // inside it, and the workers' own job spans nest inside those.
    tracing.spans.insert(
        0,
        SpanRecord {
            trace_id: fmt_hex_id(trace.trace_id),
            span_id: fmt_hex_id(tracing.root_span_id),
            parent_span_id: fmt_hex_id(trace.parent_span_id),
            name: "job".to_string(),
            node: "coordinator".to_string(),
            start_ts: wall_ts(shared, dispatch_started),
            duration_s: dispatch_started.elapsed().as_secs_f64(),
        },
    );
    let (state_out, error, report) = match outcome {
        Ok(report) => (JobState::Completed, None, Some(report)),
        Err(DispatchEnd::Cancelled) => (
            JobState::Cancelled,
            Some("cancelled while running".to_string()),
            None,
        ),
        Err(DispatchEnd::DeadlineExceeded(error)) => (
            JobState::DeadlineExceeded,
            Some(error.unwrap_or_else(|| {
                format!(
                    "deadline of {}ms exceeded",
                    request.deadline_ms.unwrap_or(0)
                )
            })),
            None,
        ),
        Err(DispatchEnd::Failed(message)) => (JobState::Failed, Some(message), None),
    };
    let counter = match state_out {
        JobState::Completed => &shared.counters.jobs_completed,
        JobState::Cancelled => &shared.counters.jobs_cancelled,
        JobState::DeadlineExceeded => &shared.counters.jobs_deadline_exceeded,
        _ => &shared.counters.jobs_failed,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let mut state = shared.state.lock();
    state.active = state.active.saturating_sub(1);
    if let Some(job) = state.jobs.get_mut(&id) {
        job.state = state_out;
        job.error = error;
        job.report = report;
        job.spans = tracing.spans;
        job.shard_sources = tracing.sources;
    }
}

/// A short-fused retrying client for worker submissions (submit retries
/// are safe: every dispatch carries an idempotency key).
fn submit_client(shared: &Shared, addr: &str) -> Client {
    Client::new(addr.to_string())
        .with_timeout(shared.config.worker_timeout)
        .with_retry(BackoffPolicy {
            max_attempts: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(500),
        })
}

/// A single-attempt client for status polls — failures must surface
/// immediately so dead-worker detection can react.
fn poll_client(shared: &Shared, addr: &str) -> Client {
    Client::new(addr.to_string()).with_timeout(shared.config.worker_timeout)
}

/// The ring over currently-live workers, or `None` when the cluster is
/// empty.
fn live_ring(shared: &Shared) -> Option<(HashRing, HashMap<String, String>)> {
    let alive = shared.registry.alive();
    if alive.is_empty() {
        return None;
    }
    let names: Vec<String> = alive.iter().map(|(name, _)| name.clone()).collect();
    let addrs: HashMap<String, String> = alive.into_iter().collect();
    Some((HashRing::new(&names), addrs))
}

/// Common per-round bookkeeping: honours cancel, coordinator deadline
/// and drain.
fn check_interrupts(
    shared: &Shared,
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<(), DispatchEnd> {
    if stop.load(Ordering::SeqCst) {
        return Err(DispatchEnd::Cancelled);
    }
    if deadline.is_some_and(|deadline| deadline <= Instant::now()) {
        return Err(DispatchEnd::DeadlineExceeded(None));
    }
    if shared.draining.load(Ordering::SeqCst) && shared.registry.alive().is_empty() {
        return Err(DispatchEnd::Failed(
            "coordinator draining with no live workers".to_string(),
        ));
    }
    Ok(())
}

/// Best-effort cancel of every still-assigned worker-side shard.
fn cancel_remotes(shared: &Shared, slots: &[ShardSlot]) {
    for slot in slots {
        if slot.done.is_some() {
            continue;
        }
        if let (Some((_, addr)), Some(remote_id)) = (&slot.worker, slot.remote_id) {
            let _ = poll_client(shared, addr).cancel(remote_id);
        }
    }
}

fn run_sweep(
    shared: &Arc<Shared>,
    id: u64,
    request: &SubmitRequest,
    stop: &AtomicBool,
    deadline: Option<Instant>,
    tracing: &mut JobTraceState,
) -> Result<JobReport, DispatchEnd> {
    let alphas = request.job.alphas.clone().unwrap_or_default();
    let total = alphas.len();
    let mut slots = plan_shards(shared, id, &alphas, stop, deadline)?;
    let child_context = tracing.root_context();
    for slot in &mut slots {
        let first = slot.indices.first().copied().unwrap_or_default();
        slot.span_id = child_context.span_id(&format!("shard-{first}"));
    }
    let looped = sweep_loop(shared, id, request, stop, deadline, tracing, &mut slots);
    // Win or lose, the dispatched shards become coordinator spans and
    // trace fan-out sources.
    record_shard_slots(shared, tracing, &slots);
    looped?;
    let shards: Vec<SweepShard> = slots.into_iter().filter_map(|slot| slot.done).collect();
    let (result, reports) = merge_sweep_shards(total, &shards)
        .map_err(|e| DispatchEnd::Failed(format!("shard merge failed: {e}")))?;
    Ok(JobReport {
        id,
        scenario: request.scenario,
        state: JobState::Completed,
        error: None,
        estimate: None,
        sweep: Some(SweepOutcome {
            p_fail_rdf_only: result.p_fail_rdf_only,
            rdf_only_ci95: result.rdf_only_ci95,
            init_simulations: result.init_simulations,
            total_simulations: result.total_simulations,
            points: result.points,
            reports,
        }),
        trace_id: Some(fmt_hex_id(tracing.trace.trace_id)),
    })
}

/// The shard dispatch/poll loop, extracted from [`run_sweep`] so the
/// caller can flush shard spans on *every* exit path.
fn sweep_loop(
    shared: &Arc<Shared>,
    id: u64,
    request: &SubmitRequest,
    stop: &AtomicBool,
    deadline: Option<Instant>,
    tracing: &JobTraceState,
    slots: &mut [ShardSlot],
) -> Result<(), DispatchEnd> {
    loop {
        if let Err(end) = check_interrupts(shared, stop, deadline) {
            cancel_remotes(shared, slots);
            return Err(end);
        }
        let ring = live_ring(shared);
        let mut all_done = true;
        for slot in slots.iter_mut() {
            if slot.done.is_some() {
                continue;
            }
            all_done = false;
            // A reaped owner invalidates the assignment even when the
            // socket still answers (a hung process can hold its port).
            if let Some((name, _)) = &slot.worker {
                if !shared.registry.is_alive(name) {
                    slot.worker = None;
                    slot.remote_id = None;
                    shared
                        .counters
                        .shards_reassigned
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            match (slot.worker.clone(), slot.remote_id) {
                (None, _) => {
                    let Some((ring, addrs)) = &ring else {
                        continue; // no live workers; wait for one
                    };
                    let Some(owner) = ring.owner(&slot.key) else {
                        continue;
                    };
                    let Some(addr) = addrs.get(owner) else {
                        continue;
                    };
                    let mut shard_request = shard_submit_request(request, slot);
                    // The shard runs under the coordinator's shard span:
                    // the worker's job span parents to it, chaining
                    // client → coordinator → worker in one trace.
                    shard_request.trace = Some(TraceContext {
                        trace_id: tracing.trace.trace_id,
                        parent_span_id: slot.span_id,
                    });
                    match submit_client(shared, addr).submit(&shard_request) {
                        Ok(status) => {
                            slot.worker = Some((owner.to_string(), addr.clone()));
                            slot.remote_id = Some(status.id);
                            if slot.started_at.is_none() {
                                slot.started_at = Some(Instant::now());
                            }
                            let source = (addr.clone(), status.id);
                            if !slot.sources.contains(&source) {
                                slot.sources.push(source);
                            }
                            shared
                                .counters
                                .shards_dispatched
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        // The worker may have just died or be saturated;
                        // the next round re-picks an owner.
                        Err(_) => continue,
                    }
                }
                (Some((name, addr)), Some(remote_id)) => {
                    match poll_shard(shared, &addr, remote_id, slot)? {
                        ShardPoll::Pending => {}
                        ShardPoll::Done => {
                            if slot.finished_at.is_none() {
                                slot.finished_at = Some(Instant::now());
                            }
                        }
                        ShardPoll::Lost => {
                            let lost_name = name.clone();
                            slot.worker = None;
                            slot.remote_id = None;
                            shared
                                .counters
                                .shards_reassigned
                                .fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "ecripse-cluster: job {id}: shard {} lost on worker {lost_name}; reassigning",
                                slot.key
                            );
                        }
                    }
                }
                (Some(_), None) => unreachable!("assigned shard without a remote id"),
            }
        }
        if all_done {
            return Ok(());
        }
        std::thread::sleep(shared.config.poll_interval);
    }
}

/// Builds the shard plan: every point's key hashes to an owner on the
/// ring over the workers live *at plan time*, and each owner's points
/// are chunked into runs of at most `shard_points`. Blocks (politely)
/// until at least one worker is alive.
fn plan_shards(
    shared: &Arc<Shared>,
    id: u64,
    alphas: &[f64],
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<Vec<ShardSlot>, DispatchEnd> {
    let (ring, _) = loop {
        check_interrupts(shared, stop, deadline)?;
        if let Some(live) = live_ring(shared) {
            break live;
        }
        std::thread::sleep(shared.config.poll_interval);
    };
    let mut by_owner: HashMap<String, Vec<usize>> = HashMap::new();
    for k in 0..alphas.len() {
        let owner = ring
            .owner(&format!("job-{id}/point-{k}"))
            .unwrap_or_default()
            .to_string();
        by_owner.entry(owner).or_default().push(k);
    }
    // Deterministic slot order: owners sorted by name, each owner's
    // points already ascending.
    let mut owners: Vec<String> = by_owner.keys().cloned().collect();
    owners.sort_unstable();
    let chunk = shared.config.shard_points.max(1);
    let mut slots = Vec::new();
    for owner in owners {
        let points = &by_owner[&owner];
        for run in points.chunks(chunk) {
            let indices: Vec<u64> = run.iter().map(|&k| k as u64).collect();
            let shard_alphas: Vec<f64> = run.iter().map(|&k| alphas[k]).collect();
            // The key is derived from the shard's first global index —
            // stable across re-dispatches, unique within the job.
            let key = format!("cluster/job-{id}/shard-{}", indices[0]);
            slots.push(ShardSlot {
                indices,
                alphas: shard_alphas,
                key,
                worker: None,
                remote_id: None,
                done: None,
                span_id: 0,
                started_at: None,
                finished_at: None,
                sources: Vec::new(),
            });
        }
    }
    Ok(slots)
}

/// The serve submission one shard ships as: the job's config and
/// scenario verbatim (bit-identity), the shard's alphas and global
/// indices, the deadline passed through, the stable idempotency key.
fn shard_submit_request(request: &SubmitRequest, slot: &ShardSlot) -> SubmitRequest {
    let mut shard = SubmitRequest::with_scenario(
        request.scenario,
        request.config,
        JobSpec::sweep_shard(request.job.vdd, slot.alphas.clone(), slot.indices.clone()),
    );
    shard.deadline_ms = request.deadline_ms;
    shard.idempotency_key = Some(slot.key.clone());
    shard
}

/// What one status poll of a dispatched shard concluded.
enum ShardPoll {
    /// Still queued or running.
    Pending,
    /// Completed; `slot.done` is populated.
    Done,
    /// The worker lost it (crash without journal, restart, drain):
    /// re-dispatch.
    Lost,
}

fn poll_shard(
    shared: &Shared,
    addr: &str,
    remote_id: u64,
    slot: &mut ShardSlot,
) -> Result<ShardPoll, DispatchEnd> {
    let client = poll_client(shared, addr);
    let status = match client.status(remote_id) {
        Ok(status) => status,
        // A dead worker shows up as refused connections *and* a reaped
        // registry entry; the aliveness check at the top of the round
        // owns that transition. A transient error alone is not a loss.
        Err(ClientError::Io(_)) => return Ok(ShardPoll::Pending),
        // The worker answers but no longer knows the job: it restarted
        // without a journal (or with an empty one). Re-dispatch.
        Err(ClientError::Api { status: 404, .. }) => return Ok(ShardPoll::Lost),
        Err(_) => return Ok(ShardPoll::Pending),
    };
    match status.state {
        JobState::Completed => {
            let report = match client.report(remote_id) {
                Ok(report) => report,
                Err(ClientError::Io(_)) => return Ok(ShardPoll::Pending),
                Err(e) => {
                    return Err(DispatchEnd::Failed(format!(
                        "shard {} completed but its report is unreadable: {e}",
                        slot.key
                    )))
                }
            };
            let Some(outcome) = report.sweep else {
                return Err(DispatchEnd::Failed(format!(
                    "shard {} completed without a sweep outcome",
                    slot.key
                )));
            };
            slot.done = Some(SweepShard {
                indices: slot.indices.clone(),
                result: ecripse_core::sweep::SweepResult {
                    points: outcome.points,
                    p_fail_rdf_only: outcome.p_fail_rdf_only,
                    rdf_only_ci95: outcome.rdf_only_ci95,
                    init_simulations: outcome.init_simulations,
                    total_simulations: outcome.total_simulations,
                },
                reports: outcome.reports,
            });
            shared
                .counters
                .shards_completed
                .fetch_add(1, Ordering::Relaxed);
            Ok(ShardPoll::Done)
        }
        JobState::Failed => Err(DispatchEnd::Failed(format!(
            "shard {} failed on its worker: {}",
            slot.key,
            status.error.unwrap_or_else(|| "no error recorded".into())
        ))),
        JobState::DeadlineExceeded => Err(DispatchEnd::DeadlineExceeded(status.error)),
        // Cancelled directly on the worker, behind the coordinator's
        // back: an operator DELETE, or a spool-less worker draining its
        // queue at shutdown. The coordinator itself only cancels remotes
        // after `check_interrupts` has already ended the dispatch loop,
        // so from here a cancellation just means the shard will never
        // finish *there* — the work itself is still wanted. Re-dispatch,
        // exactly like `persisted`.
        JobState::Cancelled => Ok(ShardPoll::Lost),
        // The worker drained gracefully and persisted the shard as a
        // checkpoint; a restart resumes it under the same idempotency
        // key, or a survivor recomputes it. Either way: re-dispatch.
        JobState::Persisted => Ok(ShardPoll::Lost),
        JobState::Queued | JobState::Running => Ok(ShardPoll::Pending),
    }
}

fn forward_estimate(
    shared: &Arc<Shared>,
    id: u64,
    request: &SubmitRequest,
    stop: &AtomicBool,
    deadline: Option<Instant>,
    tracing: &mut JobTraceState,
) -> Result<JobReport, DispatchEnd> {
    let key = format!("cluster/job-{id}/estimate");
    let estimate_span_id = tracing.root_context().span_id("estimate");
    let mut estimate_started: Option<Instant> = None;
    let mut assignment: Option<(String, String, u64)> = None;
    loop {
        if let Err(end) = check_interrupts(shared, stop, deadline) {
            if let Some((_, addr, remote_id)) = &assignment {
                let _ = poll_client(shared, addr).cancel(*remote_id);
            }
            return Err(end);
        }
        if let Some((name, _, _)) = &assignment {
            if !shared.registry.is_alive(name) {
                assignment = None;
                shared
                    .counters
                    .shards_reassigned
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        match &assignment {
            None => {
                let Some((ring, addrs)) = live_ring(shared) else {
                    std::thread::sleep(shared.config.poll_interval);
                    continue;
                };
                let Some(owner) = ring.owner(&key) else {
                    continue;
                };
                let Some(addr) = addrs.get(owner) else {
                    continue;
                };
                let mut forwarded = request.clone();
                forwarded.idempotency_key = Some(key.clone());
                forwarded.trace = Some(TraceContext {
                    trace_id: tracing.trace.trace_id,
                    parent_span_id: estimate_span_id,
                });
                if let Ok(status) = submit_client(shared, addr).submit(&forwarded) {
                    assignment = Some((owner.to_string(), addr.clone(), status.id));
                    if estimate_started.is_none() {
                        estimate_started = Some(Instant::now());
                    }
                    let source = (addr.clone(), status.id);
                    if !tracing.sources.contains(&source) {
                        tracing.sources.push(source);
                    }
                    shared
                        .counters
                        .estimates_forwarded
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Some((_, addr, remote_id)) => {
                let client = poll_client(shared, addr);
                match client.status(*remote_id) {
                    Ok(status) if status.state == JobState::Completed => {
                        let report = match client.report(*remote_id) {
                            Ok(report) => report,
                            Err(_) => {
                                std::thread::sleep(shared.config.poll_interval);
                                continue;
                            }
                        };
                        if let Some(started) = estimate_started {
                            tracing.spans.push(SpanRecord {
                                trace_id: fmt_hex_id(tracing.trace.trace_id),
                                span_id: fmt_hex_id(estimate_span_id),
                                parent_span_id: fmt_hex_id(tracing.root_span_id),
                                name: "estimate".to_string(),
                                node: "coordinator".to_string(),
                                start_ts: wall_ts(shared, started),
                                duration_s: started.elapsed().as_secs_f64(),
                            });
                        }
                        return Ok(JobReport {
                            id,
                            scenario: request.scenario,
                            state: JobState::Completed,
                            error: None,
                            estimate: report.estimate,
                            sweep: None,
                            trace_id: Some(fmt_hex_id(tracing.trace.trace_id)),
                        });
                    }
                    Ok(status) if status.state == JobState::Failed => {
                        return Err(DispatchEnd::Failed(
                            status
                                .error
                                .unwrap_or_else(|| "estimate failed on its worker".into()),
                        ));
                    }
                    Ok(status) if status.state == JobState::DeadlineExceeded => {
                        return Err(DispatchEnd::DeadlineExceeded(status.error));
                    }
                    Ok(status) if status.state.is_terminal() => {
                        // Cancelled or persisted behind our back.
                        assignment = None;
                        shared
                            .counters
                            .shards_reassigned
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {}
                    Err(ClientError::Api { status: 404, .. }) => {
                        assignment = None;
                        shared
                            .counters
                            .shards_reassigned
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
            }
        }
        std::thread::sleep(shared.config.poll_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_injects_worker_label_into_plain_and_labelled_samples() {
        let text = "# HELP ecripse_serve_queue_depth Jobs waiting\n\
                    # TYPE ecripse_serve_queue_depth gauge\n\
                    ecripse_serve_queue_depth 3\n\
                    ecripse_serve_scenario_jobs_completed{scenario=\"sram-6t\"} 2\n";
        let mut seen = HashSet::new();
        let out = relabel_exposition(text, "w-a", &mut seen);
        assert!(out.contains("ecripse_serve_queue_depth{worker=\"w-a\"} 3"));
        assert!(out.contains(
            "ecripse_serve_scenario_jobs_completed{worker=\"w-a\",scenario=\"sram-6t\"} 2"
        ));
        assert!(out.contains("# HELP ecripse_serve_queue_depth"));
        // A second worker's exposition repeats the metadata; it must be
        // deduplicated but the samples kept.
        let out_b = relabel_exposition(text, "w-b", &mut seen);
        assert!(!out_b.contains("# HELP"));
        assert!(!out_b.contains("# TYPE"));
        assert!(out_b.contains("ecripse_serve_queue_depth{worker=\"w-b\"} 3"));
    }

    #[test]
    fn relabel_escapes_hostile_worker_names() {
        let text = "# TYPE m gauge\nm 1\n";
        let mut seen = HashSet::new();
        let out = relabel_exposition(text, "evil\"name\\with\nnewline", &mut seen);
        assert!(out.contains("m{worker=\"evil\\\"name\\\\with\\nnewline\"} 1"));
        // No raw quote, backslash or newline survives inside the value:
        // each sample line still matches the exposition grammar.
        for line in out.lines().filter(|line| !line.starts_with('#')) {
            let inner = line
                .split_once('{')
                .and_then(|(_, rest)| rest.split_once("\"}"))
                .map(|(inner, _)| inner)
                .unwrap_or_default();
            assert!(!inner.contains('}'), "unescaped brace in {line:?}");
        }
    }

    #[test]
    fn rollup_computes_min_max_sum() {
        let r = rollup("queue_depth", &[3.0, 1.0, 2.0]).expect("non-empty");
        assert_eq!(r.min, 1.0);
        assert_eq!(r.max, 3.0);
        assert_eq!(r.sum, 6.0);
        assert!(rollup("queue_depth", &[]).is_none());
    }

    #[test]
    fn shard_spans_derive_deterministically_from_the_job_trace() {
        let trace = TraceContext::for_job(7, 42);
        let a = JobTraceState::new(trace);
        let b = JobTraceState::new(trace);
        assert_eq!(a.root_span_id, b.root_span_id);
        assert_eq!(
            a.root_context().span_id("shard-0"),
            b.root_context().span_id("shard-0")
        );
        assert_ne!(a.root_context().span_id("shard-0"), a.root_span_id);
    }
}
