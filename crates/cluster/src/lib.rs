//! ECRIPSE *cluster*: many serve processes behind one job protocol.
//!
//! PR 8's serving layer made a single warm process crash-safe; this
//! crate scales it out without changing a byte of the client-facing
//! wire protocol. A **coordinator** fronts a fleet of plain
//! `ecripse-serve` **workers**:
//!
//! * [`ring`] — the consistent-hash ring that partitions a sweep's
//!   duty points over the live workers (and keeps survivor shards in
//!   place when a worker dies);
//! * [`registry`] — the worker liveness registry fed by registrations
//!   and heartbeats, reaped on silence;
//! * [`protocol`] — the cluster-management wire types (register,
//!   heartbeat, worker listing, coordinator metrics); *job* traffic is
//!   exactly [`ecripse_serve::protocol`];
//! * [`join`] — the worker-side register-and-heartbeat loop behind
//!   `ecripse-cli serve --join ADDR`;
//! * [`coordinator`] — the front door: accepts ordinary
//!   [`SubmitRequest`](ecripse_serve::protocol::SubmitRequest)s, shards
//!   sweeps across workers, reassigns shards off dead workers under
//!   stable idempotency keys, and merges shard reports into a result
//!   **bit-identical** to a single-process run (via
//!   [`merge_sweep_shards`](ecripse_core::sweep::merge_sweep_shards)).
//!
//! # Determinism contract
//!
//! Sharding never changes numbers. Every shard carries its points'
//! *global* grid indices, so each worker derives exactly the per-point
//! seeds a single full-grid run would; the merge is keyed by those
//! indices and cross-checks the shared RDF-only reference
//! bit-for-bit. Worker death, reassignment and restarts only move
//! where the work runs — the merged report (timings aside) is the one
//! the single process would have produced.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod coordinator;
pub mod join;
pub mod protocol;
pub mod registry;
pub mod ring;

pub use coordinator::{ClusterConfig, Coordinator};
pub use join::{join, JoinConfig, JoinHandle};
pub use protocol::{
    ClusterMetrics, ClusterWorkers, HeartbeatRequest, MetricRollup, RegisterRequest,
    RegisterResponse, WorkerMetricsView, WorkerView,
};
pub use registry::{WorkerEntry, WorkerRegistry};
pub use ring::{HashRing, DEFAULT_VNODES};
