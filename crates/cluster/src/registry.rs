//! The coordinator's worker registry: who is in the cluster, and who
//! is still breathing.
//!
//! Workers are plain `ecripse-serve` processes that dial in (see
//! [`crate::join`]): they `POST /v1/cluster/register` once and then
//! heartbeat at the interval the coordinator hands back. The registry
//! is the single source of truth for liveness — a worker whose last
//! heartbeat is older than the configured timeout is marked dead by
//! the reaper, its unfinished shards are reassigned to survivors, and
//! a later register from the same name revives it (a restarted worker
//! resumes its journaled shards via the shard idempotency keys, so the
//! revival is safe).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One registered worker.
#[derive(Debug, Clone)]
pub struct WorkerEntry {
    /// Address the coordinator dials for shard submissions.
    pub addr: String,
    /// When the last register or heartbeat arrived.
    pub last_seen: Instant,
    /// `false` once the reaper declared the worker dead.
    pub alive: bool,
}

/// Thread-safe name → worker map.
#[derive(Debug, Default)]
pub struct WorkerRegistry {
    workers: Mutex<HashMap<String, WorkerEntry>>,
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or revives) `name` at `addr`. Returns `true` when the
    /// name was new or previously dead — i.e. the cluster gained
    /// capacity.
    pub fn register(&self, name: &str, addr: &str, now: Instant) -> bool {
        let mut workers = self.workers.lock();
        let revived = workers.get(name).is_none_or(|w| !w.alive);
        workers.insert(
            name.to_string(),
            WorkerEntry {
                addr: addr.to_string(),
                last_seen: now,
                alive: true,
            },
        );
        revived
    }

    /// Refreshes `name`'s heartbeat. Returns `false` for an unknown or
    /// dead worker — the caller answers `404` so the worker re-registers
    /// instead of heartbeating into the void.
    pub fn heartbeat(&self, name: &str, now: Instant) -> bool {
        let mut workers = self.workers.lock();
        match workers.get_mut(name) {
            Some(entry) if entry.alive => {
                entry.last_seen = now;
                true
            }
            _ => false,
        }
    }

    /// Marks every worker whose last heartbeat is older than `timeout`
    /// dead, returning the names that died in this pass.
    pub fn reap(&self, now: Instant, timeout: Duration) -> Vec<String> {
        let mut workers = self.workers.lock();
        let mut died = Vec::new();
        for (name, entry) in workers.iter_mut() {
            if entry.alive && now.duration_since(entry.last_seen) > timeout {
                entry.alive = false;
                died.push(name.clone());
            }
        }
        died.sort_unstable();
        died
    }

    /// `(name, addr)` of every live worker, sorted by name so ring
    /// construction (and therefore shard placement) is deterministic.
    pub fn alive(&self) -> Vec<(String, String)> {
        let workers = self.workers.lock();
        let mut alive: Vec<(String, String)> = workers
            .iter()
            .filter(|(_, entry)| entry.alive)
            .map(|(name, entry)| (name.clone(), entry.addr.clone()))
            .collect();
        alive.sort_unstable();
        alive
    }

    /// Whether `name` is currently registered and alive.
    pub fn is_alive(&self, name: &str) -> bool {
        self.workers.lock().get(name).is_some_and(|w| w.alive)
    }

    /// The dial address of `name`, dead or alive.
    pub fn addr_of(&self, name: &str) -> Option<String> {
        self.workers.lock().get(name).map(|w| w.addr.clone())
    }

    /// Snapshot of every worker (for `GET /v1/cluster/workers`), sorted
    /// by name.
    pub fn snapshot(&self, now: Instant) -> Vec<(String, WorkerEntry, Duration)> {
        let workers = self.workers.lock();
        let mut all: Vec<(String, WorkerEntry, Duration)> = workers
            .iter()
            .map(|(name, entry)| {
                (
                    name.clone(),
                    entry.clone(),
                    now.saturating_duration_since(entry.last_seen),
                )
            })
            .collect();
        all.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_heartbeat_reap_revive() {
        let registry = WorkerRegistry::new();
        let t0 = Instant::now();
        assert!(registry.register("w1", "127.0.0.1:1", t0));
        assert!(
            !registry.register("w1", "127.0.0.1:1", t0),
            "re-register of a live worker adds no capacity"
        );
        assert!(registry.heartbeat("w1", t0 + Duration::from_millis(100)));
        assert!(
            !registry.heartbeat("ghost", t0),
            "unknown workers must re-register"
        );

        // Silence past the timeout kills it; heartbeats stop landing.
        let died = registry.reap(t0 + Duration::from_secs(10), Duration::from_secs(1));
        assert_eq!(died, vec!["w1".to_string()]);
        assert!(!registry.is_alive("w1"));
        assert!(!registry.heartbeat("w1", t0 + Duration::from_secs(10)));
        assert!(registry.alive().is_empty());
        // A second reap pass reports nothing new.
        assert!(registry
            .reap(t0 + Duration::from_secs(20), Duration::from_secs(1))
            .is_empty());

        // Re-register revives (the restarted-worker path).
        assert!(registry.register("w1", "127.0.0.1:2", t0 + Duration::from_secs(11)));
        assert!(registry.is_alive("w1"));
        assert_eq!(registry.addr_of("w1").as_deref(), Some("127.0.0.1:2"));
    }

    #[test]
    fn alive_listing_is_sorted() {
        let registry = WorkerRegistry::new();
        let now = Instant::now();
        registry.register("zeta", "a:1", now);
        registry.register("alpha", "a:2", now);
        registry.register("mid", "a:3", now);
        let names: Vec<String> = registry.alive().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }
}
