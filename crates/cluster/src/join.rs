//! Worker-side membership: register with a coordinator and heartbeat
//! until told to leave.
//!
//! A worker is a plain `ecripse-serve` process — nothing in the serve
//! crate knows about clustering. `ecripse-cli serve --join ADDR` binds
//! the server as usual and then runs this loop next to it: register
//! (retrying with backoff until the coordinator answers), heartbeat at
//! the cadence the coordinator returned, and re-register whenever a
//! heartbeat comes back `404` (the coordinator reaped us, restarted, or
//! never saw the registration). The loop is infinitely patient: a
//! coordinator that is down just means retries, never a worker exit.

use crate::protocol::{HeartbeatRequest, RegisterRequest, RegisterResponse};
use ecripse_serve::http;
use ecripse_serve::protocol::PROTOCOL_VERSION;
use serde::Serialize;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a worker joins a cluster.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// This worker's stable name.
    pub name: String,
    /// The serve socket address the coordinator should dial.
    pub addr: String,
    /// Socket timeout for register/heartbeat calls.
    pub timeout: Duration,
}

impl JoinConfig {
    /// A join config with the default 5 s socket timeout.
    pub fn new(
        coordinator: impl Into<String>,
        name: impl Into<String>,
        addr: impl Into<String>,
    ) -> Self {
        Self {
            coordinator: coordinator.into(),
            name: name.into(),
            addr: addr.into(),
            timeout: Duration::from_secs(5),
        }
    }
}

/// Handle on a running join loop; dropping it without
/// [`leave`](JoinHandle::leave) leaves the thread running detached.
pub struct JoinHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl JoinHandle {
    /// Stops heartbeating and joins the loop thread. The coordinator
    /// notices the silence after its timeout and reaps the worker.
    pub fn leave(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// One JSON POST against `addr`, returning the status and body.
fn post_json(
    addr: &str,
    timeout: Duration,
    path: &str,
    body: &str,
) -> Result<(u16, String), http::HttpError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| http::HttpError::Io(e.to_string()))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    http::write_request(&mut stream, "POST", path, Some(body))
        .map_err(|e| http::HttpError::Io(e.to_string()))?;
    let (status, _, text) = http::read_response(&mut stream)?;
    Ok((status, text))
}

fn encode<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string())
}

/// One registration attempt; `Some(cadence)` on a 2xx answer.
fn register_once(config: &JoinConfig) -> Option<RegisterResponse> {
    let body = encode(&RegisterRequest {
        protocol: PROTOCOL_VERSION,
        name: config.name.clone(),
        addr: config.addr.clone(),
    });
    let (status, text) = post_json(
        &config.coordinator,
        config.timeout,
        "/v1/cluster/register",
        &body,
    )
    .ok()?;
    if !(200..300).contains(&status) {
        return None;
    }
    serde_json::from_str::<RegisterResponse>(&text).ok()
}

/// Sleeps `total` in small slices, returning early (and `true`) when
/// the stop flag rises.
fn stoppable_sleep(stop: &AtomicBool, total: Duration) -> bool {
    let slice = Duration::from_millis(25);
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if stop.load(Ordering::SeqCst) {
            return true;
        }
        let nap = remaining.min(slice);
        std::thread::sleep(nap);
        remaining -= nap;
    }
    stop.load(Ordering::SeqCst)
}

/// Starts the register-and-heartbeat loop on its own thread.
pub fn join(config: JoinConfig) -> JoinHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::spawn(move || run_loop(&config, &flag));
    JoinHandle {
        stop,
        thread: Some(thread),
    }
}

fn run_loop(config: &JoinConfig, stop: &AtomicBool) {
    let mut backoff = Duration::from_millis(50);
    let backoff_cap = Duration::from_secs(2);
    'register: loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Some(cadence) = register_once(config) else {
            // Coordinator down or rejecting: retry with capped backoff.
            if stoppable_sleep(stop, backoff) {
                return;
            }
            backoff = (backoff * 2).min(backoff_cap);
            continue 'register;
        };
        backoff = Duration::from_millis(50);
        let interval = Duration::from_millis(cadence.heartbeat_interval_ms.max(10));
        loop {
            if stoppable_sleep(stop, interval) {
                return;
            }
            let body = encode(&HeartbeatRequest {
                name: config.name.clone(),
            });
            match post_json(
                &config.coordinator,
                config.timeout,
                "/v1/cluster/heartbeat",
                &body,
            ) {
                Ok((status, _)) if (200..300).contains(&status) => {}
                // 404 = the coordinator no longer knows us (reaped or
                // restarted): fall back to registration. Transport
                // errors take the same path — registration retries
                // absorb a bouncing coordinator.
                _ => continue 'register,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leave_stops_a_loop_with_no_coordinator() {
        // Port 1 on loopback refuses connections immediately; the loop
        // must spin in its backoff and exit promptly on leave().
        let handle = join(JoinConfig::new("127.0.0.1:1", "w-test", "127.0.0.1:2"));
        std::thread::sleep(Duration::from_millis(120));
        handle.leave();
    }
}
