//! End-to-end cluster tests on loopback, all in one process: a real
//! coordinator fronting real `Server`s joined via the worker loop. The
//! load-bearing assertion is the determinism contract — a sweep
//! sharded across two workers merges to exactly the result one server
//! computes on its own.

use ecripse_cluster::{ClusterConfig, ClusterMetrics, Coordinator, JoinConfig};
use ecripse_core::bench::LinearBench;
use ecripse_core::ecripse::EcripseConfig;
use ecripse_core::importance::ImportanceConfig;
use ecripse_core::initial::InitialSearchConfig;
use ecripse_core::telemetry::{fmt_hex_id, TraceContext};
use ecripse_serve::protocol::{JobSpec, JobState, SubmitRequest, SweepOutcome};
use ecripse_serve::{http, Client, ClientError, ServeConfig, Server};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn tiny_config(seed: u64) -> EcripseConfig {
    EcripseConfig {
        initial: InitialSearchConfig {
            count: 12,
            max_attempts: 2000,
            ..InitialSearchConfig::default()
        },
        iterations: 3,
        importance: ImportanceConfig {
            n_samples: 250,
            m_rtn: 4,
            trace_every: 0,
        },
        m_rtn_stage1: 2,
        seed,
        ..EcripseConfig::default()
    }
}

fn linear_bench() -> LinearBench {
    LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.5)
}

fn bind_worker() -> Server<LinearBench> {
    Server::bind_with("127.0.0.1:0", ServeConfig::default(), |_scenario, _vdd| {
        linear_bench()
    })
    .expect("bind worker")
}

/// A worker whose spans carry a stable node name (instead of the
/// `serve-{port}` default) so trace assertions can address it.
fn bind_named_worker(name: &str) -> Server<LinearBench> {
    let config = ServeConfig {
        node: Some(name.to_string()),
        ..ServeConfig::default()
    };
    Server::bind_with("127.0.0.1:0", config, |_scenario, _vdd| linear_bench())
        .expect("bind named worker")
}

/// A coordinator tuned for test time: fast heartbeats, fast reap, fast
/// polls, 2-point shards.
fn fast_cluster() -> ClusterConfig {
    ClusterConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(400),
        shard_points: 2,
        poll_interval: Duration::from_millis(10),
        ..ClusterConfig::default()
    }
}

fn join_worker(
    coordinator: &Coordinator,
    name: &str,
    worker: &Server<LinearBench>,
) -> ecripse_cluster::JoinHandle {
    ecripse_cluster::join(JoinConfig::new(
        coordinator.local_addr().to_string(),
        name,
        worker.local_addr().to_string(),
    ))
}

fn strip_outcome_timings(outcome: &mut SweepOutcome) {
    outcome.reports.rdf_only.strip_timings();
    for report in &mut outcome.reports.points {
        report.strip_timings();
    }
}

fn sweep_request(seed: u64, points: usize) -> SubmitRequest {
    let alphas: Vec<f64> = (0..points)
        .map(|i| i as f64 / (points - 1) as f64)
        .collect();
    SubmitRequest::new(tiny_config(seed), JobSpec::sweep(0.7, alphas))
}

/// The tentpole contract: a sweep submitted to the coordinator — split
/// into shards, scattered over two workers, merged — is bit-identical
/// to the same request served by one standalone process.
#[test]
fn sharded_sweep_is_bit_identical_to_a_single_process_run() {
    // Baseline: one plain server, no cluster anywhere.
    let single = bind_worker();
    let single_client = Client::new(single.local_addr().to_string());
    let request = sweep_request(11, 7);
    let submitted = single_client.submit(&request).expect("submit baseline");
    let mut baseline = single_client
        .wait_for_report(submitted.id, WAIT)
        .expect("baseline completes")
        .sweep
        .expect("baseline sweep outcome");
    single.shutdown();

    // Cluster: coordinator + two joined workers.
    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let w1 = bind_worker();
    let w2 = bind_worker();
    let m1 = join_worker(&coordinator, "w1", &w1);
    let m2 = join_worker(&coordinator, "w2", &w2);
    let client = Client::new(coordinator.local_addr().to_string());
    let ready = client.wait_ready(WAIT).expect("coordinator becomes ready");
    assert!(ready.ready, "coordinator not ready: {}", ready.status);

    let submitted = client.submit(&request).expect("submit to coordinator");
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("cluster sweep completes");
    assert_eq!(report.state, JobState::Completed);
    let mut merged = report.sweep.expect("merged sweep outcome");

    strip_outcome_timings(&mut baseline);
    strip_outcome_timings(&mut merged);
    assert_eq!(
        merged, baseline,
        "a sharded sweep must merge bit-identically to a single-process run"
    );

    // Both workers actually took part: 7 points in 2-point shards is 4
    // shards, and the consistent-hash placement spreads job keys.
    let metrics = coordinator.metrics();
    assert!(
        metrics.shards_completed_total >= 4,
        "expected at least 4 shards, saw {}",
        metrics.shards_completed_total
    );
    assert_eq!(metrics.jobs_completed, 1);

    m1.leave();
    m2.leave();
    w1.shutdown();
    w2.shutdown();
    coordinator.shutdown();
}

/// Estimates have nothing to shard: they forward whole to one
/// ring-chosen worker and come back bit-identical too.
#[test]
fn estimates_forward_whole_and_match_a_direct_run() {
    let single = bind_worker();
    let single_client = Client::new(single.local_addr().to_string());
    let request = SubmitRequest::new(tiny_config(23), JobSpec::estimate(0.7, 0.5));
    let submitted = single_client.submit(&request).expect("submit baseline");
    let mut baseline = single_client
        .wait_for_report(submitted.id, WAIT)
        .expect("baseline completes")
        .estimate
        .expect("baseline estimate outcome");
    single.shutdown();

    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let worker = bind_worker();
    let membership = join_worker(&coordinator, "w1", &worker);
    let client = Client::new(coordinator.local_addr().to_string());
    client.wait_ready(WAIT).expect("ready");

    let submitted = client.submit(&request).expect("submit estimate");
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("estimate completes");
    let mut forwarded = report.estimate.expect("forwarded estimate outcome");

    baseline.report.strip_timings();
    forwarded.report.strip_timings();
    assert_eq!(
        forwarded, baseline,
        "forwarded estimate must match a direct run"
    );
    assert!(coordinator.metrics().estimates_forwarded_total >= 1);

    membership.leave();
    worker.shutdown();
    coordinator.shutdown();
}

/// The coordinator speaks the serve protocol end to end: readiness
/// gates on live workers, idempotency keys dedup, cancel works, and a
/// worker that stops heartbeating shows up dead in the listing.
#[test]
fn cluster_management_surface_behaves() {
    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let client = Client::new(coordinator.local_addr().to_string());

    // No workers yet: healthz answers, readyz refuses with a hint.
    client.handshake().expect("handshake");
    let readiness = client.readiness().expect("readiness document");
    assert!(!readiness.ready);
    assert_eq!(readiness.status, "no-workers");
    assert_eq!(readiness.retry_after_seconds, Some(1));

    // A submission against an empty cluster is accepted (the dispatcher
    // waits for capacity) — but we exercise cancel instead of waiting.
    let request = sweep_request(31, 5).with_idempotency_key("svc/sweep-31");
    let submitted = client.submit(&request).expect("submit");
    let dup = client.submit(&request).expect("dedup resubmit");
    assert_eq!(dup.id, submitted.id, "idempotency key must dedup");
    let cancelled = client.cancel(submitted.id).expect("cancel accepted");
    assert!(!cancelled.state.is_terminal() || cancelled.state == JobState::Cancelled);
    match client.wait(submitted.id, WAIT) {
        Err(ClientError::Cancelled { id }) => assert_eq!(id, submitted.id),
        other => panic!("expected the job to drain to cancelled, got {other:?}"),
    }
    assert!(coordinator.metrics().idempotent_hits >= 1);

    // Join one worker, then silence it: the reaper must mark it dead.
    let worker = bind_worker();
    let membership = join_worker(&coordinator, "w-reap", &worker);
    client.wait_ready(WAIT).expect("ready with one worker");
    membership.leave();
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        assert!(std::time::Instant::now() < deadline, "worker never reaped");
        if coordinator.metrics().workers_alive == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(coordinator.metrics().workers_dead_total >= 1);
    let readiness = client.readiness().expect("readiness after reap");
    assert!(!readiness.ready);

    // Prometheus exposition serves the cluster counters.
    let text = client.metrics_prometheus().expect("prometheus metrics");
    assert!(text.contains("ecripse_cluster_workers_dead_total"));
    assert!(text.contains("ecripse_cluster_jobs_submitted_total"));

    worker.shutdown();
    coordinator.shutdown();
}

/// Kill a worker mid-sweep (in-process flavour: stop heartbeats *and*
/// the server so its shards genuinely die) and the coordinator must
/// reassign its unfinished shards to the survivor — with the merged
/// result still bit-identical to a single-process run.
#[test]
fn dead_workers_shards_are_reassigned_to_survivors() {
    let single = bind_worker();
    let single_client = Client::new(single.local_addr().to_string());
    let request = sweep_request(47, 8);
    let submitted = single_client.submit(&request).expect("submit baseline");
    let mut baseline = single_client
        .wait_for_report(submitted.id, WAIT)
        .expect("baseline completes")
        .sweep
        .expect("baseline sweep outcome");
    single.shutdown();

    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ClusterConfig {
            shard_points: 1, // fine-grained: every point is its own shard
            ..fast_cluster()
        },
    )
    .expect("bind coordinator");
    let victim = bind_worker();
    let survivor = bind_worker();
    let m_victim = join_worker(&coordinator, "victim", &victim);
    let m_survivor = join_worker(&coordinator, "survivor", &survivor);
    let client = Client::new(coordinator.local_addr().to_string());
    client.wait_ready(WAIT).expect("ready");

    let submitted = client.submit(&request).expect("submit to coordinator");
    // Let dispatch begin, then take the victim down hard: heartbeats
    // stop and its socket closes, so in-flight shards are lost.
    std::thread::sleep(Duration::from_millis(100));
    m_victim.leave();
    victim.shutdown();

    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("sweep survives the worker death");
    assert_eq!(report.state, JobState::Completed);
    let mut merged = report.sweep.expect("merged sweep outcome");

    strip_outcome_timings(&mut baseline);
    strip_outcome_timings(&mut merged);
    assert_eq!(
        merged, baseline,
        "reassigned shards must not change the merged result"
    );

    m_survivor.leave();
    survivor.shutdown();
    coordinator.shutdown();
}

/// The tracing tentpole, in-process: one traced sweep through a
/// two-worker cluster merges into a single waterfall — every span
/// shares the job's trace id, shard spans parent to the coordinator
/// root, worker spans nest under shard spans, and shard wall-clock
/// sits inside the job's window.
#[test]
fn merged_trace_is_one_waterfall_across_coordinator_and_workers() {
    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let wa = bind_named_worker("trace-a");
    let wb = bind_named_worker("trace-b");
    let ma = join_worker(&coordinator, "trace-a", &wa);
    let mb = join_worker(&coordinator, "trace-b", &wb);
    let client = Client::new(coordinator.local_addr().to_string());
    client.wait_ready(WAIT).expect("ready");

    let context = TraceContext::for_job(4242, 61);
    let trace_id = fmt_hex_id(context.trace_id);
    let request = sweep_request(61, 8).with_trace(context);
    let submitted = client.submit(&request).expect("submit traced sweep");
    assert_eq!(
        submitted.trace_id.as_deref(),
        Some(trace_id.as_str()),
        "the 202 echoes the caller's trace id"
    );
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("traced sweep completes");
    assert_eq!(report.state, JobState::Completed);
    assert_eq!(report.trace_id.as_deref(), Some(trace_id.as_str()));

    let trace = client.trace(submitted.id).expect("merged trace document");
    assert_eq!(trace.job_id, submitted.id);
    assert_eq!(trace.trace_id, trace_id);
    assert!(
        trace.spans.iter().all(|span| span.trace_id == trace_id),
        "every span in the waterfall shares the job trace id"
    );

    // The coordinator's root span heads the waterfall, at the id the
    // trace context derives deterministically…
    let root = trace
        .spans
        .iter()
        .find(|span| span.node == "coordinator" && span.name == "job")
        .expect("coordinator root span");
    assert_eq!(root.span_id, fmt_hex_id(context.span_id("coordinator/job")));
    assert_eq!(root.parent_span_id, fmt_hex_id(context.parent_span_id));

    // …its shard children parent to it and sit inside the job's
    // wall-clock window (± scheduling slack)…
    let shards: Vec<_> = trace
        .spans
        .iter()
        .filter(|span| span.node == "coordinator" && span.name.starts_with("shard-"))
        .collect();
    assert!(
        shards.len() >= 2,
        "8 points in 2-point shards means 4 shard spans, saw {}",
        shards.len()
    );
    const SLACK: f64 = 0.5;
    for shard in &shards {
        assert_eq!(
            shard.parent_span_id, root.span_id,
            "shard spans parent to the job root"
        );
        assert!(
            shard.start_ts >= root.start_ts - SLACK,
            "shard {} starts before the job root",
            shard.name
        );
        assert!(
            shard.end_ts() <= root.end_ts() + SLACK,
            "shard {} outlives the job root",
            shard.name
        );
    }

    // …and both workers contributed job spans that nest under
    // coordinator shard spans.
    for node in ["trace-a", "trace-b"] {
        let span = trace
            .spans
            .iter()
            .find(|span| span.node == node)
            .unwrap_or_else(|| panic!("no span from worker {node}"));
        assert!(
            shards
                .iter()
                .any(|shard| shard.span_id == span.parent_span_id),
            "worker {node}'s span must parent to a coordinator shard span"
        );
    }

    ma.leave();
    mb.leave();
    wa.shutdown();
    wb.shutdown();
    coordinator.shutdown();
}

/// Metrics federation: the coordinator's `/metrics` scrapes every live
/// worker on demand — worker-labelled serve series in the Prometheus
/// view (hostile names escaped), per-worker documents plus min/max/sum
/// rollups in the JSON view.
#[test]
fn federated_metrics_carry_per_worker_series_and_rollups() {
    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let hostile = "fed\"b\\slash";
    let wa = bind_worker();
    let wb = bind_worker();
    let ma = join_worker(&coordinator, "fed-a", &wa);
    let mb = join_worker(&coordinator, hostile, &wb);
    let client = Client::new(coordinator.local_addr().to_string());
    client.wait_ready(WAIT).expect("ready");

    // Run one sweep through the cluster so worker counters move.
    let submitted = client.submit(&sweep_request(71, 6)).expect("submit");
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("sweep completes");
    assert_eq!(report.state, JobState::Completed);

    // Prometheus view: cluster counters plus every worker's serve
    // series, each carrying its registry name as a label.
    let text = client.metrics_prometheus().expect("federated exposition");
    assert!(text.contains("ecripse_cluster_jobs_submitted_total"));
    assert!(
        text.contains("ecripse_serve_submitted_total{worker=\"fed-a\"}"),
        "missing fed-a's relabelled serve series in:\n{text}"
    );
    assert!(
        text.contains("worker=\"fed\\\"b\\\\slash\""),
        "hostile worker names must be escaped in label values"
    );
    // HELP/TYPE headers for a federated series appear once, not per
    // worker.
    let type_lines = text
        .lines()
        .filter(|line| *line == "# TYPE ecripse_serve_submitted_total counter")
        .count();
    assert_eq!(type_lines, 1, "federated TYPE headers must be deduped");
    // Even with the hostile name present, every sample line keeps the
    // `name[{labels}] value` shape the CI scrape's parser enforces:
    // escaping confined the quotes/backslashes to the label value.
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without a value: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf" || value == "-Inf",
            "bad sample value in {line:?}"
        );
        let name = series.split('{').next().expect("split never empty");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        let labels = &series[name.len()..];
        assert!(
            labels.is_empty() || (labels.starts_with('{') && labels.ends_with('}')),
            "malformed label block in {line:?}"
        );
    }

    // JSON view: per-worker snapshots plus scalar rollups.
    let mut stream = std::net::TcpStream::connect(coordinator.local_addr()).expect("connect");
    http::write_request(&mut stream, "GET", "/metrics", None).expect("write");
    let (status, _headers, body) = http::read_response(&mut stream).expect("read");
    assert_eq!(status, 200);
    let metrics: ClusterMetrics = serde_json::from_str(&body).expect("cluster metrics document");
    assert_eq!(metrics.workers.len(), 2, "one snapshot per live worker");
    for name in ["fed-a", hostile] {
        let view = metrics
            .workers
            .iter()
            .find(|view| view.worker == name)
            .unwrap_or_else(|| panic!("no metrics snapshot for worker {name}"));
        assert!(view.metrics.uptime_seconds > 0.0);
    }
    let shard_submissions: u64 = metrics
        .workers
        .iter()
        .map(|view| view.metrics.submitted)
        .sum();
    assert!(
        shard_submissions >= 2,
        "the sharded sweep must have reached the workers, saw {shard_submissions} submissions"
    );
    let rollup = metrics
        .rollups
        .iter()
        .find(|rollup| rollup.name == "submitted")
        .expect("submitted rollup");
    assert_eq!(rollup.sum, shard_submissions as f64);
    assert!(rollup.min <= rollup.max);
    assert!(rollup.max <= rollup.sum);

    ma.leave();
    mb.leave();
    wa.shutdown();
    wb.shutdown();
    coordinator.shutdown();
}
