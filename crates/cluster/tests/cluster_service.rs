//! End-to-end cluster tests on loopback, all in one process: a real
//! coordinator fronting real `Server`s joined via the worker loop. The
//! load-bearing assertion is the determinism contract — a sweep
//! sharded across two workers merges to exactly the result one server
//! computes on its own.

use ecripse_cluster::{ClusterConfig, Coordinator, JoinConfig};
use ecripse_core::bench::LinearBench;
use ecripse_core::ecripse::EcripseConfig;
use ecripse_core::importance::ImportanceConfig;
use ecripse_core::initial::InitialSearchConfig;
use ecripse_serve::protocol::{JobSpec, JobState, SubmitRequest, SweepOutcome};
use ecripse_serve::{Client, ClientError, ServeConfig, Server};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn tiny_config(seed: u64) -> EcripseConfig {
    EcripseConfig {
        initial: InitialSearchConfig {
            count: 12,
            max_attempts: 2000,
            ..InitialSearchConfig::default()
        },
        iterations: 3,
        importance: ImportanceConfig {
            n_samples: 250,
            m_rtn: 4,
            trace_every: 0,
        },
        m_rtn_stage1: 2,
        seed,
        ..EcripseConfig::default()
    }
}

fn linear_bench() -> LinearBench {
    LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.5)
}

fn bind_worker() -> Server<LinearBench> {
    Server::bind_with("127.0.0.1:0", ServeConfig::default(), |_scenario, _vdd| {
        linear_bench()
    })
    .expect("bind worker")
}

/// A coordinator tuned for test time: fast heartbeats, fast reap, fast
/// polls, 2-point shards.
fn fast_cluster() -> ClusterConfig {
    ClusterConfig {
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(400),
        shard_points: 2,
        poll_interval: Duration::from_millis(10),
        ..ClusterConfig::default()
    }
}

fn join_worker(
    coordinator: &Coordinator,
    name: &str,
    worker: &Server<LinearBench>,
) -> ecripse_cluster::JoinHandle {
    ecripse_cluster::join(JoinConfig::new(
        coordinator.local_addr().to_string(),
        name,
        worker.local_addr().to_string(),
    ))
}

fn strip_outcome_timings(outcome: &mut SweepOutcome) {
    outcome.reports.rdf_only.strip_timings();
    for report in &mut outcome.reports.points {
        report.strip_timings();
    }
}

fn sweep_request(seed: u64, points: usize) -> SubmitRequest {
    let alphas: Vec<f64> = (0..points)
        .map(|i| i as f64 / (points - 1) as f64)
        .collect();
    SubmitRequest::new(tiny_config(seed), JobSpec::sweep(0.7, alphas))
}

/// The tentpole contract: a sweep submitted to the coordinator — split
/// into shards, scattered over two workers, merged — is bit-identical
/// to the same request served by one standalone process.
#[test]
fn sharded_sweep_is_bit_identical_to_a_single_process_run() {
    // Baseline: one plain server, no cluster anywhere.
    let single = bind_worker();
    let single_client = Client::new(single.local_addr().to_string());
    let request = sweep_request(11, 7);
    let submitted = single_client.submit(&request).expect("submit baseline");
    let mut baseline = single_client
        .wait_for_report(submitted.id, WAIT)
        .expect("baseline completes")
        .sweep
        .expect("baseline sweep outcome");
    single.shutdown();

    // Cluster: coordinator + two joined workers.
    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let w1 = bind_worker();
    let w2 = bind_worker();
    let m1 = join_worker(&coordinator, "w1", &w1);
    let m2 = join_worker(&coordinator, "w2", &w2);
    let client = Client::new(coordinator.local_addr().to_string());
    let ready = client.wait_ready(WAIT).expect("coordinator becomes ready");
    assert!(ready.ready, "coordinator not ready: {}", ready.status);

    let submitted = client.submit(&request).expect("submit to coordinator");
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("cluster sweep completes");
    assert_eq!(report.state, JobState::Completed);
    let mut merged = report.sweep.expect("merged sweep outcome");

    strip_outcome_timings(&mut baseline);
    strip_outcome_timings(&mut merged);
    assert_eq!(
        merged, baseline,
        "a sharded sweep must merge bit-identically to a single-process run"
    );

    // Both workers actually took part: 7 points in 2-point shards is 4
    // shards, and the consistent-hash placement spreads job keys.
    let metrics = coordinator.metrics();
    assert!(
        metrics.shards_completed_total >= 4,
        "expected at least 4 shards, saw {}",
        metrics.shards_completed_total
    );
    assert_eq!(metrics.jobs_completed, 1);

    m1.leave();
    m2.leave();
    w1.shutdown();
    w2.shutdown();
    coordinator.shutdown();
}

/// Estimates have nothing to shard: they forward whole to one
/// ring-chosen worker and come back bit-identical too.
#[test]
fn estimates_forward_whole_and_match_a_direct_run() {
    let single = bind_worker();
    let single_client = Client::new(single.local_addr().to_string());
    let request = SubmitRequest::new(tiny_config(23), JobSpec::estimate(0.7, 0.5));
    let submitted = single_client.submit(&request).expect("submit baseline");
    let mut baseline = single_client
        .wait_for_report(submitted.id, WAIT)
        .expect("baseline completes")
        .estimate
        .expect("baseline estimate outcome");
    single.shutdown();

    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let worker = bind_worker();
    let membership = join_worker(&coordinator, "w1", &worker);
    let client = Client::new(coordinator.local_addr().to_string());
    client.wait_ready(WAIT).expect("ready");

    let submitted = client.submit(&request).expect("submit estimate");
    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("estimate completes");
    let mut forwarded = report.estimate.expect("forwarded estimate outcome");

    baseline.report.strip_timings();
    forwarded.report.strip_timings();
    assert_eq!(
        forwarded, baseline,
        "forwarded estimate must match a direct run"
    );
    assert!(coordinator.metrics().estimates_forwarded_total >= 1);

    membership.leave();
    worker.shutdown();
    coordinator.shutdown();
}

/// The coordinator speaks the serve protocol end to end: readiness
/// gates on live workers, idempotency keys dedup, cancel works, and a
/// worker that stops heartbeating shows up dead in the listing.
#[test]
fn cluster_management_surface_behaves() {
    let coordinator = Coordinator::bind("127.0.0.1:0", fast_cluster()).expect("bind coordinator");
    let client = Client::new(coordinator.local_addr().to_string());

    // No workers yet: healthz answers, readyz refuses with a hint.
    client.handshake().expect("handshake");
    let readiness = client.readiness().expect("readiness document");
    assert!(!readiness.ready);
    assert_eq!(readiness.status, "no-workers");
    assert_eq!(readiness.retry_after_seconds, Some(1));

    // A submission against an empty cluster is accepted (the dispatcher
    // waits for capacity) — but we exercise cancel instead of waiting.
    let request = sweep_request(31, 5).with_idempotency_key("svc/sweep-31");
    let submitted = client.submit(&request).expect("submit");
    let dup = client.submit(&request).expect("dedup resubmit");
    assert_eq!(dup.id, submitted.id, "idempotency key must dedup");
    let cancelled = client.cancel(submitted.id).expect("cancel accepted");
    assert!(!cancelled.state.is_terminal() || cancelled.state == JobState::Cancelled);
    match client.wait(submitted.id, WAIT) {
        Err(ClientError::Cancelled { id }) => assert_eq!(id, submitted.id),
        other => panic!("expected the job to drain to cancelled, got {other:?}"),
    }
    assert!(coordinator.metrics().idempotent_hits >= 1);

    // Join one worker, then silence it: the reaper must mark it dead.
    let worker = bind_worker();
    let membership = join_worker(&coordinator, "w-reap", &worker);
    client.wait_ready(WAIT).expect("ready with one worker");
    membership.leave();
    let deadline = std::time::Instant::now() + WAIT;
    loop {
        assert!(std::time::Instant::now() < deadline, "worker never reaped");
        if coordinator.metrics().workers_alive == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(coordinator.metrics().workers_dead_total >= 1);
    let readiness = client.readiness().expect("readiness after reap");
    assert!(!readiness.ready);

    // Prometheus exposition serves the cluster counters.
    let text = client.metrics_prometheus().expect("prometheus metrics");
    assert!(text.contains("ecripse_cluster_workers_dead_total"));
    assert!(text.contains("ecripse_cluster_jobs_submitted_total"));

    worker.shutdown();
    coordinator.shutdown();
}

/// Kill a worker mid-sweep (in-process flavour: stop heartbeats *and*
/// the server so its shards genuinely die) and the coordinator must
/// reassign its unfinished shards to the survivor — with the merged
/// result still bit-identical to a single-process run.
#[test]
fn dead_workers_shards_are_reassigned_to_survivors() {
    let single = bind_worker();
    let single_client = Client::new(single.local_addr().to_string());
    let request = sweep_request(47, 8);
    let submitted = single_client.submit(&request).expect("submit baseline");
    let mut baseline = single_client
        .wait_for_report(submitted.id, WAIT)
        .expect("baseline completes")
        .sweep
        .expect("baseline sweep outcome");
    single.shutdown();

    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        ClusterConfig {
            shard_points: 1, // fine-grained: every point is its own shard
            ..fast_cluster()
        },
    )
    .expect("bind coordinator");
    let victim = bind_worker();
    let survivor = bind_worker();
    let m_victim = join_worker(&coordinator, "victim", &victim);
    let m_survivor = join_worker(&coordinator, "survivor", &survivor);
    let client = Client::new(coordinator.local_addr().to_string());
    client.wait_ready(WAIT).expect("ready");

    let submitted = client.submit(&request).expect("submit to coordinator");
    // Let dispatch begin, then take the victim down hard: heartbeats
    // stop and its socket closes, so in-flight shards are lost.
    std::thread::sleep(Duration::from_millis(100));
    m_victim.leave();
    victim.shutdown();

    let report = client
        .wait_for_report(submitted.id, WAIT)
        .expect("sweep survives the worker death");
    assert_eq!(report.state, JobState::Completed);
    let mut merged = report.sweep.expect("merged sweep outcome");

    strip_outcome_timings(&mut baseline);
    strip_outcome_timings(&mut merged);
    assert_eq!(
        merged, baseline,
        "reassigned shards must not change the merged result"
    );

    m_survivor.leave();
    survivor.shutdown();
    coordinator.shutdown();
}
