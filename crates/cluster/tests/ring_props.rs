//! Property tests for the consistent-hash ring: the two promises the
//! coordinator's shard placement rests on.
//!
//! 1. **Balance** — with the default virtual-node count, no member owns
//!    more than ~2× its fair share of a key population, for any
//!    realistic cluster size.
//! 2. **Minimal disruption** — removing one member remaps *only* the
//!    keys that member owned (survivors keep every key of theirs), and
//!    adding one member steals keys *only for itself*; in both
//!    directions the number of remapped keys stays near `K/n`, not
//!    `K`. This is exactly why a worker death reassigns the dead
//!    worker's shards without reshuffling the survivors'.

use ecripse_cluster::HashRing;
use proptest::prelude::*;
use std::collections::HashMap;

fn members(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("worker-{i}")).collect()
}

fn ownership_counts(ring: &HashRing, keys: usize) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for k in 0..keys {
        let owner = ring
            .owner(&format!("job-7/point-{k}"))
            .expect("non-empty ring owns every key");
        *counts.entry(owner.to_string()).or_default() += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No member's share exceeds 2× the ideal `K/n`.
    #[test]
    fn prop_distribution_is_within_twice_ideal(n in 2usize..9) {
        const KEYS: usize = 4000;
        let ring = HashRing::new(&members(n));
        let counts = ownership_counts(&ring, KEYS);
        let ideal = KEYS as f64 / n as f64;
        for member in ring.members() {
            let share = counts.get(member).copied().unwrap_or(0) as f64;
            prop_assert!(
                share <= 2.0 * ideal,
                "{member} owns {share} of {KEYS} keys; ideal is {ideal:.0}"
            );
        }
    }

    /// Removing one member never moves a surviving member's keys, and
    /// remaps roughly `K/n` keys in total.
    #[test]
    fn prop_removal_remaps_only_the_removed_members_keys(
        n in 3usize..9,
        removed_pick in 0usize..64,
    ) {
        const KEYS: usize = 2000;
        let full = members(n);
        let removed = &full[removed_pick % n];
        let survivors: Vec<String> =
            full.iter().filter(|m| *m != removed).cloned().collect();
        let before = HashRing::new(&full);
        let after = HashRing::new(&survivors);

        let mut moved = 0usize;
        for k in 0..KEYS {
            let key = format!("job-3/point-{k}");
            let owner_before = before.owner(&key).expect("owner before");
            let owner_after = after.owner(&key).expect("owner after");
            if owner_before == removed {
                moved += 1;
                prop_assert!(
                    owner_after != removed,
                    "key {key} still maps to the removed member"
                );
            } else {
                prop_assert_eq!(
                    owner_before, owner_after,
                    "key {} moved although its owner survived", key
                );
            }
        }
        // The removed member's share is all that moves; with vnode
        // smoothing it stays within 2× the ideal share.
        let ideal = KEYS as f64 / n as f64;
        prop_assert!(
            (moved as f64) <= 2.0 * ideal,
            "removal remapped {moved} keys; ideal share is {ideal:.0}"
        );
    }

    /// Adding one member steals keys only for itself, roughly `K/(n+1)`
    /// of them.
    #[test]
    fn prop_addition_steals_only_for_the_new_member(n in 2usize..8) {
        const KEYS: usize = 2000;
        let base = members(n);
        let mut grown = base.clone();
        grown.push("worker-new".to_string());
        let before = HashRing::new(&base);
        let after = HashRing::new(&grown);

        let mut stolen = 0usize;
        for k in 0..KEYS {
            let key = format!("job-5/point-{k}");
            let owner_before = before.owner(&key).expect("owner before");
            let owner_after = after.owner(&key).expect("owner after");
            if owner_before != owner_after {
                stolen += 1;
                prop_assert_eq!(
                    owner_after, "worker-new",
                    "key {} moved to {} instead of the new member", key, owner_after
                );
            }
        }
        let ideal = KEYS as f64 / (n + 1) as f64;
        prop_assert!(
            (stolen as f64) <= 2.0 * ideal,
            "addition remapped {stolen} keys; ideal share is {ideal:.0}"
        );
        prop_assert!(stolen > 0, "the new member took nothing at all");
    }
}
