//! Fault-injection suite: drives the retry ladder, quarantine and
//! per-point failure isolation with [`FaultyBench`] faults that are
//! deterministic by sample hash.

use ecripse_bench::fault::{FaultConfig, FaultyBench};
use ecripse_core::bench::{LinearBench, Testbench};
use ecripse_core::ecripse::EcripseConfig;
use ecripse_core::importance::ImportanceConfig;
use ecripse_core::initial::InitialSearchConfig;
use ecripse_core::retry::{RetryBench, RetryPolicy};
use ecripse_core::sweep::{DutySweep, SweepError, SweepOptions};

fn bench6() -> LinearBench {
    LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.5)
}

fn samples(n: usize) -> Vec<Vec<f64>> {
    // A deterministic spread straddling the z0 = 3.5 failure boundary.
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            vec![7.0 * t, 0.5 - t, t, -0.25, 2.0 * t - 1.0, 0.125]
        })
        .collect()
}

#[test]
fn retry_ladder_heals_transient_faults_to_ground_truth() {
    let truth = bench6();
    let faulty = FaultyBench::new(
        bench6(),
        FaultConfig {
            solver_failure_rate: 0.3,
            transient_attempts: 2,
            ..FaultConfig::default()
        },
    );
    let retrying = RetryBench::new(&faulty, RetryPolicy { max_attempts: 3 });
    let zs = samples(400);
    let healed = retrying.fails_batch(&zs);
    let expected = truth.fails_batch(&zs);
    assert_eq!(healed, expected, "healed verdicts must equal ground truth");
    assert!(
        retrying.retries() > 0,
        "some samples must have needed retries"
    );
    assert_eq!(
        retrying.quarantined(),
        0,
        "transient faults never quarantine"
    );
    assert!(faulty.injected() > 0);
}

#[test]
fn permanent_faults_are_quarantined_not_guessed() {
    let faulty = FaultyBench::new(
        bench6(),
        FaultConfig {
            solver_failure_rate: 0.25,
            transient_attempts: usize::MAX,
            ..FaultConfig::default()
        },
    );
    let policy = RetryPolicy { max_attempts: 3 };
    let retrying = RetryBench::new(&faulty, policy);
    let zs = samples(400);
    let verdicts = retrying.fails_batch(&zs);
    assert!(
        retrying.quarantined() > 0,
        "permanent faults must quarantine"
    );
    for (z, verdict) in zs.iter().zip(&verdicts) {
        if faulty.try_fails(z).is_err() {
            assert!(
                !verdict,
                "quarantined samples report the conservative verdict"
            );
        } else {
            assert_eq!(*verdict, faulty.fails(z));
        }
    }
}

#[test]
fn recovery_counters_are_thread_count_independent() {
    let run = |threads: usize| {
        let faulty = FaultyBench::new(
            bench6(),
            FaultConfig {
                solver_failure_rate: 0.4,
                transient_attempts: 1,
                salt: 9,
                ..FaultConfig::default()
            },
        );
        let retrying = RetryBench::new(faulty, RetryPolicy { max_attempts: 2 });
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("test pool");
        let verdicts = pool.install(|| retrying.fails_batch(&samples(600)));
        (verdicts, retrying.retries(), retrying.quarantined())
    };
    assert_eq!(
        run(1),
        run(4),
        "verdicts and counters must not depend on threads"
    );
}

fn tiny_config(seed: u64) -> EcripseConfig {
    EcripseConfig {
        initial: InitialSearchConfig {
            count: 12,
            max_attempts: 2000,
            ..InitialSearchConfig::default()
        },
        iterations: 3,
        importance: ImportanceConfig {
            n_samples: 250,
            m_rtn: 4,
            trace_every: 0,
        },
        m_rtn_stage1: 2,
        seed,
        ..EcripseConfig::default()
    }
}

#[test]
fn keep_going_sweep_isolates_a_poisoned_point() {
    let alphas = vec![0.0, 0.5, 1.0];
    let clean = DutySweep::new(tiny_config(11), bench6(), alphas.clone())
        .run()
        .expect("fault-free sweep");

    let poisoned_bench = FaultyBench::new(bench6(), FaultConfig::default()).poison_alpha(0.5);
    let sweep = DutySweep::new(tiny_config(11), poisoned_bench, alphas);

    // Default (fail-fast) semantics: the poisoned point aborts the sweep.
    let err = sweep
        .run_resumable(&SweepOptions::default())
        .expect_err("poisoned point must fail the strict sweep");
    assert!(matches!(err, SweepError::Point { index: 1, .. }));

    // --keep-going: the failure stays confined to its point, and the
    // surviving points are bit-identical to the fault-free sweep.
    let run = sweep
        .run_resumable(&SweepOptions {
            keep_going: true,
            ..SweepOptions::default()
        })
        .expect("keep-going sweep completes");
    assert_eq!(run.failed_points(), 1);
    assert!(run.outcomes[1].result.is_err());
    for k in [0, 2] {
        let point = run.outcomes[k].result.as_ref().expect("clean point");
        assert_eq!(
            *point, clean.points[k],
            "clean points must match fault-free run"
        );
    }
    assert_eq!(run.p_fail_rdf_only, clean.p_fail_rdf_only);
}
