//! Deterministic fault injection for exercising the fault-tolerance
//! stack under test.
//!
//! [`FaultyBench`] wraps any [`Testbench`] and makes its *fallible*
//! evaluation path fail on a deterministic, sample-addressed subset of
//! inputs: whether a sample is faulted depends only on the FNV-1a hash
//! of its coordinate bits and the configured salt — never on call order,
//! thread count or wall clock. That makes fault-injection tests exactly
//! reproducible: the same samples fault on every run, on any machine.
//!
//! Injected faults are visible only through `try_fails*`; the
//! infallible [`Testbench::fails`] path keeps returning the wrapped
//! bench's ground truth. A retry ladder above the wrapper therefore
//! heals transient faults back to exactly the fault-free verdicts, which
//! is the property the integration suite pins down.

use ecripse_core::bench::Testbench;
use ecripse_core::sweep::SweepBench;
use ecripse_core::EvalError;
use ecripse_spice::solver::SolveError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What and how often [`FaultyBench`] injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fraction of samples (by hash) whose evaluation fails with a
    /// solver-style [`EvalError::Solve`].
    pub solver_failure_rate: f64,
    /// Fraction of samples whose evaluation surfaces a non-finite
    /// result ([`EvalError::NonFinite`]). Stacked after
    /// `solver_failure_rate` in the hash interval, so the two fault
    /// populations never overlap.
    pub nan_rate: f64,
    /// Faulted samples fail while the retry attempt index is below this
    /// bound. `1` models transient glitches a single retry heals;
    /// [`usize::MAX`] models permanently unsolvable samples.
    pub transient_attempts: usize,
    /// Artificial latency added to each injected fault, for exercising
    /// timeout/throughput behaviour. Zero (the default) keeps tests
    /// fast.
    pub latency_us: u64,
    /// Salt mixed into the sample hash, so independent tests fault
    /// disjoint sample subsets.
    pub salt: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            solver_failure_rate: 0.0,
            nan_rate: 0.0,
            transient_attempts: 1,
            latency_us: 0,
            salt: 0,
        }
    }
}

impl FaultConfig {
    /// Every evaluation fails, on every attempt: a permanently
    /// unsolvable bench (what a poisoned sweep point uses).
    pub fn total_failure() -> Self {
        Self {
            solver_failure_rate: 1.0,
            transient_attempts: usize::MAX,
            ..Self::default()
        }
    }
}

/// A deterministic fault-injecting wrapper around a [`Testbench`].
#[derive(Debug, Clone)]
pub struct FaultyBench<B> {
    inner: B,
    config: FaultConfig,
    /// Duty ratios (bit-exact) whose [`SweepBench::at_alpha`] bench is
    /// replaced by a totally failing one.
    poisoned_alphas: Vec<f64>,
    /// Shared across clones (including per-α sweep clones), so a sweep
    /// reports one total injection count.
    injected: Arc<AtomicU64>,
}

impl<B> FaultyBench<B> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: B, config: FaultConfig) -> Self {
        Self {
            inner,
            config,
            poisoned_alphas: Vec::new(),
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Marks a duty ratio as unsolvable: the bench handed out by
    /// [`SweepBench::at_alpha`] for exactly this `α` fails every
    /// evaluation permanently. Used to test per-point failure isolation
    /// (`--keep-going`).
    #[must_use]
    pub fn poison_alpha(mut self, alpha: f64) -> Self {
        self.poisoned_alphas.push(alpha);
        self
    }

    /// Number of faults injected so far (shared across clones).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The wrapped bench.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The fault destiny of a sample: `None` when it evaluates cleanly,
    /// otherwise the error it is assigned. Pure function of the sample
    /// bits, the salt and the rates.
    fn fault_for(&self, z: &[f64]) -> Option<EvalError> {
        let total = self.config.solver_failure_rate + self.config.nan_rate;
        if total <= 0.0 {
            return None;
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ self.config.salt;
        for v in z {
            for b in v.to_bits().to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        // Map the top 53 bits onto [0, 1).
        let u = (hash >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.config.solver_failure_rate {
            Some(EvalError::Solve(SolveError::NoConvergence {
                best_residual: 1.0,
            }))
        } else if u < total {
            Some(EvalError::NonFinite {
                context: "injected fault",
            })
        } else {
            None
        }
    }

    fn inject(&self, fault: EvalError) -> EvalError {
        self.injected.fetch_add(1, Ordering::Relaxed);
        if self.config.latency_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.config.latency_us));
        }
        fault
    }
}

impl<B: Testbench> Testbench for FaultyBench<B> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    /// The infallible path stays fault-free ground truth, so runs over
    /// the wrapper can be compared verdict-for-verdict against the
    /// unwrapped bench.
    fn fails(&self, z: &[f64]) -> bool {
        self.inner.fails(z)
    }

    fn try_fails(&self, z: &[f64]) -> Result<bool, EvalError> {
        self.try_fails_attempt(z, 0)
    }

    fn try_fails_attempt(&self, z: &[f64], attempt: usize) -> Result<bool, EvalError> {
        if attempt < self.config.transient_attempts {
            if let Some(fault) = self.fault_for(z) {
                return Err(self.inject(fault));
            }
        }
        self.inner.try_fails_attempt(z, attempt)
    }
}

impl<B: SweepBench> SweepBench for FaultyBench<B> {
    fn sigmas(&self) -> [f64; 6] {
        self.inner.sigmas()
    }

    fn at_alpha(&self, alpha: f64) -> Self {
        let config = if self.poisoned_alphas.contains(&alpha) {
            FaultConfig {
                salt: self.config.salt,
                ..FaultConfig::total_failure()
            }
        } else {
            self.config
        };
        Self {
            inner: self.inner.at_alpha(alpha),
            config,
            poisoned_alphas: self.poisoned_alphas.clone(),
            injected: Arc::clone(&self.injected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecripse_core::bench::LinearBench;

    fn bench() -> LinearBench {
        LinearBench::new(vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 3.0)
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let faulty = FaultyBench::new(bench(), FaultConfig::default());
        for i in 0..50 {
            let z = vec![i as f64 / 10.0, 0.0, 0.0, 0.0, 0.0, 0.0];
            assert_eq!(faulty.try_fails(&z), Ok(faulty.fails(&z)));
        }
        assert_eq!(faulty.injected(), 0);
    }

    #[test]
    fn fault_selection_is_deterministic_and_rate_accurate() {
        let config = FaultConfig {
            solver_failure_rate: 0.2,
            nan_rate: 0.1,
            ..FaultConfig::default()
        };
        let faulty = FaultyBench::new(bench(), config);
        let mut faulted = 0;
        let n = 2000;
        for i in 0..n {
            let z = vec![i as f64 / 100.0, 0.5, -0.5, 0.0, 1.0, -1.0];
            let first = faulty.try_fails(&z);
            let second = faulty.try_fails(&z);
            assert_eq!(first, second, "fault destiny must be per-sample stable");
            if first.is_err() {
                faulted += 1;
            }
        }
        let rate = f64::from(faulted) / f64::from(n);
        assert!(
            (rate - 0.3).abs() < 0.05,
            "expected ~30% faulted, got {rate}"
        );
    }

    #[test]
    fn transient_faults_clear_after_the_configured_attempt() {
        let config = FaultConfig {
            solver_failure_rate: 1.0,
            transient_attempts: 2,
            ..FaultConfig::default()
        };
        let faulty = FaultyBench::new(bench(), config);
        let z = vec![3.5, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert!(faulty.try_fails_attempt(&z, 0).is_err());
        assert!(faulty.try_fails_attempt(&z, 1).is_err());
        assert_eq!(faulty.try_fails_attempt(&z, 2), Ok(true));
        assert_eq!(faulty.injected(), 2);
    }

    #[test]
    fn salts_select_disjoint_fault_sets() {
        let mk = |salt| {
            FaultyBench::new(
                bench(),
                FaultConfig {
                    solver_failure_rate: 0.3,
                    salt,
                    ..FaultConfig::default()
                },
            )
        };
        let (a, b) = (mk(1), mk(2));
        let differs = (0..200).any(|i| {
            let z = vec![i as f64 / 10.0, 0.0, 0.0, 0.0, 0.0, 0.0];
            a.try_fails(&z).is_err() != b.try_fails(&z).is_err()
        });
        assert!(differs, "different salts must fault different samples");
    }

    #[test]
    fn poisoned_alpha_bench_always_fails() {
        let faulty = FaultyBench::new(bench(), FaultConfig::default()).poison_alpha(0.5);
        let healthy = faulty.at_alpha(0.2);
        let poisoned = faulty.at_alpha(0.5);
        let z = vec![0.0; 6];
        assert!(healthy.try_fails(&z).is_ok());
        for attempt in 0..10 {
            assert!(poisoned.try_fails_attempt(&z, attempt).is_err());
        }
        // Ground truth stays intact even on the poisoned clone.
        assert!(!poisoned.fails(&z));
    }

    #[test]
    fn clones_share_the_injection_counter() {
        let config = FaultConfig {
            solver_failure_rate: 1.0,
            ..FaultConfig::default()
        };
        let faulty = FaultyBench::new(bench(), config);
        let clone = faulty.at_alpha(0.3);
        let z = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let _ = faulty.try_fails(&z);
        let _ = clone.try_fails(&z);
        assert_eq!(faulty.injected(), 2);
    }
}
