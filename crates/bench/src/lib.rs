//! Shared plumbing for the experiment binaries.
//!
//! Each figure/table of the paper has one binary under `src/bin/`:
//!
//! | binary    | reproduces | output |
//! |-----------|------------|--------|
//! | `table1`  | Table I    | stdout (conditions + derived quantities) |
//! | `fig4`    | Fig. 4     | `results/fig4_iter*.csv` particle clouds |
//! | `fig5`    | Fig. 5     | `results/fig5_*.csv` butterfly curves |
//! | `fig6`    | Fig. 6     | `results/fig6_*.csv` + `results/fig6.json` |
//! | `fig7`    | Fig. 7     | `results/fig7_*.csv` + `results/fig7.json` |
//! | `fig8`    | Fig. 8     | `results/fig8.csv` + `results/fig8.json` |
//! | `headline`| Sec. IV headline numbers | stdout table from the saved JSON |
//!
//! Every binary accepts `--quick` (reduced sample counts, minutes →
//! seconds) and `--threads N` (simulation worker threads; 0 = one per
//! core, the default), and honours a `RESULTS_DIR` environment variable
//! (default `./results`). The `fig6`/`fig7`/`fig8` binaries also emit
//! structured observability reports (`*_report*.json`, one
//! [`RunReport`](ecripse_core::observe::RunReport) per estimation run /
//! per α point).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod fault;

use ecripse_core::ecripse::EcripseConfig;
use ecripse_core::ensemble::EnsembleConfig;
use ecripse_core::importance::ImportanceConfig;
use ecripse_core::oracle::OracleConfig;
use ecripse_core::particle::ParticleFilterConfig;
use ecripse_svm::classifier::SvmConfig;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// The tuned ECRIPSE configuration used by all experiments (see
/// `EXPERIMENTS.md` for how these values were selected).
pub fn paper_config(n_is: usize, m_rtn: usize) -> EcripseConfig {
    EcripseConfig {
        ensemble: EnsembleConfig {
            n_filters: 4,
            filter: ParticleFilterConfig {
                n_particles: 100,
                sigma_prediction: 0.3,
            },
            max_reseeds: 3,
        },
        sigma_kernel: 0.8,
        oracle: OracleConfig {
            svm: Some(SvmConfig {
                uncertain_band: 0.02,
                ..SvmConfig::default()
            }),
            k_train_per_batch: 256,
            retrain_threshold: 512,
        },
        importance: ImportanceConfig {
            n_samples: n_is,
            m_rtn,
            trace_every: 0,
        },
        m_rtn_stage1: if m_rtn > 1 { 10 } else { 1 },
        threads: threads_arg(),
        ..EcripseConfig::default()
    }
}

/// The `--threads N` command-line override (0 = one worker per core).
/// Applied by [`paper_config`], so every experiment binary honours it.
pub fn threads_arg() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(v) = args.next() {
                return v
                    .parse()
                    .unwrap_or_else(|_| panic!("--threads: cannot parse '{v}' as a thread count"));
            }
        }
    }
    0
}

/// Where experiment outputs are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("cannot create results directory");
    path
}

/// Whether `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Serialises a result to pretty JSON in the results directory.
///
/// # Panics
///
/// Panics on I/O or serialisation failure (experiment binaries want loud
/// failures).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialisable result");
    std::fs::write(&path, json).expect("write result file");
    eprintln!("wrote {}", path.display());
}

/// Reads a previously saved JSON result, if present.
pub fn read_json<T: serde::de::DeserializeOwned>(name: &str) -> Option<T> {
    let path = results_dir().join(name);
    let text = std::fs::read_to_string(&path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Writes raw CSV text into the results directory.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_csv(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("write csv file");
    eprintln!("wrote {}", path.display());
}

/// Opens a CSV file in the results directory for streaming writes.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn csv_writer(name: &str) -> std::io::BufWriter<std::fs::File> {
    let path = results_dir().join(name);
    let file = std::fs::File::create(&path).expect("create csv file");
    eprintln!("writing {}", path.display());
    std::io::BufWriter::new(file)
}

/// Pretty-prints a "paper vs measured" comparison row.
pub fn report_row(metric: &str, paper: &str, measured: &str) {
    println!("{metric:<48} paper: {paper:<14} measured: {measured}");
}

/// Returns true if `path` exists inside the results dir.
pub fn results_exist(name: &str) -> bool {
    results_dir().join(name).exists()
}

/// Helper for binaries that post-process other binaries' outputs.
pub fn results_path(name: &str) -> PathBuf {
    results_dir().join(name)
}

/// Formats a simulation count compactly (`27.3k`, `1.2M`).
pub fn fmt_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Checks that a path's parent directory exists (used in tests).
pub fn parent_exists(path: &Path) -> bool {
    path.parent().map(|p| p.exists()).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_ranges() {
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(27_300), "27.3k");
        assert_eq!(fmt_count(1_200_000), "1.20M");
    }

    #[test]
    fn paper_config_is_classifier_enabled() {
        let cfg = paper_config(1000, 1);
        assert!(cfg.oracle.svm.is_some());
        assert_eq!(cfg.importance.n_samples, 1000);
        assert_eq!(cfg.m_rtn_stage1, 1);
        let cfg = paper_config(1000, 20);
        assert_eq!(cfg.m_rtn_stage1, 10);
    }

    #[test]
    fn results_roundtrip_json() {
        std::env::set_var(
            "RESULTS_DIR",
            std::env::temp_dir().join("ecripse-test-results"),
        );
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct T {
            x: f64,
        }
        write_json("t.json", &T { x: 1.5 });
        let back: T = read_json("t.json").expect("written above");
        assert_eq!(back, T { x: 1.5 });
        std::env::remove_var("RESULTS_DIR");
    }
}
