//! Fig. 6 — proposed vs conventional \[8\]: estimate and relative error
//! versus the number of transistor-level simulations (RDF only).
//!
//! Both methods run the identical particle-filter + importance-sampling
//! machinery; the conventional baseline simply has the classifier
//! disabled, so each of its Monte Carlo queries costs one simulation.
//! The paper's headline: the proposed method reaches 1 % relative error
//! with 36× fewer simulations, a 15.6× wall-clock speed-up.
//!
//! Outputs: `results/fig6_proposed.csv`, `results/fig6_conventional.csv`
//! (convergence traces), `results/fig6.json` (summary consumed by the
//! `headline` binary) and `results/fig6_proposed_report.json` (the
//! proposed run's structured observability report).

use ecripse_bench::{fmt_count, paper_config, report_row, write_csv, write_json};
use ecripse_core::baseline::sis::SequentialImportanceSampling;
use ecripse_core::bench::SramReadBench;
use ecripse_core::ecripse::Ecripse;
use ecripse_core::trace::ConvergenceTrace;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Summary persisted for the headline binary.
#[derive(Debug, Serialize, Deserialize)]
pub struct Fig6Summary {
    /// Proposed method's final estimate.
    pub p_fail_proposed: f64,
    /// Conventional method's final estimate.
    pub p_fail_conventional: f64,
    /// Relative-error target used for the comparison.
    pub rel_err_target: f64,
    /// Simulations the proposed method needed to hit the target.
    pub sims_proposed: Option<u64>,
    /// Simulations the conventional method needed.
    pub sims_conventional: Option<u64>,
    /// Simulation-count ratio (conventional / proposed).
    pub sim_ratio: Option<f64>,
    /// Estimated wall-clock ratio at the target accuracy.
    pub time_ratio: Option<f64>,
    /// Total wall-clock of the two runs \[s\].
    pub wall_proposed_s: f64,
    /// Total wall-clock of the conventional run \[s\].
    pub wall_conventional_s: f64,
}

fn trace_csv(trace: &ConvergenceTrace) -> String {
    let mut buf = Vec::new();
    trace.write_csv(&mut buf).expect("in-memory write");
    String::from_utf8(buf).expect("csv is utf8")
}

/// Wall-clock to reach a trace point, estimated by linear interpolation
/// over consumed Monte Carlo samples.
fn time_to_point(total: f64, trace: &ConvergenceTrace, target: f64) -> Option<f64> {
    let hit = trace.first_below_relative_error(target)?;
    let last = trace.last()?;
    Some(total * hit.samples as f64 / last.samples as f64)
}

fn main() {
    let quick = ecripse_bench::quick_mode();
    let (n_prop, n_conv, target) = if quick {
        (30_000, 20_000, 0.03)
    } else {
        (400_000, 260_000, 0.01)
    };
    println!("=== Fig. 6: proposed vs conventional [8] (RDF only) ===");
    println!(
        "budgets: proposed {} IS samples, conventional {} — target rel. err. {:.0}%\n",
        fmt_count(n_prop as u64),
        fmt_count(n_conv as u64),
        target * 100.0
    );
    let bench = SramReadBench::paper_cell();

    // Proposed.
    let mut cfg = paper_config(n_prop, 1);
    cfg.importance.trace_every = (n_prop / 200).max(1);
    let t = Instant::now();
    let (proposed, proposed_report) = Ecripse::new(cfg, bench.clone())
        .estimate_report()
        .expect("proposed run");
    let wall_proposed = t.elapsed().as_secs_f64();
    write_json("fig6_proposed_report.json", &proposed_report);
    println!(
        "proposed:     P_fail = {:.3e} (rel {:.4}) with {} sims, {} classified [{:.1} s]",
        proposed.p_fail,
        proposed.relative_error(),
        fmt_count(proposed.simulations),
        fmt_count(proposed.oracle_stats.classified),
        wall_proposed
    );
    write_csv("fig6_proposed.csv", &trace_csv(&proposed.trace));

    // Conventional [8].
    let mut cfg = paper_config(n_conv, 1);
    cfg.importance.trace_every = (n_conv / 200).max(1);
    let t = Instant::now();
    let conventional = SequentialImportanceSampling::new(cfg, bench)
        .estimate()
        .expect("conventional run");
    let wall_conventional = t.elapsed().as_secs_f64();
    println!(
        "conventional: P_fail = {:.3e} (rel {:.4}) with {} sims [{:.1} s]",
        conventional.p_fail,
        conventional.relative_error(),
        fmt_count(conventional.simulations),
        wall_conventional
    );
    write_csv("fig6_conventional.csv", &trace_csv(&conventional.trace));

    // Crossover accounting.
    let sims_proposed = proposed
        .trace
        .first_below_relative_error(target)
        .map(|p| p.simulations);
    let sims_conventional = conventional
        .trace
        .first_below_relative_error(target)
        .map(|p| p.simulations);
    let sim_ratio = match (sims_proposed, sims_conventional) {
        (Some(a), Some(b)) if a > 0 => Some(b as f64 / a as f64),
        _ => None,
    };
    let time_ratio = match (
        time_to_point(wall_proposed, &proposed.trace, target),
        time_to_point(wall_conventional, &conventional.trace, target),
    ) {
        (Some(a), Some(b)) if a > 0.0 => Some(b / a),
        _ => None,
    };

    println!();
    report_row(
        &format!("simulations to {:.0}% rel. err. (proposed)", target * 100.0),
        "~27k @1%",
        &sims_proposed.map_or("not reached".into(), fmt_count),
    );
    report_row(
        &format!(
            "simulations to {:.0}% rel. err. (conventional)",
            target * 100.0
        ),
        "~1M @1%",
        &sims_conventional.map_or("not reached".into(), fmt_count),
    );
    report_row(
        "simulation-count ratio",
        "36x",
        &sim_ratio.map_or("n/a".into(), |r| format!("{r:.1}x")),
    );
    report_row(
        "wall-clock speed-up",
        "15.6x",
        &time_ratio.map_or("n/a".into(), |r| format!("{r:.1}x")),
    );
    report_row(
        "agreement of the two estimates",
        "overlapping CIs",
        &format!("{:.3e} vs {:.3e}", proposed.p_fail, conventional.p_fail),
    );

    write_json(
        "fig6.json",
        &Fig6Summary {
            p_fail_proposed: proposed.p_fail,
            p_fail_conventional: conventional.p_fail,
            rel_err_target: target,
            sims_proposed,
            sims_conventional,
            sim_ratio,
            time_ratio,
            wall_proposed_s: wall_proposed,
            wall_conventional_s: wall_conventional,
        },
    );
}
