//! Records `BENCH_parallel.json`: wall-clock of the fig6/headline
//! RDF-only workload under the batched + parallel pipeline, comparing
//! the fixed-resolution cold path against the warm-started stack
//! (adaptive butterfly resolution + two-tier neighbour cache) and a
//! resident service resubmission served from the persistent verdict
//! store.
//!
//! ```text
//! cargo run --release -p ecripse-bench --bin bench_parallel \
//!     [--quick] [--threads N] [--check PATH]
//! ```
//!
//! Every configuration runs the same seed and must produce the same
//! `P_fail` and simulation count (the determinism contract); the binary
//! asserts this before writing the report. With `--check PATH` the run
//! instead compares its estimates and simulation counts against the
//! reference report at `PATH` (the committed `BENCH_parallel.json`) and
//! exits non-zero on any drift — the CI smoke job runs this in `--quick`
//! mode. The JSON lands in the repository root (next to the figure
//! outputs' `results/`), with the core count recorded so numbers from
//! different machines are not compared blindly.

use ecripse_bench::{fmt_count, paper_config, quick_mode};
use ecripse_core::bench::{SramReadBench, Testbench};
use ecripse_core::cache::{MemoCacheConfig, WarmBench, WarmCacheConfig};
use ecripse_core::ecripse::{Ecripse, EcripseConfig, EcripseResult};
use ecripse_core::scenario::{Scenario, SramScenarioBench};
use ecripse_core::telemetry::{MetricsRegistry, TelemetryObserver};
use ecripse_serve::shared::{tag_for, SharedBench, VerdictCache};
use ecripse_spice::testbench::BenchConfig;
use serde::{Deserialize, Serialize};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct ConfigReport {
    name: String,
    threads: usize,
    /// Whether the adaptive coarse-first butterfly policy was active.
    adaptive: bool,
    seconds: f64,
    p_fail: f64,
    simulations: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// `None` until the memo-cache has seen traffic (was the string
    /// `"NaN"` in schema v1 reports).
    cache_hit_rate: Option<f64>,
    /// Bisection iterations spent inside the circuit solver.
    newton_iters: u64,
    /// Operating-point curve solves (LU factorisations).
    factorisations: u64,
    /// Butterfly evaluations warm-started from a neighbour seed.
    warm_start_seeds: u64,
    /// Warm-cache exact-tier hits (0 for configs without the cache).
    warm_exact_hits: u64,
    /// Warm-cache neighbour-tier seeds offered.
    warm_seeded: u64,
    /// Raw simulator batches observed by the telemetry bridge.
    sim_batches: u64,
    /// Simulator-batch latency percentiles in seconds (0 when no
    /// batches were recorded).
    sim_batch_p50_s: f64,
    sim_batch_p90_s: f64,
    sim_batch_p99_s: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    workload: String,
    cores: usize,
    quick: bool,
    configs: Vec<ConfigReport>,
    /// Wall-clock ratio of the fixed-resolution cold path over the
    /// warm-started serial stack (adaptive + neighbour cache).
    speedup_batch_solver: f64,
    /// Wall-clock ratio of all-cores over serial, both warm-started.
    speedup_parallel_vs_serial: f64,
    /// Wall-clock ratio of the cold service run over resubmission
    /// against the snapshot-restored persistent verdict store.
    speedup_warm_serve: f64,
    note: String,
}

/// One measured configuration: wall-clock, estimate, and the full
/// counter set (memo-cache, solver effort, warm-cache tiers).
fn run_bench<B: Testbench>(
    name: &str,
    mut cfg: EcripseConfig,
    threads: usize,
    adaptive: bool,
    bench: B,
    warm: (u64, u64),
) -> ConfigReport {
    cfg.threads = threads;
    cfg.cache = MemoCacheConfig::default();
    // A per-config registry: the telemetry bridge times every raw
    // simulator batch, giving latency percentiles next to wall-clock.
    let registry = MetricsRegistry::new();
    let bridge = TelemetryObserver::new(&registry);
    let t = Instant::now();
    let res: EcripseResult = Ecripse::new(cfg, bench)
        .estimate_observed(&bridge)
        .expect("estimate");
    let seconds = t.elapsed().as_secs_f64();
    let batches = registry.histogram(
        "ecripse_sim_batch_seconds",
        "Wall-clock latency of one raw simulator batch",
    );
    let (p50, p90, p99) = batches.percentiles().unwrap_or((0.0, 0.0, 0.0));
    let stats = &res.oracle_stats;
    println!(
        "{name:<18} {seconds:>8.2} s   P_fail {:.4e}   {} sims   newton {}   warm seeds {}   exact hits {}",
        res.p_fail,
        fmt_count(res.simulations),
        fmt_count(stats.newton_iters),
        fmt_count(stats.warm_start_seeds),
        fmt_count(warm.0),
    );
    let memo_total = stats.cache_hits + stats.cache_misses;
    ConfigReport {
        name: name.to_string(),
        threads,
        adaptive,
        seconds,
        p_fail: res.p_fail,
        simulations: res.simulations,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_hit_rate: (memo_total > 0).then(|| stats.cache_hits as f64 / memo_total as f64),
        newton_iters: stats.newton_iters,
        factorisations: stats.factorisations,
        warm_start_seeds: stats.warm_start_seeds,
        warm_exact_hits: warm.0,
        warm_seeded: warm.1,
        sim_batches: batches.count(),
        sim_batch_p50_s: p50,
        sim_batch_p90_s: p90,
        sim_batch_p99_s: p99,
    }
}

/// The fixed-resolution reference bench: adaptive policy disabled, every
/// butterfly solved on the full grid at the legacy tolerance.
fn fixed_bench() -> SramReadBench {
    let mut config = BenchConfig::default();
    config.adaptive.enabled = false;
    SramReadBench::with_config(config)
}

/// The `--check PATH` argument, if present.
fn check_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--check" {
            return Some(a_next(&mut args));
        }
    }
    None
}

fn a_next(args: &mut std::env::Args) -> String {
    args.next()
        .unwrap_or_else(|| panic!("--check requires a reference report path"))
}

/// Compares the fresh measurement against the committed reference:
/// estimates and simulation counts must match bit-exactly per config
/// (wall-clock and latency fields are machine-dependent and ignored).
fn check_against(reference_path: &str, fresh: &Report) -> Result<(), String> {
    let text = std::fs::read_to_string(reference_path)
        .map_err(|e| format!("cannot read reference {reference_path}: {e}"))?;
    let reference: Report = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse reference {reference_path}: {e}"))?;
    let mut drift = Vec::new();
    for fresh_config in &fresh.configs {
        let Some(ref_config) = reference
            .configs
            .iter()
            .find(|c| c.name == fresh_config.name)
        else {
            drift.push(format!(
                "config {:?} missing from the reference report",
                fresh_config.name
            ));
            continue;
        };
        if fresh_config.p_fail.to_bits() != ref_config.p_fail.to_bits() {
            drift.push(format!(
                "{}: P_fail {} != reference {}",
                fresh_config.name, fresh_config.p_fail, ref_config.p_fail
            ));
        }
        if fresh_config.simulations != ref_config.simulations {
            drift.push(format!(
                "{}: {} simulations != reference {}",
                fresh_config.name, fresh_config.simulations, ref_config.simulations
            ));
        }
    }
    if reference.quick != fresh.quick {
        drift.push(format!(
            "mode mismatch: reference quick={}, this run quick={}",
            reference.quick, fresh.quick
        ));
    }
    if drift.is_empty() {
        Ok(())
    } else {
        Err(drift.join("\n"))
    }
}

fn main() -> ExitCode {
    let quick = quick_mode();
    let n_is = if quick { 30_000 } else { 400_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = paper_config(n_is, 1);
    println!(
        "=== Parallel-pipeline benchmark: fig6/headline RDF-only workload ({} IS samples, {} cores) ===",
        fmt_count(n_is as u64),
        cores
    );

    // 1. The cold reference: fixed-resolution butterflies, no caches
    //    beyond the per-run memo-cache every config shares.
    let serial_fixed = run_bench("serial_fixed", cfg, 1, false, fixed_bench(), (0, 0));

    // 2/3. The warm-started stack: adaptive coarse-first resolution plus
    //    the two-tier neighbour cache, serial and all-cores. The cache
    //    layers *below* the pipeline's counters, so the simulation
    //    counts must not move.
    let warm = WarmBench::new(SramReadBench::paper_cell(), WarmCacheConfig::default());
    let serial_warm = {
        let stats = {
            let report = run_bench("serial_warm", cfg, 1, true, &warm, (0, 0));
            let stats = warm.stats();
            ConfigReport {
                warm_exact_hits: stats.exact_hits,
                warm_seeded: stats.seeded,
                ..report
            }
        };
        warm.clear();
        stats
    };
    let all_cores_warm = {
        let report = run_bench("all_cores_warm", cfg, 0, true, &warm, (0, 0));
        let stats = warm.stats();
        ConfigReport {
            warm_exact_hits: stats.exact_hits,
            warm_seeded: stats.seeded,
            ..report
        }
    };

    // 4. The resident-service path: a cold run populates the shared
    //    verdict cache, the snapshot round-trips through the persistent
    //    store, and the resubmission is served from the restored cache.
    let store = Arc::new(VerdictCache::new(MemoCacheConfig::default()));
    let tag = tag_for(&[0x6669_6736]);
    let cold_serve = run_bench(
        "cold_serve",
        cfg,
        0,
        true,
        SharedBench::new(SramReadBench::paper_cell(), tag, Arc::clone(&store), true),
        (0, 0),
    );
    let snapshot = std::env::temp_dir().join(format!(
        "ecripse-bench-verdicts-{}.json",
        std::process::id()
    ));
    let saved = store.save_snapshot(&snapshot).expect("save verdict store");
    let restored = Arc::new(VerdictCache::new(MemoCacheConfig::default()));
    let loaded = restored
        .load_snapshot(&snapshot)
        .expect("load verdict store");
    assert_eq!(saved, loaded, "the snapshot must round-trip losslessly");
    let _ = std::fs::remove_file(&snapshot);
    let warm_serve = {
        let report = run_bench(
            "warm_serve",
            cfg,
            0,
            true,
            SharedBench::new(
                SramReadBench::paper_cell(),
                tag,
                Arc::clone(&restored),
                true,
            ),
            (0, 0),
        );
        ConfigReport {
            warm_exact_hits: restored.hits(),
            warm_seeded: 0,
            ..report
        }
    };

    // 5. One non-default scenario: the hold-snm indicator through the
    //    same pipeline. Its estimate answers a different question, so it
    //    stays out of the cross-config invariance loop below; the
    //    `--check` pass still pins its own estimate bit-exactly.
    let hold_snm = {
        let mut hold_cfg = cfg;
        hold_cfg.scenario = Scenario::HoldSnm;
        hold_cfg.initial.r_max = hold_cfg
            .initial
            .r_max
            .max(Scenario::HoldSnm.recommended_r_max());
        run_bench(
            "hold_snm_scenario",
            hold_cfg,
            0,
            true,
            SramScenarioBench::paper_cell(Scenario::HoldSnm),
            (0, 0),
        )
    };

    let configs = vec![
        serial_fixed,
        serial_warm,
        all_cores_warm,
        cold_serve,
        warm_serve,
        hold_snm,
    ];

    // The determinism contract: thread count, the adaptive resolution
    // policy, and every cache tier must not change the estimate or the
    // simulation count. The hold-snm scenario (last config) estimates a
    // different indicator and is exempt.
    for c in &configs[1..5] {
        assert_eq!(
            c.p_fail.to_bits(),
            configs[0].p_fail.to_bits(),
            "P_fail must be invariant ({} vs serial_fixed)",
            c.name
        );
        assert_eq!(
            c.simulations, configs[0].simulations,
            "simulation count must be invariant ({} vs serial_fixed)",
            c.name
        );
    }
    assert!(
        configs[1].warm_exact_hits + configs[1].warm_seeded > 0,
        "the warm cache must actually engage on this workload"
    );
    assert!(
        configs[4].warm_exact_hits > 0,
        "the restored store must serve the resubmission"
    );
    assert!(
        configs[5].p_fail.to_bits() != configs[0].p_fail.to_bits(),
        "hold-snm estimates a different indicator and must not echo the read-snm number"
    );

    let speedup_batch_solver = configs[0].seconds / configs[1].seconds;
    let speedup_parallel = configs[1].seconds / configs[2].seconds;
    let speedup_warm_serve = configs[3].seconds / configs[4].seconds;
    println!(
        "\nwarm vs fixed (serial): {speedup_batch_solver:.2}x   all-cores vs serial: \
         {speedup_parallel:.2}x   store-warmed resubmission: {speedup_warm_serve:.2}x"
    );

    let report = Report {
        workload: format!(
            "fig6/headline RDF-only estimate, paper_config({n_is}, 1), SramReadBench::paper_cell()"
        ),
        cores,
        quick,
        configs,
        speedup_batch_solver,
        speedup_parallel_vs_serial: speedup_parallel,
        speedup_warm_serve,
        note: format!(
            "Measured on a {cores}-core machine. The parallel-vs-serial ratio is \
             bounded by the core count; on a single core it measures pure batching \
             overhead. serial_fixed disables the adaptive butterfly policy and all \
             warm-start caches; warm_serve resubmits against a verdict cache \
             restored from the persistent snapshot. P_fail and simulation counts \
             are asserted bit-identical across all read-snm configurations; \
             hold_snm_scenario runs the hold-retention indicator through the same \
             pipeline and is pinned by --check but exempt from cross-config \
             invariance."
        ),
    };

    if let Some(reference) = check_path() {
        return match check_against(&reference, &report) {
            Ok(()) => {
                println!("check passed: estimates match {reference}");
                ExitCode::SUCCESS
            }
            Err(drift) => {
                eprintln!("benchmark drift against {reference}:\n{drift}");
                ExitCode::FAILURE
            }
        };
    }
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    eprintln!("wrote BENCH_parallel.json");
    ExitCode::SUCCESS
}
