//! Records `BENCH_parallel.json`: wall-clock of the fig6/headline
//! RDF-only workload under the batched + parallel pipeline, serial vs
//! all-cores and memo-cache on vs off.
//!
//! ```text
//! cargo run --release -p ecripse-bench --bin bench_parallel [--quick] [--threads N]
//! ```
//!
//! Every configuration runs the same seed and must produce the same
//! `P_fail` and simulation count (the determinism contract); the binary
//! asserts this before writing the report. The JSON lands in the
//! repository root (next to the figure outputs' `results/`), with the
//! core count recorded so numbers from different machines are not
//! compared blindly.

use ecripse_bench::{fmt_count, paper_config, quick_mode};
use ecripse_core::bench::SramReadBench;
use ecripse_core::cache::MemoCacheConfig;
use ecripse_core::ecripse::{Ecripse, EcripseConfig, EcripseResult};
use ecripse_core::telemetry::{MetricsRegistry, TelemetryObserver};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ConfigReport {
    name: &'static str,
    threads: usize,
    cache: bool,
    seconds: f64,
    p_fail: f64,
    simulations: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    /// Raw simulator batches observed by the telemetry bridge.
    sim_batches: u64,
    /// Simulator-batch latency percentiles in seconds (0 when no
    /// batches were recorded).
    sim_batch_p50_s: f64,
    sim_batch_p90_s: f64,
    sim_batch_p99_s: f64,
}

#[derive(Serialize)]
struct Report {
    workload: String,
    cores: usize,
    quick: bool,
    configs: Vec<ConfigReport>,
    speedup_parallel_vs_serial: f64,
    speedup_cache_on_vs_off: f64,
    note: String,
}

fn run(name: &'static str, mut cfg: EcripseConfig, threads: usize, cache: bool) -> ConfigReport {
    cfg.threads = threads;
    cfg.cache = MemoCacheConfig {
        enabled: cache,
        ..MemoCacheConfig::default()
    };
    // A per-config registry: the telemetry bridge times every raw
    // simulator batch, giving latency percentiles next to wall-clock.
    let registry = MetricsRegistry::new();
    let bridge = TelemetryObserver::new(&registry);
    let t = Instant::now();
    let res: EcripseResult = Ecripse::new(cfg, SramReadBench::paper_cell())
        .estimate_observed(&bridge)
        .expect("estimate");
    let seconds = t.elapsed().as_secs_f64();
    let batches = registry.histogram(
        "ecripse_sim_batch_seconds",
        "Wall-clock latency of one raw simulator batch",
    );
    let (p50, p90, p99) = batches.percentiles().unwrap_or((0.0, 0.0, 0.0));
    println!(
        "{name:<24} {seconds:>8.2} s   P_fail {:.4e}   {} sims   cache {}/{}   batch p50/p99 {:.1e}/{:.1e} s",
        res.p_fail,
        fmt_count(res.simulations),
        res.oracle_stats.cache_hits,
        res.oracle_stats.cache_misses,
        p50,
        p99,
    );
    ConfigReport {
        name,
        threads,
        cache,
        seconds,
        p_fail: res.p_fail,
        simulations: res.simulations,
        cache_hits: res.oracle_stats.cache_hits,
        cache_misses: res.oracle_stats.cache_misses,
        cache_hit_rate: res.oracle_stats.cache_hit_rate(),
        sim_batches: batches.count(),
        sim_batch_p50_s: p50,
        sim_batch_p90_s: p90,
        sim_batch_p99_s: p99,
    }
}

fn main() {
    let quick = quick_mode();
    let n_is = if quick { 30_000 } else { 400_000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = paper_config(n_is, 1);
    println!(
        "=== Parallel-pipeline benchmark: fig6/headline RDF-only workload ({} IS samples, {} cores) ===",
        fmt_count(n_is as u64),
        cores
    );

    let configs = vec![
        run("serial_no_cache", cfg, 1, false),
        run("serial_cache", cfg, 1, true),
        run("all_cores_cache", cfg, 0, true),
    ];

    // The determinism contract: thread count and cache must not change
    // the estimate or the simulation count.
    for c in &configs[1..] {
        assert_eq!(c.p_fail, configs[0].p_fail, "P_fail must be invariant");
        assert_eq!(
            c.simulations, configs[0].simulations,
            "simulation count must be invariant"
        );
    }

    let speedup_parallel = configs[1].seconds / configs[2].seconds;
    let speedup_cache = configs[0].seconds / configs[1].seconds;
    println!(
        "\nall-cores vs serial: {speedup_parallel:.2}x   cache on vs off: {speedup_cache:.2}x"
    );

    let report = Report {
        workload: format!(
            "fig6/headline RDF-only estimate, paper_config({n_is}, 1), SramReadBench::paper_cell()"
        ),
        cores,
        quick,
        configs,
        speedup_parallel_vs_serial: speedup_parallel,
        speedup_cache_on_vs_off: speedup_cache,
        note: format!(
            "Measured on a {cores}-core machine. The parallel-vs-serial ratio is \
             bounded by the core count; on a single core it measures pure batching \
             overhead. P_fail and simulation counts are asserted identical across \
             all configurations (bit-exact determinism)."
        ),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialise report");
    std::fs::write("BENCH_parallel.json", json).expect("write BENCH_parallel.json");
    eprintln!("wrote BENCH_parallel.json");
}
