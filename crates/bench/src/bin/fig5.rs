//! Fig. 5 — butterfly curves for a non-defective and a defective cell.
//!
//! Writes `results/fig5_nominal.csv` and `results/fig5_defective.csv`
//! with the two read transfer curves of each cell, plus the extracted
//! noise margins on stdout. The defective cell carries the driver
//! imbalance that flips the sign of the read margin, matching the
//! negative-RNM example of Fig. 5(c).

use ecripse_bench::write_csv;
use ecripse_spice::butterfly::Butterfly;
use ecripse_spice::snm::read_noise_margin;
use ecripse_spice::sram::Sram6T;
use std::fmt::Write as _;

fn dump(name: &str, cell: &Sram6T) {
    let b = Butterfly::sample(cell, &cell.read_bias(), 201);
    let m = read_noise_margin(&b);
    println!(
        "{name}: snm_low = {:+.1} mV, snm_high = {:+.1} mV, RNM = {:+.1} mV ({})",
        m.snm_low * 1e3,
        m.snm_high * 1e3,
        m.rnm * 1e3,
        if m.rnm >= 0.0 {
            "read-stable"
        } else {
            "READ FAILURE"
        }
    );
    let mut csv = String::from("v_in,curve_a_vqb,curve_b_vq\n");
    for ((g, a), bb) in b.grid.iter().zip(&b.curve_a).zip(&b.curve_b) {
        writeln!(csv, "{g},{a},{bb}").expect("string write");
    }
    write_csv(&format!("fig5_{name}.csv"), &csv);
}

fn main() {
    println!("=== Fig. 5: butterfly curves and read noise margin ===\n");
    let nominal = Sram6T::paper_cell();
    dump("nominal", &nominal);

    // A mismatch beyond the failure boundary: weakened right driver,
    // strengthened left driver (the worst-case read direction).
    let defective = nominal.with_delta_vth(&[0.0, -0.16, 0.0, 0.16, 0.0, 0.0]);
    dump("defective", &defective);
}
