//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. classifier on/off (the Fig. 6 axis, at a fixed budget);
//! 2. ensemble size — 1 filter (degeneracy-prone) vs 4;
//! 3. mixture kernel width σ_kernel;
//! 4. access-transistor RTN excluded (default) vs included;
//! 5. read vs write failure mode (extension).
//!
//! All runs use reduced budgets: this binary is about *directions*, not
//! publication numbers. Results go to stdout and `results/ablation.json`.

use ecripse_bench::{paper_config, write_json};
use ecripse_core::bench::{SramReadBench, SramWriteBench};
use ecripse_core::ecripse::Ecripse;
use ecripse_core::rtn_source::SramRtn;
use ecripse_rtn::model::RtnCellModel;
use serde::{Deserialize, Serialize};

#[derive(Debug, Serialize, Deserialize)]
struct Row {
    name: String,
    p_fail: f64,
    rel_err: f64,
    simulations: u64,
}

fn row(name: &str, p_fail: f64, rel_err: f64, simulations: u64, rows: &mut Vec<Row>) {
    println!("{name:<44} P={p_fail:>10.3e}  rel={rel_err:>6.3}  sims={simulations}");
    rows.push(Row {
        name: name.into(),
        p_fail,
        rel_err,
        simulations,
    });
}

fn main() {
    let quick = ecripse_bench::quick_mode();
    let n_is = if quick { 3_000 } else { 20_000 };
    let bench = SramReadBench::paper_cell();
    let mut rows = Vec::new();

    println!("=== Ablations (RDF-only budget {n_is} IS samples) ===\n");

    // 1. classifier on/off.
    let res = Ecripse::new(paper_config(n_is, 1), bench.clone())
        .estimate()
        .expect("with classifier");
    row(
        "classifier ON (default)",
        res.p_fail,
        res.relative_error(),
        res.simulations,
        &mut rows,
    );

    let mut cfg = paper_config(n_is, 1);
    cfg.oracle.svm = None;
    let res = Ecripse::new(cfg, bench.clone())
        .estimate()
        .expect("without classifier");
    row(
        "classifier OFF (conventional [8])",
        res.p_fail,
        res.relative_error(),
        res.simulations,
        &mut rows,
    );

    // 2. ensemble size.
    for n_filters in [1usize, 4] {
        let mut cfg = paper_config(n_is, 1);
        cfg.ensemble.n_filters = n_filters;
        // Keep total particles constant so only the resampling topology
        // changes.
        cfg.ensemble.filter.n_particles = 400 / n_filters;
        let res = Ecripse::new(cfg, bench.clone())
            .estimate()
            .expect("filters run");
        row(
            &format!("{n_filters} filter(s), 400 particles total"),
            res.p_fail,
            res.relative_error(),
            res.simulations,
            &mut rows,
        );
    }

    // 3. kernel width.
    for sigma in [0.3, 0.8, 1.2] {
        let mut cfg = paper_config(n_is, 1);
        cfg.sigma_kernel = sigma;
        let res = Ecripse::new(cfg, bench.clone())
            .estimate()
            .expect("kernel run");
        row(
            &format!("sigma_kernel = {sigma}"),
            res.p_fail,
            res.relative_error(),
            res.simulations,
            &mut rows,
        );
    }

    // 4. access RTN in vs out, at the worst-case duty.
    let sigmas = bench.sigmas();
    let cfg = paper_config(n_is.min(5_000), 20);
    let res = Ecripse::with_rtn(cfg, bench.clone(), SramRtn::paper_model(0.0, sigmas))
        .estimate()
        .expect("rtn default");
    row(
        "RTN α=0, access RTN excluded (default)",
        res.p_fail,
        res.relative_error(),
        res.simulations,
        &mut rows,
    );

    let with_access = SramRtn::new(RtnCellModel::paper_model_with_access_rtn(0.0), sigmas);
    let res = Ecripse::with_rtn(cfg, bench.clone(), with_access)
        .estimate()
        .expect("rtn with access");
    row(
        "RTN α=0, access RTN included (ablation)",
        res.p_fail,
        res.relative_error(),
        res.simulations,
        &mut rows,
    );

    // 4b. Eq. 10 occupancy convention: as printed vs physical dwell
    // fraction (see DESIGN.md).
    use ecripse_rtn::duty::CellDutyMap;
    use ecripse_rtn::model::OccupancyConvention;
    use ecripse_rtn::trap::TrapTimeConstants;
    let dwell = RtnCellModel::with_convention(
        CellDutyMap::new(0.0),
        TrapTimeConstants::paper_values(),
        false,
        OccupancyConvention::DwellFraction,
    );
    let res = Ecripse::with_rtn(cfg, bench.clone(), SramRtn::new(dwell, sigmas))
        .estimate()
        .expect("rtn dwell convention");
    row(
        "RTN α=0, occupancy = dwell fraction (ablation)",
        res.p_fail,
        res.relative_error(),
        res.simulations,
        &mut rows,
    );

    // 4c. per-trap amplitude model: fixed quantum (paper Eq. 9) vs
    // exponential amplitudes with the same mean.
    use ecripse_rtn::model::AmplitudeModel;
    let exp_amp = RtnCellModel::paper_model(0.0).with_amplitude_model(AmplitudeModel::Exponential);
    let res = Ecripse::with_rtn(cfg, bench.clone(), SramRtn::new(exp_amp, sigmas))
        .estimate()
        .expect("rtn exponential amplitudes");
    row(
        "RTN α=0, exponential trap amplitudes (ablation)",
        res.p_fail,
        res.relative_error(),
        res.simulations,
        &mut rows,
    );

    // 5. write-failure extension.
    let wbench = SramWriteBench::paper_cell();
    let mut cfg = paper_config(n_is, 1);
    // The write boundary sits farther out; widen the search radius.
    cfg.initial.r_max = 14.0;
    match Ecripse::new(cfg, wbench).estimate() {
        Ok(res) => row(
            "write-failure probability (extension)",
            res.p_fail,
            res.relative_error(),
            res.simulations,
            &mut rows,
        ),
        Err(e) => println!("write-failure run: {e} (boundary beyond search radius at this V_DD)"),
    }

    write_json("ablation.json", &rows);
}
