//! Fig. 8 — failure probability versus duty ratio α, with shared initial
//! particles, plus the RDF-only reference (the paper's 1.33e-4) and the
//! RTN degradation factor (the paper's "six times").
//!
//! Outputs: `results/fig8.csv` (α, P_fail, CI), `results/fig8.json`, and
//! `results/fig8_reports.json` (structured observability reports — the
//! RDF-only reference plus one `RunReport` per α point).

use ecripse_bench::{fmt_count, paper_config, report_row, write_csv, write_json};
use ecripse_core::bench::SramReadBench;
use ecripse_core::sweep::{DutySweep, SweepResult};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Summary persisted for the headline binary.
#[derive(Debug, Serialize, Deserialize)]
pub struct Fig8Summary {
    /// Full sweep outcome.
    pub sweep: SweepResult,
    /// Worst-case RTN degradation factor vs RDF-only.
    pub degradation_factor: f64,
    /// α of the sweep minimum.
    pub alpha_at_minimum: f64,
    /// All α whose confidence interval overlaps the minimum's — the
    /// statistically indistinguishable bottom of the curve.
    pub minimum_plateau: Vec<f64>,
    /// Bilateral-symmetry metric: mean |P(α) − P(1−α)| / mean P.
    pub asymmetry: f64,
    /// Extrapolated naive-MC cost of the whole figure (trials).
    pub naive_equivalent_trials: f64,
    /// Speed-up of the sweep vs that extrapolated naive cost.
    pub sweep_speedup: f64,
}

fn main() {
    let quick = ecripse_bench::quick_mode();
    let n_is = if quick { 1_500 } else { 12_000 };
    println!("=== Fig. 8: failure probability vs duty ratio (V_DD nominal) ===\n");

    let cfg = paper_config(n_is, 20);
    let bench = SramReadBench::paper_cell();
    let sweep = DutySweep::paper_grid(cfg, bench);

    let t = Instant::now();
    let (result, reports) = sweep.run_with_reports().expect("duty sweep");
    let wall = t.elapsed().as_secs_f64();

    println!("{:<8} {:>12} {:>12} {:>10}", "α", "P_fail", "±CI95", "sims");
    for p in &result.points {
        println!(
            "{:<8} {:>12.3e} {:>12.1e} {:>10}",
            p.alpha,
            p.p_fail,
            p.ci95_half_width,
            fmt_count(p.simulations)
        );
    }
    println!(
        "\nRDF-only reference: {:.3e} ± {:.1e}   (paper: 1.33e-4)",
        result.p_fail_rdf_only, result.rdf_only_ci95
    );

    // Shape metrics.
    let worst = result.worst().expect("non-empty sweep");
    let best = result.best().expect("non-empty sweep");
    let mean_p: f64 =
        result.points.iter().map(|p| p.p_fail).sum::<f64>() / result.points.len() as f64;
    let mut asym = 0.0;
    let mut pairs = 0;
    for p in &result.points {
        if let Some(q) = result
            .points
            .iter()
            .find(|q| (q.alpha - (1.0 - p.alpha)).abs() < 1e-9)
        {
            asym += (p.p_fail - q.p_fail).abs();
            pairs += 1;
        }
    }
    let asymmetry = asym / pairs as f64 / mean_p;

    // The bottom of the curve is flat; report every α statistically
    // indistinguishable from the argmin rather than a noise-picked point.
    let minimum_plateau: Vec<f64> = result
        .points
        .iter()
        .filter(|p| p.p_fail - p.ci95_half_width <= best.p_fail + best.ci95_half_width)
        .map(|p| p.alpha)
        .collect();

    // The paper's 5500× arithmetic, made precise: for each bias point,
    // the number of naive trials needed to match the *achieved* relative
    // error is n = (1.96/rel)²·(1−p)/p; the speed-up is the summed naive
    // cost over the measured simulation total.
    let naive_total: f64 = result
        .points
        .iter()
        .map(|p| {
            let rel = (p.ci95_half_width / p.p_fail).max(1e-6);
            (1.96 / rel).powi(2) * (1.0 - p.p_fail) / p.p_fail
        })
        .sum();
    let speedup = naive_total / result.total_simulations as f64;

    println!();
    report_row(
        "minimum of the sweep",
        "α = 0.5",
        &format!("α = {} (plateau: {minimum_plateau:?})", best.alpha),
    );
    report_row(
        "bilateral symmetry (relative)",
        "\"almost symmetric\"",
        &format!("{:.1}% mean |P(α)−P(1−α)|", asymmetry * 100.0),
    );
    report_row(
        "worst-case RTN degradation",
        "6x",
        &format!(
            "{:.1}x at α = {}",
            result.rtn_degradation_factor(),
            worst.alpha
        ),
    );
    report_row(
        "total simulations for the figure",
        "~2e5",
        &fmt_count(result.total_simulations),
    );
    report_row(
        "speed-up vs extrapolated naive sweep",
        ">5500x",
        &format!("{speedup:.0}x"),
    );
    println!("\nsweep wall-clock: {wall:.0} s");

    let mut csv = Vec::new();
    result.write_csv(&mut csv).expect("in-memory write");
    write_csv("fig8.csv", &String::from_utf8(csv).expect("utf8"));
    write_json("fig8_reports.json", &reports);
    write_json(
        "fig8.json",
        &Fig8Summary {
            degradation_factor: result.rtn_degradation_factor(),
            alpha_at_minimum: best.alpha,
            minimum_plateau,
            asymmetry,
            naive_equivalent_trials: naive_total,
            sweep_speedup: speedup,
            sweep: result,
        },
    );
}
