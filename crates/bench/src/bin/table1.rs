//! Table I — experimental conditions, plus every derived quantity the
//! reproduction actually uses (whitening sigmas, trap counts, single-trap
//! quanta, and the sensitivity calibration κ).

use ecripse_rtn::model::RtnCellModel;
use ecripse_rtn::trap::TrapTimeConstants;
use ecripse_spice::ptm::{
    paper_geometry, ptm16_hp_nmos, ptm16_hp_pmos, DeviceRole, A_VTH, A_VTH_EFFECTIVE, COX,
    SENSITIVITY_CALIBRATION, TRAP_DENSITY, VDD_NOMINAL,
};
use ecripse_spice::sram::CellDevice;

fn main() {
    println!("=== Table I: experimental conditions (as implemented) ===\n");

    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "", "Load (Li)", "Driver(Di)", "Access(Ai)"
    );
    let geo = |r| paper_geometry(r);
    let (l, d, a) = (
        geo(DeviceRole::Load),
        geo(DeviceRole::Driver),
        geo(DeviceRole::Access),
    );
    println!(
        "{:<28} {:>10.0} {:>10.0} {:>10.0}",
        "Channel width [nm]",
        l.width * 1e9,
        d.width * 1e9,
        a.width * 1e9
    );
    println!(
        "{:<28} {:>10.0} {:>10.0} {:>10.0}",
        "Channel length [nm]",
        l.length * 1e9,
        d.length * 1e9,
        a.length * 1e9
    );
    println!(
        "{:<28} {:>10}",
        "A_VTH [mV·nm] (Table I)",
        A_VTH / 1e-3 / 1e-9
    );
    println!(
        "{:<28} {:>10.2}  (κ = {} — EKV-sensitivity calibration, see DESIGN.md)",
        "A_VTH effective [mV·nm]",
        A_VTH_EFFECTIVE / 1e-3 / 1e-9,
        SENSITIVITY_CALIBRATION
    );
    println!("{:<28} {:>10}", "t_ox [nm]", 0.95);
    println!("{:<28} {:>10.3}", "C_ox [F/m²] (derived)", COX);
    println!("{:<28} {:>10.0e}", "λ trap density [m⁻²]", TRAP_DENSITY);
    println!("{:<28} {:>10}", "V_DD nominal [V]", VDD_NOMINAL);

    let t = TrapTimeConstants::paper_values();
    println!("\nTrap time constants [s]:");
    println!(
        "  τe_on = {}   τe_off = {}   τc_on = {}   τc_off = {}",
        t.tau_e_on, t.tau_e_off, t.tau_c_on, t.tau_c_off
    );

    println!("\nCompact-model cards (EKV-style fit to PTM 16 nm HP):");
    for card in [ptm16_hp_nmos(), ptm16_hp_pmos()] {
        println!(
            "  {}: vth0 = {} V, kp = {:.1e} A/V², n = {}, λ_clm = {}, DIBL = {} V/V",
            card.kind, card.vth0, card.kp, card.slope_n, card.lambda, card.dibl
        );
    }

    println!("\nDerived per-device quantities (canonical order):");
    println!(
        "{:<6} {:>14} {:>14} {:>16}",
        "dev", "σ_RDF [mV]", "mean traps", "ΔVth/trap [mV]"
    );
    for dev in CellDevice::ALL {
        let g = paper_geometry(dev.role());
        println!(
            "{:<6} {:>14.2} {:>14.2} {:>16.2}",
            dev.to_string(),
            g.pelgrom_sigma(A_VTH_EFFECTIVE) * 1e3,
            g.mean_traps(TRAP_DENSITY),
            SENSITIVITY_CALIBRATION * g.single_trap_dvth(COX) * 1e3,
        );
    }

    println!("\nRTN Poisson means at selected duty ratios (access RTN excluded —");
    println!("see DESIGN.md; the smallest device holds 1.92 traps on average):");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "α", "PL", "NL", "PR", "NR", "AL", "AR"
    );
    for alpha in [0.0, 0.3, 0.5, 0.7, 1.0] {
        let m = RtnCellModel::paper_model(alpha);
        let means = m.devices().map(|d| d.poisson_mean);
        println!(
            "{:<8} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            alpha, means[0], means[1], means[2], means[3], means[4], means[5]
        );
    }
}
