//! Fig. 4 — particle-filter failure-region tracking in a 2-D slice.
//!
//! The paper illustrates the filter on a two-dimensional example
//! (ΔV_TH1 vs ΔV_TH2). We restrict the real cell's variability space to
//! the two driver transistors (the dominant read-stability axes), run the
//! full ECRIPSE stage 1 with particle recording, and dump one CSV per
//! iteration: `results/fig4_iter<k>.csv` with `x, y` particle positions.
//! Iteration 0 shows the boundary-bisection initialisation (Fig. 4(a));
//! later iterations show the cloud tightening onto the two failure lobes
//! near the origin (Fig. 4(c)).

use ecripse_bench::{paper_config, write_csv};
use ecripse_core::bench::{SramReadBench, Testbench};
use ecripse_core::ecripse::Ecripse;
use std::fmt::Write as _;

/// The cell restricted to driver-only variability (2-D slice).
struct DriverSlice {
    inner: SramReadBench,
}

impl Testbench for DriverSlice {
    fn dim(&self) -> usize {
        2
    }

    fn fails(&self, z: &[f64]) -> bool {
        // Canonical order: [PL, NL, PR, NR, AL, AR]; the slice drives the
        // two NMOS pull-downs.
        self.inner.fails(&[0.0, z[0], 0.0, z[1], 0.0, 0.0])
    }
}

fn main() {
    println!("=== Fig. 4: particle filter tracking the failure region (2-D slice) ===\n");
    let quick = ecripse_bench::quick_mode();
    let mut cfg = paper_config(if quick { 500 } else { 2000 }, 1);
    cfg.record_particles = true;
    cfg.iterations = if quick { 5 } else { 10 };

    let bench = DriverSlice {
        inner: SramReadBench::paper_cell(),
    };
    let run = Ecripse::new(cfg, bench);
    let res = run.estimate().expect("2-D slice estimation");

    for (k, snapshot) in res.particle_history.iter().enumerate() {
        let mut csv = String::from("dvth1_sigma,dvth2_sigma\n");
        for p in snapshot {
            writeln!(csv, "{},{}", p[0], p[1]).expect("string write");
        }
        write_csv(&format!("fig4_iter{k}.csv"), &csv);
    }

    // Quantify the convergence the figure shows: mean radius shrinks as
    // particles concentrate at the most probable failure points, and both
    // half-planes (lobes) stay populated.
    for (k, snapshot) in res.particle_history.iter().enumerate() {
        let mean_r = snapshot
            .iter()
            .map(|p| (p[0] * p[0] + p[1] * p[1]).sqrt())
            .sum::<f64>()
            / snapshot.len() as f64;
        let lobe1 = snapshot.iter().filter(|p| p[1] > p[0]).count();
        println!(
            "iteration {k:>2}: mean radius = {mean_r:.2} σ, lobe split = {}/{}",
            lobe1,
            snapshot.len() - lobe1
        );
    }
    println!(
        "\n2-D slice failure probability: {:.3e} (±{:.1e}), {} simulations",
        res.p_fail, res.ci95_half_width, res.simulations
    );
}
