//! The paper's headline numbers, side by side with what this
//! reproduction measures. Reads the JSON written by `fig6`, `fig7` and
//! `fig8` (run those first; any missing file is reported as such).

use ecripse_bench::{read_json, report_row};
use serde_json::Value;

fn get(v: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p)?;
    }
    cur.as_f64()
}

fn main() {
    println!("=== ECRIPSE reproduction: paper vs measured ===\n");

    match read_json::<Value>("fig6.json") {
        Some(v) => {
            report_row(
                "Fig 6: simulation reduction vs conventional [8]",
                "36x",
                &get(&v, &["sim_ratio"]).map_or("n/a".into(), |r| format!("{r:.1}x")),
            );
            report_row(
                "Fig 6: wall-clock speed-up vs conventional [8]",
                "15.6x",
                &get(&v, &["time_ratio"]).map_or("n/a".into(), |r| format!("{r:.1}x")),
            );
            report_row(
                "Fig 6: RDF-only P_fail",
                "1.2-1.4e-4",
                &get(&v, &["p_fail_proposed"]).map_or("n/a".into(), |p| format!("{p:.3e}")),
            );
        }
        None => {
            println!("fig6.json missing — run `cargo run --release -p ecripse-bench --bin fig6`")
        }
    }

    match read_json::<Value>("fig7.json") {
        Some(v) => {
            report_row(
                "Fig 7: P_fail at 0.5 V, α=0.3 (with RTN)",
                "~7.5e-3",
                &get(&v, &["proposed_a03"]).map_or("n/a".into(), |p| format!("{p:.3e}")),
            );
            report_row(
                "Fig 7: speed-up vs naive MC",
                "~40x",
                &get(&v, &["naive_speedup"]).map_or("n/a".into(), |r| format!("{r:.0}x")),
            );
            let a03 = get(&v, &["sims_a03"]);
            let a05 = get(&v, &["sims_a05"]);
            report_row(
                "Fig 7: α=0.5 sims relative to α=0.3 (shared init)",
                "~0.5x",
                &match (a03, a05) {
                    (Some(a), Some(b)) if a > 0.0 => format!("{:.2}x", b / a),
                    _ => "n/a".into(),
                },
            );
        }
        None => {
            println!("fig7.json missing — run `cargo run --release -p ecripse-bench --bin fig7`")
        }
    }

    match read_json::<Value>("fig8.json") {
        Some(v) => {
            report_row(
                "Fig 8: worst-case RTN degradation",
                "6x",
                &get(&v, &["degradation_factor"]).map_or("n/a".into(), |r| format!("{r:.1}x")),
            );
            let plateau = v
                .get("minimum_plateau")
                .and_then(|p| p.as_array())
                .map(|p| {
                    p.iter()
                        .filter_map(|x| x.as_f64())
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            report_row(
                "Fig 8: sweep minimum",
                "α = 0.5",
                &get(&v, &["alpha_at_minimum"]).map_or("n/a".into(), |a| {
                    format!("α = {a} (flat plateau: {{{plateau}}})")
                }),
            );
            report_row(
                "Fig 8: speed-up vs extrapolated naive sweep",
                ">5500x",
                &get(&v, &["sweep_speedup"]).map_or("n/a".into(), |r| format!("{r:.0}x")),
            );
            report_row(
                "Fig 8: RDF-only reference",
                "1.33e-4",
                &get(&v, &["sweep", "p_fail_rdf_only"])
                    .map_or("n/a".into(), |p| format!("{p:.3e}")),
            );
        }
        None => {
            println!("fig8.json missing — run `cargo run --release -p ecripse-bench --bin fig8`")
        }
    }
}
