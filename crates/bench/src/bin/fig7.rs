//! Fig. 7 — proposed method vs naive Monte Carlo with RTN, at the
//! lowered 0.5 V supply (so naive converges), for duty ratios α = 0.3
//! (panel a) and α = 0.5 (panel b, sharing the initial particles of the
//! first run and therefore needing far fewer simulations).
//!
//! Outputs: `results/fig7_naive_a03.csv`, `results/fig7_proposed_a03.csv`,
//! `results/fig7_proposed_a05.csv`, `results/fig7.json` and
//! `results/fig7_reports.json` (structured observability reports, one
//! per α point).

use ecripse_bench::{fmt_count, paper_config, report_row, write_csv, write_json};
use ecripse_core::baseline::naive::{naive_monte_carlo, NaiveConfig};
use ecripse_core::bench::SramReadBench;
use ecripse_core::ecripse::Ecripse;
use ecripse_core::observe::RunRecorder;
use ecripse_core::rtn_source::SramRtn;
use ecripse_core::trace::ConvergenceTrace;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Summary persisted for the headline binary.
#[derive(Debug, Serialize, Deserialize)]
pub struct Fig7Summary {
    /// Supply voltage of the experiment.
    pub vdd: f64,
    /// Naive estimate at α = 0.3 with its 95 % bounds.
    pub naive_p_fail: f64,
    /// Naive lower bound.
    pub naive_lo: f64,
    /// Naive upper bound.
    pub naive_hi: f64,
    /// Naive trials.
    pub naive_samples: u64,
    /// Proposed estimate at α = 0.3.
    pub proposed_a03: f64,
    /// Proposed estimate at α = 0.5.
    pub proposed_a05: f64,
    /// Relative-error target for the sims comparison.
    pub rel_err_target: f64,
    /// Simulations to target, α = 0.3 (includes initialisation).
    pub sims_a03: Option<u64>,
    /// Simulations to target, α = 0.5 (shared initialisation).
    pub sims_a05: Option<u64>,
    /// Naive-vs-proposed simulation ratio at matched accuracy.
    pub naive_speedup: Option<f64>,
}

fn trace_csv(trace: &ConvergenceTrace) -> String {
    let mut buf = Vec::new();
    trace.write_csv(&mut buf).expect("in-memory write");
    String::from_utf8(buf).expect("csv utf8")
}

fn main() {
    let quick = ecripse_bench::quick_mode();
    let (n_naive, n_is, target) = if quick {
        (20_000, 3_000, 0.10)
    } else {
        (400_000, 30_000, 0.04)
    };
    const VDD: f64 = 0.5;
    println!("=== Fig. 7: proposed vs naive Monte Carlo with RTN (V_DD = {VDD} V) ===\n");
    let bench = SramReadBench::at_vdd(VDD);
    let sigmas = bench.sigmas();

    // --- Panel (a): α = 0.3 ---
    let rtn03 = SramRtn::paper_model(0.3, sigmas);
    let t = Instant::now();
    let naive = naive_monte_carlo(
        &bench,
        &rtn03,
        &NaiveConfig {
            n_samples: n_naive,
            trace_every: (n_naive / 100).max(1),
            seed: 0xf167,
        },
    );
    println!(
        "naive (α=0.3):    P_fail = {:.3e} [{:.3e}, {:.3e}] from {} trials [{:.0} s]",
        naive.p_fail,
        naive.interval.lo,
        naive.interval.hi,
        fmt_count(naive.simulations),
        t.elapsed().as_secs_f64()
    );
    write_csv("fig7_naive_a03.csv", &trace_csv(&naive.trace));

    let mut cfg = paper_config(n_is, 20);
    cfg.importance.trace_every = (n_is / 100).max(1);
    let run03 = Ecripse::with_rtn(cfg, bench.clone(), rtn03);
    let init = run03.find_initial_particles().expect("boundary");
    let recorder03 = RunRecorder::new();
    let t = Instant::now();
    let proposed03 = run03
        .estimate_with_initial_observed(&init, &recorder03)
        .expect("proposed α=0.3");
    println!(
        "proposed (α=0.3): P_fail = {:.3e} (rel {:.3}) with {} sims [{:.0} s]",
        proposed03.p_fail,
        proposed03.relative_error(),
        fmt_count(proposed03.simulations),
        t.elapsed().as_secs_f64()
    );
    write_csv("fig7_proposed_a03.csv", &trace_csv(&proposed03.trace));

    // --- Panel (b): α = 0.5, sharing the initial particles ---
    let rtn05 = SramRtn::paper_model(0.5, sigmas);
    let mut cfg = paper_config(n_is, 20);
    cfg.importance.trace_every = (n_is / 100).max(1);
    let run05 = Ecripse::with_rtn(cfg, bench, rtn05);
    let shared = ecripse_core::initial::InitialParticles {
        particles: init.particles.clone(),
        simulations: 0, // amortised: already paid by the α = 0.3 run
    };
    let recorder05 = RunRecorder::new();
    let t = Instant::now();
    let proposed05 = run05
        .estimate_with_initial_observed(&shared, &recorder05)
        .expect("proposed α=0.5");
    println!(
        "proposed (α=0.5): P_fail = {:.3e} (rel {:.3}) with {} sims (shared init) [{:.0} s]",
        proposed05.p_fail,
        proposed05.relative_error(),
        fmt_count(proposed05.simulations),
        t.elapsed().as_secs_f64()
    );
    write_csv("fig7_proposed_a05.csv", &trace_csv(&proposed05.trace));
    write_json(
        "fig7_reports.json",
        &vec![recorder03.into_report(), recorder05.into_report()],
    );

    // --- Accounting ---
    let sims_a03 = proposed03
        .trace
        .first_below_relative_error(target)
        .map(|p| p.simulations);
    let sims_a05 = proposed05
        .trace
        .first_below_relative_error(target)
        .map(|p| p.simulations);
    // Naive trials needed for the same relative error:
    // rel ≈ 1.96·sqrt((1−p)/(n·p)) → n ≈ (1.96/rel)²·(1−p)/p.
    let p = naive.p_fail.max(1e-12);
    let naive_needed = (1.96 / target).powi(2) * (1.0 - p) / p;
    let naive_speedup = sims_a03.map(|s| naive_needed / s as f64);

    println!();
    report_row(
        "naive vs proposed estimates overlap",
        "yes",
        &format!(
            "naive [{:.2e},{:.2e}] ∋? {:.2e}",
            naive.interval.lo, naive.interval.hi, proposed03.p_fail
        ),
    );
    report_row(
        &format!("proposed sims to {:.0}% rel err (α=0.3)", target * 100.0),
        "~24k @4%-equiv",
        &sims_a03.map_or("not reached".into(), fmt_count),
    );
    report_row(
        &format!(
            "proposed sims to {:.0}% rel err (α=0.5, shared init)",
            target * 100.0
        ),
        "roughly half of α=0.3",
        &sims_a05.map_or("not reached".into(), fmt_count),
    );
    report_row(
        "speed-up vs naive at matched accuracy",
        "~40x",
        &naive_speedup.map_or("n/a".into(), |r| format!("{r:.0}x")),
    );

    write_json(
        "fig7.json",
        &Fig7Summary {
            vdd: VDD,
            naive_p_fail: naive.p_fail,
            naive_lo: naive.interval.lo,
            naive_hi: naive.interval.hi,
            naive_samples: naive.simulations,
            proposed_a03: proposed03.p_fail,
            proposed_a05: proposed05.p_fail,
            rel_err_target: target,
            sims_a03,
            sims_a05,
            naive_speedup,
        },
    );
}
