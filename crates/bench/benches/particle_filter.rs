//! Particle-filter iteration cost on a synthetic (free) indicator, i.e.
//! the filter's own overhead with the simulator cost factored out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecripse_core::ensemble::{EnsembleConfig, FilterEnsemble};
use ecripse_core::particle::ParticleFilterConfig;
use ecripse_stats::special::normal_pdf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn seeds(dim: usize) -> Vec<Vec<f64>> {
    (0..16)
        .map(|i| {
            let mut s = vec![0.0; dim];
            s[0] = if i % 2 == 0 { 3.5 } else { -3.5 };
            s[1] = (i as f64 - 8.0) * 0.1;
            s
        })
        .collect()
}

fn weight(c: &[f64]) -> f64 {
    if c[0].abs() > 3.0 {
        c.iter().map(|v| normal_pdf(*v)).product()
    } else {
        0.0
    }
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("particle_filter");

    for n_particles in [50usize, 100, 400] {
        let cfg = EnsembleConfig {
            n_filters: 4,
            filter: ParticleFilterConfig {
                n_particles,
                sigma_prediction: 0.3,
            },
            max_reseeds: 3,
        };
        group.bench_with_input(
            BenchmarkId::new("ensemble_step_6d", n_particles),
            &cfg,
            |b, cfg| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut ens = FilterEnsemble::from_seeds(&mut rng, *cfg, &seeds(6));
                b.iter(|| {
                    let r = ens.step(&mut rng, |_, cands| {
                        cands.iter().map(|x| weight(x)).collect()
                    });
                    black_box(r).expect("non-degenerate weights");
                })
            },
        );
    }

    // Mixture evaluation (stage-2 inner-loop cost per sample).
    let mut rng = StdRng::seed_from_u64(9);
    let ens = FilterEnsemble::from_seeds(
        &mut rng,
        EnsembleConfig {
            n_filters: 4,
            filter: ParticleFilterConfig {
                n_particles: 100,
                sigma_prediction: 0.3,
            },
            max_reseeds: 3,
        },
        &seeds(6),
    );
    let mixture = ens.as_mixture(0.8);
    let x = vec![3.3, 0.1, -0.2, 0.5, 0.0, 0.4];
    group.bench_function("mixture_400_log_pdf", |b| {
        b.iter(|| black_box(mixture.log_pdf(black_box(&x))))
    });

    group.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
