//! Polynomial feature-map cost versus degree — the per-query overhead the
//! classifier adds on top of the linear dot product.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecripse_svm::features::PolynomialFeatures;
use std::hint::black_box;

fn bench_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly_features");
    let x = [0.3, -1.2, 2.5, 0.0, 1.1, -0.7];
    for degree in [1u32, 2, 3, 4, 5] {
        let f = PolynomialFeatures::new(6, degree);
        group.bench_with_input(BenchmarkId::new("transform_6d", degree), &f, |b, f| {
            b.iter(|| black_box(f.transform(black_box(&x))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
