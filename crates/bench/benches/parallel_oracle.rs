//! Serial element-wise evaluation vs the batched (rayon-parallel)
//! testbench path, and the simulator memo-cache hit/miss paths.
//!
//! The end-to-end wall-clock comparison on the fig6/headline workload is
//! recorded by the `bench_parallel` binary (`BENCH_parallel.json`); this
//! bench isolates the per-layer costs.

use criterion::{criterion_group, criterion_main, Criterion};
use ecripse_core::bench::{SramReadBench, Testbench};
use ecripse_core::cache::{MemoBench, MemoCacheConfig};
use std::hint::black_box;

/// A deterministic spread of whitened 6-D points near the ±3–4 σ shell,
/// where stage-2 batches actually live.
fn points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..6)
                .map(|d| ((i * 6 + d) as f64 * 0.37).sin() * 3.5)
                .collect()
        })
        .collect()
}

fn bench_batch_eval(c: &mut Criterion) {
    let bench = SramReadBench::paper_cell();
    let zs = points(256);
    let mut group = c.benchmark_group("batch_eval");
    group.sample_size(10);

    group.bench_function("elementwise_serial_256", |b| {
        b.iter(|| {
            let verdicts: Vec<bool> = zs.iter().map(|z| bench.fails(z)).collect();
            black_box(verdicts)
        })
    });

    group.bench_function("batch_1_thread_256", |b| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        b.iter(|| pool.install(|| black_box(bench.fails_batch(&zs))))
    });

    group.bench_function("batch_all_cores_256", |b| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build()
            .expect("pool");
        b.iter(|| pool.install(|| black_box(bench.fails_batch(&zs))))
    });

    group.finish();
}

fn bench_memo_cache(c: &mut Criterion) {
    let bench = SramReadBench::paper_cell();
    let zs = points(256);
    let mut group = c.benchmark_group("memo_cache");
    group.sample_size(10);

    // Every iteration pays full simulation cost plus cache bookkeeping.
    group.bench_function("cold_batch_256", |b| {
        b.iter(|| {
            let cached = MemoBench::new(&bench, MemoCacheConfig::default());
            black_box(cached.fails_batch(&zs))
        })
    });

    // Pure hit path: the map already holds every key.
    group.bench_function("warm_batch_256", |b| {
        let cached = MemoBench::new(&bench, MemoCacheConfig::default());
        let _ = cached.fails_batch(&zs);
        b.iter(|| black_box(cached.fails_batch(&zs)))
    });

    // Cache disabled: measures the pass-through overhead (should be nil).
    group.bench_function("disabled_batch_256", |b| {
        let cached = MemoBench::new(
            &bench,
            MemoCacheConfig {
                enabled: false,
                ..MemoCacheConfig::default()
            },
        );
        b.iter(|| black_box(cached.fails_batch(&zs)))
    });

    group.finish();
}

criterion_group!(benches, bench_batch_eval, bench_memo_cache);
criterion_main!(benches);
