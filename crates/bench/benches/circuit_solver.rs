//! Circuit-substrate micro-costs: single VTC solves, full butterfly
//! sampling, SNM extraction, and the general Newton/MNA solver.

use criterion::{criterion_group, criterion_main, Criterion};
use ecripse_spice::butterfly::Butterfly;
use ecripse_spice::netlist::{Element, Netlist};
use ecripse_spice::ptm::{paper_geometry, DeviceRole, VDD_NOMINAL};
use ecripse_spice::snm::read_noise_margin;
use ecripse_spice::solver::Solver;
use ecripse_spice::sram::Sram6T;
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_solver");
    let cell = Sram6T::paper_cell();
    let bias = cell.read_bias();

    group.bench_function("vtc_single_point", |b| {
        b.iter(|| black_box(cell.vtc_right(&bias, black_box(0.35))))
    });

    group.bench_function("butterfly_61", |b| {
        b.iter(|| black_box(Butterfly::sample(&cell, &bias, 61)))
    });

    let butterfly = Butterfly::sample(&cell, &bias, 61);
    group.bench_function("snm_extract_61", |b| {
        b.iter(|| black_box(read_noise_margin(black_box(&butterfly))))
    });

    group.bench_function("mna_latch_operating_point", |b| {
        b.iter(|| {
            let mut nl = Netlist::new(VDD_NOMINAL);
            let vdd = nl.add_node();
            let q = nl.add_node();
            let qb = nl.add_node();
            nl.add(Element::VSource {
                plus: vdd,
                minus: 0,
                volts: VDD_NOMINAL,
            });
            for (out, input) in [(q, qb), (qb, q)] {
                nl.add(Element::Mosfet {
                    d: out,
                    g: input,
                    s: vdd,
                    device: paper_geometry(DeviceRole::Load).build(),
                });
                nl.add(Element::Mosfet {
                    d: out,
                    g: input,
                    s: 0,
                    device: paper_geometry(DeviceRole::Driver).build(),
                });
            }
            let mut init = vec![0.0; nl.node_count()];
            init[vdd] = VDD_NOMINAL;
            init[q] = VDD_NOMINAL;
            black_box(Solver::new().solve_dc(&nl, Some(&init)).expect("latch"))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
