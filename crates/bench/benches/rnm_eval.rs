//! Cost of one "transistor-level simulation": the read-noise-margin
//! evaluation that every estimator in the workspace counts. The whole
//! premise of the classifier is that this dwarfs a polynomial-SVM
//! prediction (see the `classifier` bench for the other side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecripse_spice::testbench::{BenchConfig, ReadStabilityBench};
use std::hint::black_box;

fn bench_rnm(c: &mut Criterion) {
    let mut group = c.benchmark_group("rnm_eval");
    group.sample_size(20);

    let bench = ReadStabilityBench::paper_cell();
    group.bench_function("nominal_cell", |b| {
        b.iter(|| black_box(bench.read_noise_margin(black_box(&[0.0; 6]))))
    });

    // A failure-boundary sample: the kind of point the estimators
    // actually evaluate.
    let boundary = [0.0, -0.05, 0.0, 0.05, 0.01, -0.01];
    group.bench_function("boundary_cell", |b| {
        b.iter(|| black_box(bench.read_noise_margin(black_box(&boundary))))
    });

    // Grid-resolution scaling: accuracy/cost ablation for DESIGN.md.
    for points in [31usize, 61, 121] {
        let bench = ReadStabilityBench::with_config(BenchConfig {
            grid_points: points,
            ..BenchConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("grid_points", points), &points, |b, _| {
            b.iter(|| black_box(bench.read_noise_margin(black_box(&boundary))))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_rnm);
criterion_main!(benches);
