//! End-to-end estimator comparison at a small fixed budget on a synthetic
//! two-lobe indicator (free to evaluate, so this measures algorithmic
//! overhead; the figure binaries measure the simulator-bound picture).

use criterion::{criterion_group, criterion_main, Criterion};
use ecripse_core::baseline::blockade::{statistical_blockade, BlockadeConfig};
use ecripse_core::baseline::mean_shift::{mean_shift_is, MeanShiftConfig};
use ecripse_core::baseline::naive::{naive_monte_carlo, NaiveConfig};
use ecripse_core::baseline::sis::SequentialImportanceSampling;
use ecripse_core::bench::TwoLobeBench;
use ecripse_core::ecripse::{Ecripse, EcripseConfig};
use ecripse_core::importance::ImportanceConfig;
use ecripse_core::initial::InitialSearchConfig;
use ecripse_core::rtn_source::NoRtn;
use ecripse_svm::classifier::SvmConfig;
use std::hint::black_box;

fn bench_target() -> TwoLobeBench {
    TwoLobeBench::new(vec![1.0, 0.4, -0.3], 3.0)
}

fn small_config() -> EcripseConfig {
    EcripseConfig {
        initial: InitialSearchConfig {
            count: 24,
            ..InitialSearchConfig::default()
        },
        iterations: 5,
        importance: ImportanceConfig {
            n_samples: 2000,
            m_rtn: 1,
            trace_every: 0,
        },
        m_rtn_stage1: 1,
        ..EcripseConfig::default()
    }
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimators");
    group.sample_size(10);

    group.bench_function("naive_20k", |b| {
        b.iter(|| {
            black_box(naive_monte_carlo(
                &bench_target(),
                &NoRtn::new(3),
                &NaiveConfig {
                    n_samples: 20_000,
                    trace_every: 0,
                    seed: 1,
                },
            ))
        })
    });

    group.bench_function("mean_shift_2k", |b| {
        b.iter(|| {
            let mut cfg = MeanShiftConfig::default();
            cfg.importance.n_samples = 2000;
            cfg.importance.m_rtn = 1;
            black_box(mean_shift_is(&bench_target(), &NoRtn::new(3), &cfg).expect("boundary"))
        })
    });

    group.bench_function("blockade_20k", |b| {
        b.iter(|| {
            black_box(
                statistical_blockade(
                    &bench_target(),
                    &NoRtn::new(3),
                    &BlockadeConfig {
                        n_pilot: 500,
                        n_samples: 20_000,
                        svm: SvmConfig {
                            degree: 2,
                            ..SvmConfig::default()
                        },
                        ..BlockadeConfig::default()
                    },
                )
                .expect("pilot trains"),
            )
        })
    });

    group.bench_function("sis_2k", |b| {
        b.iter(|| {
            black_box(
                SequentialImportanceSampling::new(small_config(), bench_target())
                    .estimate()
                    .expect("sis run"),
            )
        })
    });

    group.bench_function("ecripse_2k", |b| {
        b.iter(|| {
            black_box(
                Ecripse::new(small_config(), bench_target())
                    .estimate()
                    .expect("ecripse run"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
