//! Classifier costs: training, incremental retraining and — the number
//! that justifies the whole design — per-sample prediction, which must be
//! orders of magnitude below one transistor-level simulation (compare the
//! `rnm_eval` bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecripse_svm::classifier::{SvmClassifier, SvmConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sphere_data(n: usize, dim: usize, r: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        ys.push(norm > r);
        xs.push(x);
    }
    (xs, ys)
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier");
    group.sample_size(10);

    let (xs, ys) = sphere_data(1000, 6, 6.0, 1);

    for degree in [2u32, 4] {
        let cfg = SvmConfig {
            degree,
            ..SvmConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("train_1000", degree), &cfg, |b, cfg| {
            b.iter(|| black_box(SvmClassifier::fit(cfg, &xs, &ys).expect("two classes")))
        });
    }

    let clf = SvmClassifier::fit(&SvmConfig::default(), &xs, &ys).expect("two classes");
    let probe = vec![3.9, -0.2, 0.4, 3.8, 0.0, -0.1];
    group.bench_function("predict_degree4", |b| {
        b.iter(|| black_box(clf.predict(black_box(&probe))))
    });
    group.bench_function("margin_degree4", |b| {
        b.iter(|| black_box(clf.margin(black_box(&probe))))
    });

    // Incremental retraining with a 64-sample batch on a warm model.
    let (nx, ny) = sphere_data(64, 6, 6.0, 2);
    group.bench_function("incremental_64", |b| {
        b.iter_batched(
            || clf.clone(),
            |mut c| {
                c.add_labelled(&nx, &ny);
                black_box(c)
            },
            criterion::BatchSize::LargeInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
