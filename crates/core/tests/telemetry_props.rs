//! Property tests for the telemetry histogram: quantiles are monotone
//! in rank, bounded by the recorded min/max, and consistent with the
//! Prometheus rendering of the same data.

use ecripse_core::telemetry::{Histogram, MetricsRegistry};
use proptest::prelude::*;

/// Expands raw `(unit, kind)` pairs into observations spanning many
/// orders of magnitude, including zero and sub-resolution values that
/// land in the histogram's first bucket.
fn expand(raw: &[(f64, u64)]) -> Vec<f64> {
    raw.iter()
        .map(|&(u, kind)| match kind {
            0 => 1e-9 + u * 1e-3,
            1 => u,
            2 => u * 1e3,
            _ => 0.0,
        })
        .collect()
}

fn recorded(values: &[f64]) -> Histogram {
    let h = Histogram::new();
    for v in values {
        h.record(*v);
    }
    h
}

proptest! {
    /// `quantile(q)` never decreases as the rank `q` grows.
    #[test]
    fn quantiles_are_monotone_in_rank(
        raw in proptest::collection::vec((0.0..1.0_f64, 0u64..4), 1..200),
        ranks in proptest::collection::vec(0.0..=1.0_f64, 2..20),
    ) {
        let h = recorded(&expand(&raw));
        let mut sorted = ranks;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ranks"));
        let mut last = f64::NEG_INFINITY;
        for q in sorted {
            let value = h.quantile(q).expect("non-empty histogram");
            prop_assert!(
                value >= last,
                "quantile({}) = {} dropped below previous {}", q, value, last
            );
            last = value;
        }
    }

    /// Every quantile lies within the recorded `[min, max]` envelope
    /// (the estimator clamps bucket bounds into it), including the
    /// extreme ranks.
    #[test]
    fn quantiles_are_bounded_by_min_max(
        raw in proptest::collection::vec((0.0..1.0_f64, 0u64..4), 1..200),
        q in 0.0..=1.0_f64,
    ) {
        let h = recorded(&expand(&raw));
        let min = h.min().expect("non-empty");
        let max = h.max().expect("non-empty");
        for rank in [0.0, q, 1.0] {
            let value = h.quantile(rank).expect("non-empty");
            prop_assert!(
                min <= value && value <= max,
                "quantile({}) = {} outside [{}, {}]", rank, value, min, max
            );
        }
    }

    /// The Prometheus rendering agrees with the histogram's own
    /// accessors: `_count` matches, `_sum` matches, bucket counts are
    /// cumulative and the `+Inf` bucket equals the total.
    #[test]
    fn prometheus_rendering_agrees_with_accessors(
        raw in proptest::collection::vec((0.0..1.0_f64, 0u64..4), 1..200),
    ) {
        let values = expand(&raw);
        let registry = MetricsRegistry::new();
        let h = registry.histogram("latency_seconds", "Test latency.");
        for v in &values {
            h.record(*v);
        }
        let text = registry.render_prometheus();
        let count_line = format!("latency_seconds_count {}", h.count());
        prop_assert!(text.contains(&count_line), "missing {:?} in {:?}", count_line, text);

        let mut last = 0u64;
        let mut inf_count = None;
        for line in text.lines().filter(|l| l.starts_with("latency_seconds_bucket")) {
            let cumulative: u64 = line
                .rsplit(' ')
                .next()
                .expect("bucket value")
                .parse()
                .expect("bucket count is integral");
            prop_assert!(cumulative >= last, "bucket counts must be cumulative: {}", line);
            last = cumulative;
            if line.contains("le=\"+Inf\"") {
                inf_count = Some(cumulative);
            }
        }
        prop_assert_eq!(inf_count, Some(h.count()));

        let sum_line = text
            .lines()
            .find(|l| l.starts_with("latency_seconds_sum"))
            .expect("sum line");
        let rendered_sum: f64 = sum_line.rsplit(' ').next().expect("value").parse().expect("sum");
        let expected: f64 = values.iter().copied().map(|v| v.max(0.0)).sum();
        prop_assert!(
            (rendered_sum - expected).abs() <= 1e-9 * expected.abs() + 1e-12,
            "rendered sum {} != recorded sum {}", rendered_sum, expected
        );
    }
}
