//! Property tests for the warm-start cache: neighbour seeding and the
//! adaptive coarse-first resolution policy are pure accelerations — the
//! verdicts they produce are bit-identical to the fixed-resolution cold
//! path on arbitrary operating points, including repeat queries served
//! by the exact tier.

use ecripse_core::bench::Testbench;
use ecripse_core::{SramReadBench, WarmBench, WarmCacheConfig};
use ecripse_spice::testbench::BenchConfig;
use proptest::prelude::*;

fn fixed_bench() -> SramReadBench {
    let mut config = BenchConfig::default();
    config.adaptive.enabled = false;
    SramReadBench::with_config(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A warm-cached adaptive bench and a fixed-resolution bench agree
    /// on every sample: first on a cold store, then with the second
    /// point close enough to be neighbour-seeded by the first, then on
    /// exact-tier repeats of both.
    #[test]
    fn seeded_and_cold_verdicts_are_identical(
        base in proptest::collection::vec(-4.0..4.0_f64, 6..7),
        delta in proptest::collection::vec(-0.3..0.3_f64, 6..7),
        scale in 0.5..1.6_f64,
    ) {
        let inner = SramReadBench::paper_cell();
        let warm = WarmBench::new(&inner, WarmCacheConfig::default());
        let fixed = fixed_bench();
        let first: Vec<f64> = base.iter().map(|b| b * scale).collect();
        let second: Vec<f64> = first.iter().zip(&delta).map(|(b, d)| b + d).collect();
        for pass in 0..2 {
            for z in [&first, &second] {
                prop_assert_eq!(
                    warm.try_fails(z).ok(),
                    fixed.try_fails(z).ok(),
                    "warm/fixed divergence on pass {} at {:?}", pass, z
                );
            }
        }
        let stats = warm.stats();
        prop_assert_eq!(stats.exact_hits, 2, "second pass must hit the exact tier");
    }

    /// Batch evaluation through the warm cache matches element-wise
    /// fixed-resolution evaluation in input order.
    #[test]
    fn warm_batches_match_fixed_elementwise(
        points in proptest::collection::vec(proptest::collection::vec(-4.0..4.0_f64, 6..7), 2..6),
    ) {
        let inner = SramReadBench::paper_cell();
        let warm = WarmBench::new(&inner, WarmCacheConfig::default());
        let fixed = fixed_bench();
        let zs: Vec<Vec<f64>> = points;
        let batch = warm.fails_batch(&zs);
        for (z, verdict) in zs.iter().zip(&batch) {
            prop_assert_eq!(*verdict, fixed.fails(z), "batch divergence at {:?}", z);
        }
    }
}
