//! A single particle filter (Algorithm 1, steps 2–4).
//!
//! Particles move through the whitened variability space tracking the
//! optimal alternative distribution `Q_opt(x) ∝ P_fail^RTN(x)·P_RDF(x)`:
//!
//! * **Prediction** — candidates are drawn from an equal-weight Gaussian
//!   mixture centred on the current particles (Eq. 15);
//! * **Measurement** — each candidate is weighted by
//!   `P_fail^RTN(x)·P_RDF(x)` (Eq. 16), the weight function being
//!   supplied by the caller (it hides the inner RTN Monte Carlo and the
//!   classifier);
//! * **Resampling** — systematic resampling proportional to the weights.
//!
//! Degeneracy — all particles collapsing onto the single highest-weight
//! lobe — is the known failure mode; [`crate::ensemble`] counters it
//! with several independent filters, following the paper.

use ecripse_stats::mvn::{DiagGaussian, GaussianMixture};
use ecripse_stats::resample::systematic_resample;
use ecripse_stats::sample::NormalSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Particle filter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticleFilterConfig {
    /// Number of particles this filter maintains.
    pub n_particles: usize,
    /// Standard deviation of the prediction kernel (Eq. 15's σ), in
    /// whitened units.
    pub sigma_prediction: f64,
}

impl Default for ParticleFilterConfig {
    fn default() -> Self {
        Self {
            n_particles: 100,
            sigma_prediction: 0.3,
        }
    }
}

/// One particle filter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleFilter {
    config: ParticleFilterConfig,
    particles: Vec<Vec<f64>>,
}

/// Error when every candidate particle receives zero weight (the filter
/// has wandered completely out of the failure region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegenerateWeightsError;

impl std::fmt::Display for DegenerateWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "all candidate particles received zero weight")
    }
}

impl std::error::Error for DegenerateWeightsError {}

impl ParticleFilter {
    /// Creates a filter from seed particles, resampled (with repetition
    /// if needed) to the configured population size.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, dimensions are inconsistent, or the
    /// configuration is invalid.
    pub fn from_seeds<R: Rng + ?Sized>(
        rng: &mut R,
        config: ParticleFilterConfig,
        seeds: &[Vec<f64>],
    ) -> Self {
        assert!(!seeds.is_empty(), "no seed particles");
        assert!(config.n_particles > 0, "need at least one particle");
        assert!(
            config.sigma_prediction > 0.0,
            "prediction sigma must be positive"
        );
        let dim = seeds[0].len();
        assert!(
            seeds.iter().all(|s| s.len() == dim),
            "seed dimensions disagree"
        );
        let particles = (0..config.n_particles)
            .map(|_| seeds[rng.gen_range(0..seeds.len())].clone())
            .collect();
        Self { config, particles }
    }

    /// Current particle positions.
    pub fn particles(&self) -> &[Vec<f64>] {
        &self.particles
    }

    /// Configuration in use.
    pub fn config(&self) -> &ParticleFilterConfig {
        &self.config
    }

    /// Dimensionality of the particle space.
    pub fn dim(&self) -> usize {
        self.particles[0].len()
    }

    /// Draws the next-step candidates from the Eq. 15 proposal: pick a
    /// current particle uniformly, perturb with the isotropic kernel.
    pub fn predict<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Vec<f64>> {
        let mut normals = NormalSampler::new();
        (0..self.config.n_particles)
            .map(|_| {
                let centre = &self.particles[rng.gen_range(0..self.particles.len())];
                centre
                    .iter()
                    .map(|c| c + self.config.sigma_prediction * normals.sample(rng))
                    .collect()
            })
            .collect()
    }

    /// Resamples the filter onto `candidates` with the given weights
    /// (Eq. 16 values).
    ///
    /// # Errors
    ///
    /// Returns [`DegenerateWeightsError`] when all weights vanish; the
    /// caller typically keeps the previous particle set in that case.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn resample<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        candidates: &[Vec<f64>],
        weights: &[f64],
    ) -> Result<(), DegenerateWeightsError> {
        assert_eq!(candidates.len(), weights.len(), "weight count mismatch");
        let Some(indices) = systematic_resample(rng, weights, self.config.n_particles) else {
            return Err(DegenerateWeightsError);
        };
        self.particles = indices.iter().map(|&i| candidates[i].clone()).collect();
        Ok(())
    }

    /// One full predict→measure→resample iteration; `weight_fn` evaluates
    /// Eq. 16 for a batch of candidates (batched so the caller can train
    /// its classifier on a subset of the batch).
    ///
    /// # Errors
    ///
    /// Returns [`DegenerateWeightsError`] if every candidate weighed
    /// zero; the particle population is left unchanged in that case.
    pub fn step<R, F>(
        &mut self,
        rng: &mut R,
        mut weight_fn: F,
    ) -> Result<(), DegenerateWeightsError>
    where
        R: Rng + ?Sized,
        F: FnMut(&mut R, &[Vec<f64>]) -> Vec<f64>,
    {
        let candidates = self.predict(rng);
        let weights = weight_fn(rng, &candidates);
        self.resample(rng, &candidates, &weights)
    }

    /// The equal-weight Gaussian-mixture density implied by the current
    /// particles with kernel width `sigma` (Eq. 18).
    pub fn as_mixture(&self, sigma: f64) -> GaussianMixture {
        GaussianMixture::from_particles(&self.particles, sigma)
    }

    /// Mean position of the particle cloud (diagnostic).
    pub fn centroid(&self) -> Vec<f64> {
        let dim = self.dim();
        let mut c = vec![0.0; dim];
        for p in &self.particles {
            for (ci, pi) in c.iter_mut().zip(p) {
                *ci += pi;
            }
        }
        for ci in &mut c {
            *ci /= self.particles.len() as f64;
        }
        c
    }

    /// Replaces the particle population (used by deterministic tests).
    ///
    /// # Panics
    ///
    /// Panics if `particles` is empty.
    pub fn set_particles(&mut self, particles: Vec<Vec<f64>>) {
        assert!(!particles.is_empty(), "no particles");
        self.particles = particles;
    }

    /// Builds a standard-normal log-weight helper: callers weighting
    /// candidates per Eq. 16 multiply the indicator probability by
    /// `P_RDF(x)`; this returns that density.
    pub fn rdf_density(dim: usize) -> DiagGaussian {
        DiagGaussian::standard(dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecripse_stats::special::normal_pdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seeds_2d() -> Vec<Vec<f64>> {
        vec![vec![3.0, 0.0], vec![0.0, 3.0], vec![-3.0, 0.0]]
    }

    #[test]
    fn seeding_replicates_to_population_size() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = ParticleFilter::from_seeds(&mut rng, ParticleFilterConfig::default(), &seeds_2d());
        assert_eq!(
            f.particles().len(),
            ParticleFilterConfig::default().n_particles
        );
        assert_eq!(f.dim(), 2);
        // Every particle is one of the seeds.
        for p in f.particles() {
            assert!(seeds_2d().iter().any(|s| s == p));
        }
    }

    #[test]
    fn prediction_spreads_particles_locally() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ParticleFilterConfig {
            n_particles: 200,
            sigma_prediction: 0.2,
        };
        let f = ParticleFilter::from_seeds(&mut rng, cfg, &[vec![5.0, -1.0]]);
        let candidates = f.predict(&mut rng);
        assert_eq!(candidates.len(), 200);
        let mean_x: f64 = candidates.iter().map(|c| c[0]).sum::<f64>() / 200.0;
        let var_x: f64 = candidates
            .iter()
            .map(|c| (c[0] - mean_x).powi(2))
            .sum::<f64>()
            / 200.0;
        assert!((mean_x - 5.0).abs() < 0.1, "mean {mean_x}");
        assert!((var_x - 0.04).abs() < 0.02, "var {var_x}");
    }

    #[test]
    fn filter_converges_toward_high_weight_region() {
        // Weight = standard normal restricted to x₀ > 2 (a "failure
        // region" on one side); the cloud must settle near the boundary
        // point (2, 0) — the highest-density failing point.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ParticleFilterConfig {
            n_particles: 300,
            sigma_prediction: 0.3,
        };
        let mut f = ParticleFilter::from_seeds(&mut rng, cfg, &[vec![4.0, 2.0]]);
        for _ in 0..15 {
            f.step(&mut rng, |_, cands| {
                cands
                    .iter()
                    .map(|c| {
                        if c[0] > 2.0 {
                            normal_pdf(c[0]) * normal_pdf(c[1])
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .expect("weights present");
        }
        let c = f.centroid();
        assert!((c[0] - 2.1).abs() < 0.3, "centroid x {:?}", c);
        assert!(c[1].abs() < 0.3, "centroid y {:?}", c);
        // All particles remain in the failing half-space.
        assert!(f.particles().iter().all(|p| p[0] > 2.0));
    }

    #[test]
    fn zero_weights_leave_population_unchanged() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut f =
            ParticleFilter::from_seeds(&mut rng, ParticleFilterConfig::default(), &seeds_2d());
        let before = f.particles().to_vec();
        let err = f.step(&mut rng, |_, cands| vec![0.0; cands.len()]);
        assert_eq!(err, Err(DegenerateWeightsError));
        assert_eq!(f.particles(), &before[..]);
    }

    #[test]
    fn mixture_centres_on_particles() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ParticleFilterConfig {
            n_particles: 3,
            sigma_prediction: 0.3,
        };
        let f = ParticleFilter::from_seeds(&mut rng, cfg, &seeds_2d());
        let m = f.as_mixture(0.4);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dim(), 2);
    }

    #[test]
    #[should_panic(expected = "no seed particles")]
    fn rejects_empty_seeds() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = ParticleFilter::from_seeds(&mut rng, ParticleFilterConfig::default(), &[]);
    }
}
