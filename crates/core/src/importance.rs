//! The second Monte Carlo stage: importance sampling from the particle
//! mixture (Eqs. 17–19).
//!
//! Samples `x_k ~ Q̂` are drawn from the Eq. 18 mixture; for each, the
//! inner RTN Monte Carlo of Eq. 17 estimates `P_fail^RTN(x_k)` with `M`
//! RTN draws (collapsing to a single deterministic indicator call when
//! RTN is disabled), and the estimator accumulates
//! `P_fail^RTN(x_k)·P(x_k)/Q̂(x_k)`.
//!
//! Likelihood ratios are computed in log space: at a 4 σ boundary the
//! densities involved underflow ordinary arithmetic.

use crate::bench::Testbench;
use crate::observe::{ChunkStats, NullObserver, Observer};
use crate::oracle::ClassifierOracle;
use crate::rtn_source::RtnSource;
use crate::trace::{ConvergenceTrace, TracePoint};
use ecripse_stats::estimate::WeightedIsEstimator;
use ecripse_stats::mvn::{DiagGaussian, GaussianMixture};
use ecripse_stats::sample::NormalSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stage-2 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImportanceConfig {
    /// Number of importance samples `N_IS`.
    pub n_samples: usize,
    /// RTN draws per importance sample (the paper's `M`); ignored when
    /// the RTN source is null.
    pub m_rtn: usize,
    /// Record a trace point every this many importance samples
    /// (0 disables tracing).
    pub trace_every: usize,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        Self {
            n_samples: 4000,
            m_rtn: 20,
            trace_every: 0,
        }
    }
}

/// The outcome of an importance-sampling stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceResult {
    /// The Eq. 19 estimate.
    pub p_fail: f64,
    /// 95 % CI half-width from the weighted-sample CLT.
    pub ci95_half_width: f64,
    /// Effective sample size of the importance weights.
    pub effective_sample_size: f64,
    /// Importance samples consumed.
    pub samples: u64,
    /// Convergence trace (empty unless requested).
    pub trace: ConvergenceTrace,
}

impl ImportanceResult {
    /// The paper's relative error (CI half-width / estimate).
    pub fn relative_error(&self) -> f64 {
        if self.p_fail > 0.0 {
            self.ci95_half_width / self.p_fail
        } else {
            f64::INFINITY
        }
    }
}

/// Inner RTN Monte Carlo (Eq. 17): estimates `P_fail^RTN(x)` with `m`
/// draws through the *accurate* oracle policy.
pub fn p_fail_rtn_inner<B, S, R>(
    oracle: &mut ClassifierOracle<'_, B>,
    rtn: &S,
    x_rdf: &[f64],
    m: usize,
    rng: &mut R,
) -> f64
where
    B: Testbench,
    S: RtnSource,
    R: Rng + ?Sized,
{
    if rtn.is_null() {
        return if oracle.evaluate_accurate(x_rdf) {
            1.0
        } else {
            0.0
        };
    }
    assert!(m > 0, "need at least one RTN draw");
    let mut fails = 0usize;
    let mut z = vec![0.0; x_rdf.len()];
    for _ in 0..m {
        let shift = rtn.sample_whitened(rng);
        for ((zi, xi), si) in z.iter_mut().zip(x_rdf).zip(&shift) {
            *zi = xi + si;
        }
        if oracle.evaluate_accurate(&z) {
            fails += 1;
        }
    }
    fails as f64 / m as f64
}

/// Runs the stage-2 importance sampling.
///
/// `sim_count` reports the current transistor-level simulation count (for
/// trace points); pass the enclosing [`crate::bench::SimCounter`]'s
/// getter.
///
/// # Panics
///
/// Panics if `config.n_samples` is zero or dimensions disagree.
pub fn importance_stage<B, S, R>(
    oracle: &mut ClassifierOracle<'_, B>,
    rtn: &S,
    alternative: &GaussianMixture,
    config: &ImportanceConfig,
    rng: &mut R,
    sim_count: &dyn Fn() -> u64,
) -> ImportanceResult
where
    B: Testbench,
    S: RtnSource,
    R: Rng + ?Sized,
{
    importance_stage_until(oracle, rtn, alternative, config, rng, sim_count, None)
}

/// Like [`importance_stage`], with an optional early-stopping rule: when
/// `stop_at_relative_error` is set, sampling stops as soon as the
/// estimator's relative error falls at or below the target (checked
/// every 256 samples, after a warm-up of 1024), or when `n_samples` is
/// exhausted, whichever comes first.
///
/// # Panics
///
/// Panics if `config.n_samples` is zero, the target is not positive, or
/// dimensions disagree.
pub fn importance_stage_until<B, S, R>(
    oracle: &mut ClassifierOracle<'_, B>,
    rtn: &S,
    alternative: &GaussianMixture,
    config: &ImportanceConfig,
    rng: &mut R,
    sim_count: &dyn Fn() -> u64,
    stop_at_relative_error: Option<f64>,
) -> ImportanceResult
where
    B: Testbench,
    S: RtnSource,
    R: Rng + ?Sized,
{
    importance_stage_observed(
        oracle,
        rtn,
        alternative,
        config,
        rng,
        sim_count,
        stop_at_relative_error,
        &NullObserver,
    )
}

/// Like [`importance_stage_until`], reporting one
/// [`ChunkStats`] into `observer` per processed sample batch — the
/// stage-2 convergence feed of the observability layer
/// ([`crate::observe`]).
///
/// The batch/check cadence, RNG consumption order and estimator content
/// are identical to the un-observed entry points: observation never
/// changes the numbers.
///
/// # Panics
///
/// Panics if `config.n_samples` is zero, the target is not positive, or
/// dimensions disagree.
#[allow(clippy::too_many_arguments)]
pub fn importance_stage_observed<B, S, R>(
    oracle: &mut ClassifierOracle<'_, B>,
    rtn: &S,
    alternative: &GaussianMixture,
    config: &ImportanceConfig,
    rng: &mut R,
    sim_count: &dyn Fn() -> u64,
    stop_at_relative_error: Option<f64>,
    observer: &dyn Observer,
) -> ImportanceResult
where
    B: Testbench,
    S: RtnSource,
    R: Rng + ?Sized,
{
    let (result, _interrupted) = importance_stage_impl(
        oracle,
        rtn,
        alternative,
        config,
        rng,
        sim_count,
        stop_at_relative_error,
        None,
        observer,
    );
    result
}

/// Like [`importance_stage_observed`], additionally honouring a
/// cooperative stop flag checked at every batch boundary (the service's
/// cancellation/deadline path). Returns the partial result plus whether
/// the flag cut the stage short: a flag raised after the budget was
/// already exhausted is a no-op and the stage completes normally.
///
/// Stop checks never consume randomness, so a run whose flag stays
/// unset is bit-identical to the un-interruptible entry points.
///
/// # Panics
///
/// Panics if `config.n_samples` is zero, the target is not positive, or
/// dimensions disagree.
#[allow(clippy::too_many_arguments)]
pub fn importance_stage_interruptible_observed<B, S, R>(
    oracle: &mut ClassifierOracle<'_, B>,
    rtn: &S,
    alternative: &GaussianMixture,
    config: &ImportanceConfig,
    rng: &mut R,
    sim_count: &dyn Fn() -> u64,
    stop_at_relative_error: Option<f64>,
    stop: &std::sync::atomic::AtomicBool,
    observer: &dyn Observer,
) -> (ImportanceResult, bool)
where
    B: Testbench,
    S: RtnSource,
    R: Rng + ?Sized,
{
    importance_stage_impl(
        oracle,
        rtn,
        alternative,
        config,
        rng,
        sim_count,
        stop_at_relative_error,
        Some(stop),
        observer,
    )
}

#[allow(clippy::too_many_arguments)]
fn importance_stage_impl<B, S, R>(
    oracle: &mut ClassifierOracle<'_, B>,
    rtn: &S,
    alternative: &GaussianMixture,
    config: &ImportanceConfig,
    rng: &mut R,
    sim_count: &dyn Fn() -> u64,
    stop_at_relative_error: Option<f64>,
    stop: Option<&std::sync::atomic::AtomicBool>,
    observer: &dyn Observer,
) -> (ImportanceResult, bool)
where
    B: Testbench,
    S: RtnSource,
    R: Rng + ?Sized,
{
    assert!(config.n_samples > 0, "need at least one importance sample");
    if let Some(t) = stop_at_relative_error {
        assert!(t > 0.0, "relative-error target must be positive");
    }
    const CHECK_EVERY: u64 = 256;
    const WARMUP: u64 = 1024;
    // Samples per oracle batch. Aligned with CHECK_EVERY so the
    // early-stopping rule fires exactly at batch boundaries and no
    // already-simulated sample is ever discarded.
    const BATCH: usize = CHECK_EVERY as usize;
    let dim = alternative.dim();
    let rdf = DiagGaussian::standard(dim);
    let mut normals = NormalSampler::new();
    let mut estimator = WeightedIsEstimator::new();
    let mut trace = ConvergenceTrace::new();
    let m = config.m_rtn;
    if !rtn.is_null() {
        assert!(m > 0, "need at least one RTN draw");
    }

    let mut drawn = 0usize;
    let mut interrupted = false;
    while drawn < config.n_samples {
        // Cooperative cancellation, checked only at batch boundaries so
        // every already-simulated sample lands in the estimator and the
        // RNG stream is never cut mid-sample.
        if stop.is_some_and(|s| s.load(std::sync::atomic::Ordering::SeqCst)) {
            interrupted = true;
            break;
        }
        let batch = BATCH.min(config.n_samples - drawn);
        let sims_at_chunk_start = sim_count();
        // Serial draws from the master stream: the batched flow consumes
        // the RNG in exactly the per-sample order of a serial loop
        // (sample, then its RTN shifts, then the next sample).
        let mut weights = Vec::with_capacity(batch);
        let mut points = Vec::with_capacity(batch * m.max(1));
        for _ in 0..batch {
            let x = alternative.sample(rng, &mut normals);
            let log_ratio = rdf.log_pdf(&x) - alternative.log_pdf(&x);
            weights.push(log_ratio.exp());
            if rtn.is_null() {
                points.push(x);
            } else {
                for _ in 0..m {
                    let shift = rtn.sample_whitened(rng);
                    points.push(x.iter().zip(&shift).map(|(xi, si)| xi + si).collect());
                }
            }
        }
        // One accurate-policy batch answers the whole chunk (parallel
        // simulation for the uncertain subset).
        let verdicts = oracle.evaluate_batch_accurate(&points);

        for (j, &weight) in weights.iter().enumerate() {
            let p_inner = if rtn.is_null() {
                if verdicts[j] {
                    1.0
                } else {
                    0.0
                }
            } else {
                let fails = verdicts[j * m..(j + 1) * m].iter().filter(|v| **v).count();
                fails as f64 / m as f64
            };
            estimator.push(p_inner, weight);

            let n = estimator.count();
            if config.trace_every > 0 && n.is_multiple_of(config.trace_every as u64) {
                trace.push(TracePoint {
                    simulations: sim_count(),
                    samples: n,
                    estimate: estimator.estimate(),
                    ci95_half_width: estimator.ci95_half_width(),
                });
            }
        }
        drawn += batch;

        let n = estimator.count();
        let sims_now = sim_count();
        observer.chunk_finished(&ChunkStats {
            samples: n,
            chunk_samples: batch as u64,
            estimate: estimator.estimate(),
            ci95_half_width: estimator.ci95_half_width(),
            simulations: sims_now,
            chunk_simulations: sims_now - sims_at_chunk_start,
        });

        // The early-stopping rule fires only at multiples of CHECK_EVERY
        // past the warm-up; batches are CHECK_EVERY samples long, so
        // checking once per batch is exactly the per-sample rule.
        if let Some(target) = stop_at_relative_error {
            if n >= WARMUP && n.is_multiple_of(CHECK_EVERY) {
                let est = estimator.estimate();
                if est > 0.0 && estimator.ci95_half_width() / est <= target {
                    break;
                }
            }
        }
    }

    (
        ImportanceResult {
            p_fail: estimator.estimate(),
            ci95_half_width: estimator.ci95_half_width(),
            effective_sample_size: estimator.effective_sample_size(),
            samples: estimator.count(),
            trace,
        },
        interrupted,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{LinearBench, SimCounter, TwoLobeBench};
    use crate::oracle::OracleConfig;
    use crate::rtn_source::NoRtn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Importance sampling against a linear indicator with the mixture
    /// centred on the true boundary point must recover Φ(−β).
    #[test]
    fn recovers_linear_ground_truth_without_classifier() {
        let beta = 3.5;
        let bench = LinearBench::new(vec![1.0, 0.0], beta);
        let exact = bench.exact_p_fail();
        let counter = SimCounter::new(bench);
        let cfg = OracleConfig {
            svm: None,
            ..OracleConfig::default()
        };
        let mut oracle = ClassifierOracle::new(&counter, cfg);
        // Kernels around the most probable failure point.
        let alt = GaussianMixture::from_particles(
            &[
                vec![beta, 0.0],
                vec![beta + 0.3, 0.5],
                vec![beta + 0.3, -0.5],
            ],
            0.7,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let res = importance_stage(
            &mut oracle,
            &NoRtn::new(2),
            &alt,
            &ImportanceConfig {
                n_samples: 20_000,
                m_rtn: 1,
                trace_every: 0,
            },
            &mut rng,
            &|| counter.simulations(),
        );
        assert!(
            ((res.p_fail - exact) / exact).abs() < 0.1,
            "estimate {:e} vs exact {:e}",
            res.p_fail,
            exact
        );
        // CI should cover the truth.
        assert!((res.p_fail - exact).abs() < 3.0 * res.ci95_half_width);
    }

    #[test]
    fn recovers_two_lobe_ground_truth() {
        let bench = TwoLobeBench::new(vec![1.0, 0.0], 3.0);
        let exact = bench.exact_p_fail();
        let counter = SimCounter::new(bench);
        let cfg = OracleConfig {
            svm: None,
            ..OracleConfig::default()
        };
        let mut oracle = ClassifierOracle::new(&counter, cfg);
        let alt = GaussianMixture::from_particles(
            &[
                vec![3.0, 0.0],
                vec![-3.0, 0.0],
                vec![3.3, 0.4],
                vec![-3.3, -0.4],
            ],
            0.7,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let res = importance_stage(
            &mut oracle,
            &NoRtn::new(2),
            &alt,
            &ImportanceConfig {
                n_samples: 30_000,
                m_rtn: 1,
                trace_every: 0,
            },
            &mut rng,
            &|| counter.simulations(),
        );
        assert!(
            ((res.p_fail - exact) / exact).abs() < 0.1,
            "estimate {:e} vs exact {:e}",
            res.p_fail,
            exact
        );
    }

    #[test]
    fn one_sided_mixture_misses_half_the_probability() {
        // The degeneracy scenario the ensemble exists to prevent: a
        // mixture covering only one lobe converges to half the truth.
        let bench = TwoLobeBench::new(vec![1.0, 0.0], 3.0);
        let exact = bench.exact_p_fail();
        let counter = SimCounter::new(bench);
        let cfg = OracleConfig {
            svm: None,
            ..OracleConfig::default()
        };
        let mut oracle = ClassifierOracle::new(&counter, cfg);
        let alt = GaussianMixture::from_particles(&[vec![3.0, 0.0], vec![3.3, 0.3]], 0.6);
        let mut rng = StdRng::seed_from_u64(3);
        let res = importance_stage(
            &mut oracle,
            &NoRtn::new(2),
            &alt,
            &ImportanceConfig {
                n_samples: 20_000,
                m_rtn: 1,
                trace_every: 0,
            },
            &mut rng,
            &|| counter.simulations(),
        );
        assert!(
            ((res.p_fail - 0.5 * exact) / (0.5 * exact)).abs() < 0.15,
            "one-sided estimate {:e} vs half-truth {:e}",
            res.p_fail,
            0.5 * exact
        );
    }

    #[test]
    fn inner_rtn_loop_counts_fail_fraction() {
        // A deterministic "RTN" source that shifts into the failure
        // region with probability ~0.5 via its even/odd draws is hard to
        // build without randomness; instead verify the null-RTN collapse
        // and the m=... averaging bound.
        let bench = LinearBench::new(vec![1.0], 1.0);
        let counter = SimCounter::new(bench);
        let cfg = OracleConfig {
            svm: None,
            ..OracleConfig::default()
        };
        let mut oracle = ClassifierOracle::new(&counter, cfg);
        let mut rng = StdRng::seed_from_u64(4);
        // Null RTN: exactly one simulation, 0/1 output.
        let p = p_fail_rtn_inner(&mut oracle, &NoRtn::new(1), &[2.0], 50, &mut rng);
        assert_eq!(p, 1.0);
        assert_eq!(counter.simulations(), 1);
        let p = p_fail_rtn_inner(&mut oracle, &NoRtn::new(1), &[0.0], 50, &mut rng);
        assert_eq!(p, 0.0);
        assert_eq!(counter.simulations(), 2);
    }

    #[test]
    fn trace_points_are_recorded_at_requested_cadence() {
        let bench = LinearBench::new(vec![1.0], 2.0);
        let counter = SimCounter::new(bench);
        let cfg = OracleConfig {
            svm: None,
            ..OracleConfig::default()
        };
        let mut oracle = ClassifierOracle::new(&counter, cfg);
        let alt = GaussianMixture::from_particles(&[vec![2.0]], 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let res = importance_stage(
            &mut oracle,
            &NoRtn::new(1),
            &alt,
            &ImportanceConfig {
                n_samples: 1000,
                m_rtn: 1,
                trace_every: 100,
            },
            &mut rng,
            &|| counter.simulations(),
        );
        assert_eq!(res.trace.len(), 10);
        let pts = res.trace.points();
        for w in pts.windows(2) {
            assert!(w[1].samples > w[0].samples);
            assert!(w[1].simulations >= w[0].simulations);
        }
    }
}
